//! Scoped-thread data-parallel helpers for the DEFA workspace.
//!
//! The container this reproduction builds in has no registry access, so
//! `rayon` cannot be a dependency; this crate provides the small subset of
//! rayon's behaviour the hot paths need, built on [`std::thread::scope`]:
//!
//! * contiguous, *deterministic* partitioning — every helper splits its
//!   index space into at most [`current_num_threads`] contiguous ranges and
//!   writes results back by index, so outputs are **bit-identical** for any
//!   thread count (each element is computed by the same pure function with
//!   the same reduction order regardless of partitioning);
//! * `RAYON_NUM_THREADS` is honoured, exactly like rayon, and
//!   [`with_num_threads`] offers a process-local override so tests can
//!   compare single- vs multi-threaded runs inside one process;
//! * helpers short-circuit to plain sequential loops when one thread is
//!   configured or the work is too small to amortize a thread spawn.
//!
//! Swapping this crate for real `rayon` later is a local change to the hot
//! loops (`par_chunks_mut(..)` ↔ `slice.par_chunks_mut(..).for_each(..)`).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

thread_local! {
    /// Set inside helper worker threads. Nested helper calls from a worker
    /// run sequentially instead of spawning more threads — without a
    /// work-stealing pool, two levels of fan-out would oversubscribe the
    /// machine with spawn/join churn (e.g. a parallel benchmark grid whose
    /// cells each call the parallel GEMM). Results are unaffected.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };

    /// Set while this thread holds [`OVERRIDE_LOCK`], so nested
    /// [`with_num_threads`] calls skip re-locking instead of
    /// self-deadlocking on the non-reentrant mutex.
    static HOLDS_OVERRIDE: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` on a worker thread with the nested-parallelism guard set.
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|w| w.set(true));
    let out = f();
    IN_WORKER.with(|w| w.set(false));
    out
}

/// Process-wide thread-count override (0 = no override).
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_num_threads`] callers so concurrent overrides cannot
/// interleave their save/restore and leak a stale value.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Chunk counts below this run sequentially regardless of thread count:
/// there is no pool, so a parallel call spawns fresh scoped threads (tens
/// of microseconds). This threshold only sees the *chunk count* — callers
/// whose per-chunk work is trivially small gate on total work size
/// themselves (as the GEMM and model hot loops do). Results never depend
/// on the threshold — only wall clock.
const SPAWN_THRESHOLD: usize = 2;

/// The number of worker threads the helpers may use.
///
/// Resolution order: [`with_num_threads`] override, then the
/// `RAYON_NUM_THREADS` environment variable, then
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let forced = OVERRIDE_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    // The env var and machine parallelism are resolved once: std::env::var
    // takes the process env lock and allocates, and the hot loops ask for
    // the thread count several times per kernel call.
    static DEFAULT_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs `f` with the helper thread count forced to `n` (restored after,
/// even if `f` panics).
///
/// Intended for determinism tests: run the same computation with 1 and
/// with a larger count and require identical results. The override is
/// process-wide, so callers are serialized by an internal lock; code
/// running *outside* any `with_num_threads` call concurrently with one
/// simply observes the temporary override, which changes scheduling but —
/// by the determinism contract of this crate's helpers — never results.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    // Nested calls from the same thread already hold the lock — re-locking
    // would self-deadlock, so only the outermost call serializes.
    let _serialize = if HOLDS_OVERRIDE.with(Cell::get) {
        None
    } else {
        let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        HOLDS_OVERRIDE.with(|h| h.set(true));
        Some(guard)
    };
    struct Restore {
        prev: usize,
        release_lock_flag: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE_THREADS.store(self.prev, Ordering::SeqCst);
            if self.release_lock_flag {
                HOLDS_OVERRIDE.with(|h| h.set(false));
            }
        }
    }
    let _restore = Restore {
        prev: OVERRIDE_THREADS.swap(n, Ordering::SeqCst),
        release_lock_flag: _serialize.is_some(),
    };
    f()
}

/// Splits `len` items into at most `threads` contiguous ranges of
/// near-equal size, returning `(start, end)` pairs in order.
fn partitions(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.min(len).max(1);
    let base = len / t;
    let extra = len % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for i in 0..t {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Applies `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of
/// `data` (the last chunk may be shorter), in parallel.
///
/// Chunks are disjoint `&mut` windows, so each index is written by exactly
/// one closure invocation; results are identical for any thread count.
///
/// # Panics
///
/// Panics if `chunk_len == 0`. A panic inside `f` propagates.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = current_num_threads();
    if threads <= 1 || n_chunks < SPAWN_THRESHOLD {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f = &f;
    thread::scope(|s| {
        let mut rest = data;
        for (start, end) in partitions(n_chunks, threads) {
            let split = ((end - start) * chunk_len).min(rest.len());
            let (mine, tail) = rest.split_at_mut(split);
            rest = tail;
            s.spawn(move || {
                as_worker(|| {
                    for (i, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                        f(start + i, chunk);
                    }
                })
            });
        }
    });
}

/// [`par_chunks_mut`] when `parallel` is true, a plain sequential chunk
/// loop otherwise.
///
/// The helpers have no thread pool, so a parallel call spawns fresh
/// scoped threads; hot loops whose total work can be trivially small pass
/// a work-size condition here (results are identical either way).
pub fn par_chunks_mut_if<T, F>(parallel: bool, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if parallel {
        par_chunks_mut(data, chunk_len, f);
    } else {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
    }
}

/// Computes `f(i)` for `i in 0..len` in parallel, returning results in
/// index order.
pub fn par_map_collect<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || len < SPAWN_THRESHOLD {
        return (0..len).map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    let f = &f;
    thread::scope(|s| {
        let mut rest = slots.as_mut_slice();
        for (start, end) in partitions(len, threads) {
            let (mine, tail) = rest.split_at_mut(end - start);
            rest = tail;
            s.spawn(move || {
                as_worker(|| {
                    for (off, slot) in mine.iter_mut().enumerate() {
                        *slot = Some(f(start + off));
                    }
                })
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    thread::scope(|s| {
        let hb = s.spawn(|| as_worker(b));
        let ra = a();
        // Re-raise the original payload so assertion messages from `b`
        // survive the thread boundary, as they do on the sequential path.
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// A job submitted to a [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion bookkeeping shared between a pool and its workers.
#[derive(Debug)]
struct PoolShared {
    /// Jobs submitted but not yet finished.
    pending: Mutex<usize>,
    /// Signalled whenever `pending` drops to zero.
    idle: Condvar,
    /// Set when any job panicked; surfaced by [`WorkerPool::wait_idle`].
    panicked: AtomicBool,
}

/// A small pool of long-lived worker threads with per-worker FIFO queues.
///
/// The scoped helpers above spawn fresh threads on every call, which is
/// fine for one large kernel but wasteful for a serving loop that
/// dispatches many small batches: each dispatch would pay a thread
/// spawn/join. A `WorkerPool` pays the spawn cost once; jobs submitted to
/// the same worker index run in submission order on the same OS thread,
/// so per-thread state (thread-local scratch arenas, allocator caches)
/// stays warm across batches and the steady state spawns nothing.
///
/// Determinism: the pool imposes no cross-worker ordering — callers must
/// key results by an index they control (as [`par_map_collect`] does), not
/// by completion order. Jobs run with the nested-parallelism guard set, so
/// parallel helpers called from inside a job degrade to sequential loops
/// exactly like nested scoped calls do — results are unaffected.
///
/// # Example
///
/// ```
/// use defa_parallel::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(2);
/// let (tx, rx) = mpsc::channel();
/// for i in 0..4u64 {
///     let tx = tx.clone();
///     pool.submit(i as usize, move || tx.send((i, i * i)).unwrap());
/// }
/// pool.wait_idle();
/// let mut out: Vec<_> = rx.try_iter().collect();
/// out.sort_unstable();
/// assert_eq!(out, vec![(0, 0), (1, 1), (2, 4), (3, 9)]);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawns a pool of `threads.max(1)` workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            pending: Mutex::new(0),
            idle: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Job>();
            let shared = Arc::clone(&shared);
            handles.push(thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| as_worker(job)));
                    if outcome.is_err() {
                        shared.panicked.store(true, Ordering::SeqCst);
                    }
                    let mut pending = shared.pending.lock().unwrap_or_else(|p| p.into_inner());
                    *pending -= 1;
                    if *pending == 0 {
                        shared.idle.notify_all();
                    }
                }
            }));
            senders.push(tx);
        }
        WorkerPool { senders, handles, shared }
    }

    /// A pool sized like the scoped helpers ([`current_num_threads`]).
    pub fn with_default_threads() -> Self {
        Self::new(current_num_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues `job` on worker `worker % threads()`.
    ///
    /// Jobs on one worker run FIFO; jobs on different workers run
    /// concurrently. The job must own its data (`'static`) — move results
    /// out through a channel or shared slot keyed by caller-chosen index.
    pub fn submit(&self, worker: usize, job: impl FnOnce() + Send + 'static) {
        {
            let mut pending = self.shared.pending.lock().unwrap_or_else(|p| p.into_inner());
            *pending += 1;
        }
        let slot = worker % self.senders.len();
        // Workers only exit when the senders drop (in Drop), so the
        // receiver is alive for the whole pool lifetime.
        self.senders[slot].send(Box::new(job)).expect("pool worker alive");
    }

    /// Blocks until every submitted job has finished.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked since the pool was created, so failures
    /// in detached jobs cannot be silently swallowed.
    pub fn wait_idle(&self) {
        let mut pending = self.shared.pending.lock().unwrap_or_else(|p| p.into_inner());
        while *pending > 0 {
            pending = self.shared.idle.wait(pending).unwrap_or_else(|p| p.into_inner());
        }
        drop(pending);
        assert!(!self.shared.panicked.load(Ordering::SeqCst), "a WorkerPool job panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels lets each worker drain its queue and exit.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // Worker threads catch job panics, so join only fails if the
            // runtime tore the thread down; nothing to clean up then.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_range_in_order() {
        for len in [0usize, 1, 5, 17, 100] {
            for t in [1usize, 2, 3, 8] {
                let parts = partitions(len, t);
                let mut expect = 0;
                for &(s, e) in &parts {
                    assert_eq!(s, expect);
                    assert!(e >= s);
                    expect = e;
                }
                assert_eq!(expect, len);
            }
        }
    }

    #[test]
    fn par_chunks_mut_matches_sequential() {
        let mut par = vec![0u64; 1037];
        let mut seq = vec![0u64; 1037];
        par_chunks_mut(&mut par, 8, |i, c| {
            for (j, x) in c.iter_mut().enumerate() {
                *x = (i * 1000 + j) as u64;
            }
        });
        for (i, c) in seq.chunks_mut(8).enumerate() {
            for (j, x) in c.iter_mut().enumerate() {
                *x = (i * 1000 + j) as u64;
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn gated_variant_matches_both_ways() {
        for parallel in [false, true] {
            let mut v = vec![0usize; 100];
            par_chunks_mut_if(parallel, &mut v, 9, |i, c| c.iter_mut().for_each(|x| *x = i + 1));
            assert_eq!(v[0], 1);
            assert_eq!(v[99], 12);
        }
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let out = par_map_collect(513, |i| i * i);
        assert_eq!(out.len(), 513);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn with_num_threads_forces_count() {
        with_num_threads(1, || assert_eq!(current_num_threads(), 1));
        with_num_threads(3, || assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn with_num_threads_is_reentrant() {
        let inner = with_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            let inner = with_num_threads(1, current_num_threads);
            // Inner override restored to the outer one on exit.
            assert_eq!(current_num_threads(), 3);
            inner
        });
        assert_eq!(inner, 1);
    }

    #[test]
    fn nested_calls_run_sequentially_with_correct_results() {
        // Outer fan-out: each item itself calls a parallel helper; the
        // nested call must degrade to sequential (no thread explosion)
        // and still produce identical results.
        let outer = par_map_collect(8, |i| {
            let inner_threads = par_map_collect(4, |_| current_num_threads());
            assert!(inner_threads.iter().all(|&t| t == 1), "nested call must see 1 thread");
            let mut v = vec![0usize; 32];
            par_chunks_mut(&mut v, 5, |c, chunk| chunk.iter_mut().for_each(|x| *x = i + c));
            v.iter().sum::<usize>()
        });
        for (i, &sum) in outer.iter().enumerate() {
            let mut expect = vec![0usize; 32];
            for (c, chunk) in expect.chunks_mut(5).enumerate() {
                chunk.iter_mut().for_each(|x| *x = i + c);
            }
            assert_eq!(sum, expect.iter().sum::<usize>());
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn pool_runs_jobs_and_goes_idle() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let results = Arc::new(Mutex::new(vec![0usize; 100]));
        for i in 0..100 {
            let results = Arc::clone(&results);
            pool.submit(i, move || {
                results.lock().unwrap()[i] = i + 1;
            });
        }
        pool.wait_idle();
        let r = results.lock().unwrap();
        for (i, &v) in r.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn pool_jobs_on_one_worker_run_fifo() {
        let pool = WorkerPool::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50 {
            let order = Arc::clone(&order);
            // All on worker 0: must observe submission order.
            pool.submit(0, move || order.lock().unwrap().push(i));
        }
        pool.wait_idle();
        assert_eq!(*order.lock().unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pool_jobs_see_the_worker_guard() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(0, move || {
            // Nested helpers inside a pool job degrade to sequential.
            tx.send(current_num_threads()).unwrap();
        });
        pool.wait_idle();
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "a WorkerPool job panicked")]
    fn pool_surfaces_job_panics() {
        let pool = WorkerPool::new(1);
        pool.submit(0, || panic!("boom"));
        pool.wait_idle();
    }

    #[test]
    fn zero_thread_request_still_gets_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(7, move || tx.send(1).unwrap());
        pool.wait_idle();
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn single_thread_override_still_computes() {
        with_num_threads(1, || {
            let mut v = vec![0usize; 64];
            par_chunks_mut(&mut v, 7, |i, c| c.iter_mut().for_each(|x| *x = i));
            assert_eq!(v[63], 9);
            assert_eq!(par_map_collect(10, |i| i + 1)[9], 10);
        });
    }
}
