//! Analytic GPU model for MSDeformAttn.
//!
//! §2.2's profiling shows that MSGS + aggregation dominate MSDeformAttn
//! latency on GPUs (60–63 %) despite being ~3 % of the arithmetic: the
//! gather-heavy bilinear sampling is memory-bound with poor locality, while
//! the batch-1 projections run far below peak. The model therefore splits
//! the module into:
//!
//! * **projections + softmax** — compute-bound at a small effective GEMM
//!   utilization (`gemm_utilization`, batch-1 DETR-scale GEMMs);
//! * **MSGS + aggregation** — bandwidth-bound: every sampling point
//!   gathers 4 neighbors × `D_h` channels at FP16, at a fraction of peak
//!   bandwidth (`msgs_efficiency`) reflecting the irregular access
//!   pattern's cache behaviour.
//!
//! Calibration: with the constants below, the full De-DETR encoder lands
//! at ≈75 ms on the 3090Ti with a ≈63 % MSGS share — consistent with the
//! paper's measured 9.7 fps end-to-end (56 ms in MSDeformAttn, the bulk of
//! it in the encoder) and matching Fig. 1(b)'s breakdown.

use defa_model::flops::BlockFlops;
use defa_model::MsdaConfig;

/// Bytes per element the GPU moves during grid-sampling (FP16).
const GPU_SAMPLE_BYTES: f64 = 2.0;

/// Specification and calibrated efficiency constants of one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Board power in watts.
    pub tdp_w: f64,
    /// Effective fraction of peak FLOPs reached by batch-1 DETR GEMMs.
    pub gemm_utilization: f64,
    /// Effective fraction of peak bandwidth reached by grid-sample
    /// gathers.
    pub msgs_efficiency: f64,
    /// Average activity factor applied to TDP for energy estimates.
    pub activity: f64,
}

impl GpuSpec {
    /// NVIDIA RTX 2080Ti (13.5 TFLOPS FP32, 616 GB/s, 250 W).
    pub fn rtx_2080ti() -> Self {
        GpuSpec {
            name: "RTX 2080Ti",
            peak_flops: 13.5e12,
            mem_bandwidth: 616e9,
            tdp_w: 250.0,
            gemm_utilization: 0.032,
            msgs_efficiency: 0.11,
            activity: 0.5,
        }
    }

    /// NVIDIA RTX 3090Ti (40 TFLOPS FP32, 1008 GB/s, 450 W).
    pub fn rtx_3090ti() -> Self {
        GpuSpec {
            name: "RTX 3090Ti",
            peak_flops: 40e12,
            mem_bandwidth: 1008e9,
            tdp_w: 450.0,
            gemm_utilization: 0.032,
            msgs_efficiency: 0.11,
            activity: 0.5,
        }
    }

    /// Latency of one full MSDeformAttn encoder (all blocks) on this GPU.
    pub fn msda_latency(&self, cfg: &MsdaConfig) -> GpuLatency {
        let flops = BlockFlops::for_config(cfg);
        let layers = cfg.n_layers as f64;

        // Compute-bound part: projections + softmax (no FFN — Fig. 1(b)
        // profiles the MSDeformAttn module).
        let other_flops =
            (flops.attn_proj + flops.offset_proj + flops.value_proj + flops.softmax) as f64;
        let other_s = other_flops * layers / (self.peak_flops * self.gemm_utilization);

        // Bandwidth-bound part: each sampling point gathers 4 neighbors of
        // D_h channels; aggregation re-reads the sampled values once.
        let points = cfg.total_points() as f64;
        let gather_bytes = points * 4.0 * cfg.head_dim() as f64 * GPU_SAMPLE_BYTES;
        let agg_bytes = points * cfg.head_dim() as f64 * GPU_SAMPLE_BYTES * 2.0;
        let msgs_s =
            (gather_bytes + agg_bytes) * layers / (self.mem_bandwidth * self.msgs_efficiency);

        GpuLatency { other_s, msgs_s }
    }

    /// Energy for a run of `seconds`, in joules.
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.tdp_w * self.activity * seconds
    }

    /// Energy for a modeled duration of `cost_ns` virtual nanoseconds, in
    /// integer picojoules.
    ///
    /// This is the serving-side fixed-point form of [`Self::energy_joules`]
    /// (TDP × activity × time): quantizing once per request lets the
    /// runtime accumulate totals that are byte-identical regardless of
    /// summation order. 1 W · 1 ns = 1000 pJ, hence the 1e3 factor.
    pub fn energy_picojoules(&self, cost_ns: u64) -> u128 {
        (self.tdp_w * self.activity * 1e3 * cost_ns as f64).round() as u128
    }
}

/// GPU latency split into the two §2.2 components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuLatency {
    /// Projections + softmax ("Others" in Fig. 1(b)).
    pub other_s: f64,
    /// MSGS + aggregation.
    pub msgs_s: f64,
}

impl GpuLatency {
    /// Total module latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.other_s + self.msgs_s
    }

    /// Share of latency spent in MSGS + aggregation (Fig. 1(b)).
    pub fn msgs_fraction(&self) -> f64 {
        self.msgs_s / self.total_s().max(1e-18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_dominates_like_figure1b() {
        let lat = GpuSpec::rtx_3090ti().msda_latency(&MsdaConfig::full());
        let frac = lat.msgs_fraction();
        // Paper: 60.4-63.3 % across the three benchmarks.
        assert!(frac > 0.55 && frac < 0.72, "msgs fraction {frac}");
    }

    #[test]
    fn full_encoder_latency_matches_paper_magnitude() {
        // 9.7 fps end-to-end with 54.7 % in MSDeformAttn -> ~56 ms; the
        // encoder is the bulk of it. Accept 30-80 ms.
        let lat = GpuSpec::rtx_3090ti().msda_latency(&MsdaConfig::full());
        let ms = lat.total_s() * 1e3;
        assert!(ms > 40.0 && ms < 110.0, "3090Ti latency {ms} ms");
    }

    #[test]
    fn older_gpu_is_slower() {
        let cfg = MsdaConfig::full();
        let t28 = GpuSpec::rtx_2080ti().msda_latency(&cfg).total_s();
        let t39 = GpuSpec::rtx_3090ti().msda_latency(&cfg).total_s();
        assert!(t28 > t39 * 1.4, "2080Ti {t28} vs 3090Ti {t39}");
    }

    #[test]
    fn energy_scales_with_time_and_tdp() {
        let g = GpuSpec::rtx_3090ti();
        let e = g.energy_joules(0.05);
        assert!((e - 450.0 * 0.5 * 0.05).abs() < 1e-9);
    }

    #[test]
    fn picojoule_form_matches_the_float_model() {
        let g = GpuSpec::rtx_3090ti();
        // 1 ms at 225 W effective = 0.225 J = 2.25e11 pJ, exactly.
        assert_eq!(g.energy_picojoules(1_000_000), 225_000_000_000);
        assert_eq!(g.energy_picojoules(0), 0);
        let pj = g.energy_picojoules(123_456_789) as f64 * 1e-12;
        let j = g.energy_joules(123_456_789e-9);
        assert!((pj - j).abs() / j < 1e-9, "{pj} vs {j}");
    }

    #[test]
    fn latency_scales_with_model_size() {
        let g = GpuSpec::rtx_3090ti();
        let small = g.msda_latency(&MsdaConfig::small()).total_s();
        let full = g.msda_latency(&MsdaConfig::full()).total_s();
        assert!(full > small * 10.0);
    }
}
