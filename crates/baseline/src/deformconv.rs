//! Deformable-convolution workload model (§2.2 comparison).
//!
//! DeformConv (Dai et al., ICCV'17) also grid-samples with learned offsets,
//! and prior accelerators (CoDeNet, SiPS'22) target it — but §2.2 argues
//! MSDeformAttn's workload is qualitatively heavier: the multi-scale fmaps
//! are ~21.3× larger than DeformConv's single-scale fmap, and each head
//! samples `N_l·N_p`× more points. This module quantifies both claims on
//! explicit workload definitions.

use defa_model::{LevelShape, MsdaConfig};

/// A single-scale deformable-convolution workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeformConvWorkload {
    /// Output feature-map shape (sampling happens per output pixel).
    pub fmap: LevelShape,
    /// Kernel height × width (sampling points per output pixel).
    pub kernel: usize,
    /// Channels.
    pub channels: usize,
}

impl DeformConvWorkload {
    /// The reference DeformConv workload of embedded detectors (CoDeNet
    /// class): a 29×29 single-scale fmap with a 3×3 deformable kernel.
    /// Against the Deformable-DETR pyramid this yields the paper's ~21.3×
    /// fmap amplification.
    pub fn reference() -> Self {
        DeformConvWorkload { fmap: LevelShape::new(29, 29), kernel: 3, channels: 256 }
    }

    /// Sampling points per output pixel (the deformable kernel taps).
    pub fn points_per_pixel(&self) -> usize {
        self.kernel * self.kernel
    }

    /// Total sampling points over the fmap.
    pub fn total_points(&self) -> u64 {
        self.fmap.pixels() as u64 * self.points_per_pixel() as u64
    }
}

/// The §2.2 workload-amplification comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadComparison {
    /// Multi-scale pixels ÷ single-scale pixels (paper: ~21.3×).
    pub fmap_amplification: f64,
    /// MSDeformAttn per-head sampling points ÷ DeformConv kernel taps
    /// (paper: "N_l·N_p× more ... in each head").
    pub points_per_head_ratio: f64,
    /// Total sampling points ratio across the whole operator.
    pub total_points_ratio: f64,
}

/// Compares an MSDeformAttn configuration against a DeformConv workload.
pub fn compare(cfg: &MsdaConfig, dc: &DeformConvWorkload) -> WorkloadComparison {
    WorkloadComparison {
        fmap_amplification: cfg.n_in() as f64 / dc.fmap.pixels() as f64,
        points_per_head_ratio: cfg.points_per_head() as f64 / dc.points_per_pixel() as f64,
        total_points_ratio: cfg.total_points() as f64 / dc.total_points() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmap_amplification_matches_paper() {
        let cmp = compare(&MsdaConfig::full(), &DeformConvWorkload::reference());
        // Paper: 21.3x.
        assert!(
            cmp.fmap_amplification > 18.0 && cmp.fmap_amplification < 25.0,
            "amplification {}",
            cmp.fmap_amplification
        );
    }

    #[test]
    fn per_head_points_ratio_is_nl_np_over_kernel() {
        let cfg = MsdaConfig::full(); // 4 levels x 4 points = 16 per head
        let cmp = compare(&cfg, &DeformConvWorkload::reference());
        assert!((cmp.points_per_head_ratio - 16.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn total_points_gap_is_orders_of_magnitude() {
        let cmp = compare(&MsdaConfig::full(), &DeformConvWorkload::reference());
        assert!(cmp.total_points_ratio > 100.0, "{}", cmp.total_points_ratio);
    }

    #[test]
    fn reference_workload_shape() {
        let dc = DeformConvWorkload::reference();
        assert_eq!(dc.points_per_pixel(), 9);
        assert_eq!(dc.total_points(), 841 * 9);
    }
}
