//! Dense-attention workload model and the §2.2 buffer-size argument.
//!
//! §2.2: existing attention accelerators (ELSA, SpAtten, BESAPU) prune
//! token-to-token relevance that MSDeformAttn never computes, and — if one
//! tried to run MSGS on them — the unbounded sampling range would require
//! keeping the whole multi-scale value tensor on chip: "up to 9.8 MB
//! on-chip buffer size". DEFA's level-wise range narrowing shrinks the
//! resident set to bounded row buffers instead.

use defa_model::MsdaConfig;
use defa_prune::RangeConfig;

/// Bytes per element the attention accelerators buffer (FP16/INT16 class).
pub const BASELINE_ELEMENT_BYTES: u64 = 2;

/// FLOPs of one dense (DETR-style) self-attention layer over `n` tokens of
/// width `d`: `QKᵀ` + softmax·V + the four projections.
pub fn dense_attention_flops(n: u64, d: u64) -> u64 {
    let qkt = 2 * n * n * d;
    let av = 2 * n * n * d;
    let proj = 4 * 2 * n * d * d;
    qkt + av + proj
}

/// On-chip bytes an attention accelerator would need to host MSGS without
/// range narrowing: the full multi-scale value tensor must be resident
/// (sampling addresses are unbounded), plus a query tile and the
/// score/probability staging.
pub fn unbounded_msgs_buffer_bytes(cfg: &MsdaConfig) -> u64 {
    let n = cfg.n_in() as u64;
    let d = cfg.d_model as u64;
    let value = n * d * BASELINE_ELEMENT_BYTES;
    let query_tile = 256 * d * BASELINE_ELEMENT_BYTES;
    let probs = n * cfg.points_per_query() as u64 / 8; // masks/probs staging
    value + query_tile + probs
}

/// On-chip bytes DEFA needs for the same sampling, with level-wise bounded
/// row buffers (per-head channels, double-buffered).
pub fn defa_msgs_buffer_bytes(cfg: &MsdaConfig) -> u64 {
    let ranges = RangeConfig::paper_defaults(cfg);
    let dh = cfg.head_dim() as u64;
    2 * ranges.storage_pixels(cfg) * dh * 12 / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_buffer_is_around_ten_megabytes() {
        // Paper: "up to 9.8MB on-chip buffer size".
        let mb = unbounded_msgs_buffer_bytes(&MsdaConfig::full()) as f64 / 1e6;
        assert!(mb > 8.0 && mb < 12.0, "buffer {mb} MB");
    }

    #[test]
    fn defa_buffer_is_two_orders_smaller() {
        let cfg = MsdaConfig::full();
        let unbounded = unbounded_msgs_buffer_bytes(&cfg);
        let ours = defa_msgs_buffer_bytes(&cfg);
        assert!(unbounded / ours > 20, "{unbounded} vs {ours}");
    }

    #[test]
    fn dense_attention_is_quadratic() {
        let f1 = dense_attention_flops(1000, 256);
        let f2 = dense_attention_flops(2000, 256);
        // Doubling tokens should roughly quadruple the QK^T work.
        assert!(f2 as f64 / f1 as f64 > 2.5);
    }
}
