//! Faster R-CNN reference point (Fig. 6(a) and §1).

/// COCO detection AP of Faster R-CNN as quoted in Fig. 6(a).
pub const FASTER_RCNN_AP: f32 = 42.0;

/// End-to-end workload of Faster R-CNN in GFLOPs (§1).
pub const FASTER_RCNN_GFLOPS: f64 = 180.0;

/// Frames per second Faster R-CNN reaches on the RTX 3090Ti (§1: "over
/// 25 fps").
pub const FASTER_RCNN_FPS_3090TI: f64 = 25.0;

/// End-to-end workload of Deformable DETR in GFLOPs (§1).
pub const DEFORMABLE_DETR_GFLOPS: f64 = 173.0;

/// Frames per second Deformable DETR reaches on the RTX 3090Ti (§1).
pub const DEFORMABLE_DETR_FPS_3090TI: f64 = 9.7;

/// The §1 motivation in one number: similar FLOPs, ~2.6× lower fps.
pub fn throughput_gap() -> f64 {
    FASTER_RCNN_FPS_3090TI / DEFORMABLE_DETR_FPS_3090TI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_comparable_but_speeds_are_not() {
        let flops_ratio = FASTER_RCNN_GFLOPS / DEFORMABLE_DETR_GFLOPS;
        assert!(flops_ratio > 0.9 && flops_ratio < 1.2);
        assert!(throughput_gap() > 2.0);
    }
}
