//! Spec-sheet models of the attention ASICs compared in Table 1.
//!
//! The paper compares DEFA against published silicon numbers; so do we.
//! Each entry carries the Table 1 row plus a short description of the
//! pruning mechanism, used by the comparison binary's commentary.

/// Published specification of one comparison ASIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicSpec {
    /// Short name.
    pub name: &'static str,
    /// Publication venue tag as in Table 1.
    pub venue: &'static str,
    /// Supported function.
    pub function: &'static str,
    /// Process node in nm.
    pub technology_nm: u32,
    /// Core area in mm².
    pub area_mm2: f64,
    /// Clock frequency in MHz.
    pub frequency_mhz: u32,
    /// Arithmetic precision.
    pub precision: &'static str,
    /// Power in mW.
    pub power_mw: f64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Pruning / approximation mechanism.
    pub mechanism: &'static str,
}

impl AsicSpec {
    /// Energy efficiency in GOPS/W.
    pub fn energy_efficiency(&self) -> f64 {
        self.throughput_gops / (self.power_mw / 1e3)
    }
}

/// ELSA (ISCA'21): speculative candidate selection via orthogonal
/// projection.
pub const ELSA: AsicSpec = AsicSpec {
    name: "ELSA",
    venue: "ISCA'21",
    function: "Attention",
    technology_nm: 40,
    area_mm2: 1.26,
    frequency_mhz: 1000,
    precision: "INT9",
    power_mw: 969.4,
    throughput_gops: 1088.0,
    mechanism: "random-projection candidate speculation",
};

/// SpAtten (HPCA'21): cascade token and head pruning by cumulative score.
pub const SPATTEN: AsicSpec = AsicSpec {
    name: "SpAtten",
    venue: "HPCA'21",
    function: "Attention",
    technology_nm: 40,
    area_mm2: 1.55,
    frequency_mhz: 1000,
    precision: "INT12",
    power_mw: 294.0,
    throughput_gops: 360.0,
    mechanism: "cascade token/head pruning by attention-score sort",
};

/// BESAPU (JSSC'22): bidirectional speculation and approximate computation
/// of weakly related tokens.
pub const BESAPU: AsicSpec = AsicSpec {
    name: "BESAPU",
    venue: "JSSC'22",
    function: "Attention",
    technology_nm: 28,
    area_mm2: 6.82,
    frequency_mhz: 500,
    precision: "INT12",
    power_mw: 272.8,
    throughput_gops: 522.0,
    mechanism: "bidirectional speculation with out-of-order scheduling",
};

/// The paper's reported DEFA row of Table 1 (for cross-checking the
/// simulator's own numbers against the publication).
pub const DEFA_PAPER: AsicSpec = AsicSpec {
    name: "DEFA",
    venue: "DAC'24",
    function: "DeformAttn",
    technology_nm: 40,
    area_mm2: 2.63,
    frequency_mhz: 400,
    precision: "INT12",
    power_mw: 99.8,
    throughput_gops: 418.0,
    mechanism: "FWP + PAP pruning, inter-level parallel MSGS, operator fusion",
};

/// The three comparison ASICs in Table 1 order.
pub const ASICS: [AsicSpec; 3] = [ELSA, SPATTEN, BESAPU];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_efficiencies_match_paper() {
        assert!((ELSA.energy_efficiency() - 1120.0).abs() < 5.0);
        assert!((SPATTEN.energy_efficiency() - 1224.0).abs() < 5.0);
        assert!((BESAPU.energy_efficiency() - 1910.0).abs() < 10.0);
        assert!((DEFA_PAPER.energy_efficiency() - 4188.0).abs() < 10.0);
    }

    #[test]
    fn defa_improvement_factors_match_paper() {
        // Paper: 3.7x over ELSA, 3.4x over SpAtten, 2.2x over BESAPU.
        let d = DEFA_PAPER.energy_efficiency();
        assert!((d / ELSA.energy_efficiency() - 3.7).abs() < 0.2);
        assert!((d / SPATTEN.energy_efficiency() - 3.4).abs() < 0.2);
        assert!((d / BESAPU.energy_efficiency() - 2.2).abs() < 0.2);
    }

    #[test]
    fn only_defa_supports_deformable_attention() {
        assert!(ASICS.iter().all(|a| a.function == "Attention"));
        assert_eq!(DEFA_PAPER.function, "DeformAttn");
    }
}
