//! Comparison baselines for the DEFA evaluation (§5.4).
//!
//! * [`gpu`] — an analytic latency/energy model of the NVIDIA RTX 2080Ti
//!   and 3090Ti running MSDeformAttn, calibrated against the paper's own
//!   measurement (Deformable DETR at 9.7 fps on the 3090Ti with
//!   MSGS + aggregation at ~63 % of module latency).
//! * [`accelerators`] — spec-sheet models of the attention ASICs in
//!   Table 1 (ELSA, SpAtten, BESAPU) and helpers for the efficiency
//!   comparison.
//! * [`faster_rcnn`] — the Faster R-CNN reference point of Fig. 6(a).
//! * [`deformconv`] / [`attention`] — the §2.2 workload analysis: why
//!   DeformConv accelerators and attention accelerators both fall short of
//!   MSDeformAttn's grid-sampling workload.

pub mod accelerators;
pub mod attention;
pub mod deformconv;
pub mod faster_rcnn;
pub mod gpu;

pub use accelerators::{AsicSpec, ASICS};
pub use gpu::{GpuLatency, GpuSpec};
