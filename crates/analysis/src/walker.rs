//! Workspace traversal and file classification.
//!
//! The determinism rules do not apply uniformly: wall-clock reads are
//! legitimate in bench binaries (they *measure* wall time), panics are
//! fine in test code, and the `tests/` host crate is all test code. The
//! walker finds every `.rs` file under the workspace and attaches the
//! classification the rules key their scopes on. Paths are always
//! stored and reported **relative to the workspace root with `/`
//! separators**, so diagnostics, allowlist entries and the unsafe
//! inventory are stable across machines.

use std::path::{Path, PathBuf};

/// How a source file participates in the build — decides rule scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some `crates/*/src/`, excluding `src/bin/`.
    Library,
    /// Binary targets: `src/bin/**`, `src/main.rs`.
    Bin,
    /// Criterion-style benches under `crates/*/benches/`.
    Bench,
    /// `examples/**` demo programs.
    Example,
    /// The integration-test host crate (`tests/**`).
    TestHost,
}

/// One workspace source file, read and classified.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Scope classification.
    pub kind: FileKind,
    /// File contents.
    pub text: String,
}

impl SourceFile {
    /// Builds a classified in-memory file — the entry point tests and
    /// negative fixtures use to run rules on synthetic sources.
    pub fn synthetic(path: &str, text: &str) -> SourceFile {
        SourceFile { path: path.to_string(), kind: classify(path), text: text.to_string() }
    }
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileKind::TestHost
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Library
    }
}

/// Walks the workspace at `root`, returning every `.rs` file in
/// deterministic (sorted-path) order. Skips `target/`, `.git/` and
/// `bench-out/`.
pub fn walk(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&p)?;
        out.push(SourceFile { kind: classify(&rel), path: rel, text });
    }
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "bench-out" | ".github") {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_target_layout() {
        assert_eq!(classify("crates/serve/src/runtime.rs"), FileKind::Library);
        assert_eq!(classify("crates/serve/src/obs/mod.rs"), FileKind::Library);
        assert_eq!(classify("crates/bench/src/bin/serve.rs"), FileKind::Bin);
        assert_eq!(classify("crates/foo/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/benches/gemm.rs"), FileKind::Bench);
        assert_eq!(classify("examples/serving.rs"), FileKind::Example);
        assert_eq!(classify("tests/tests/serving.rs"), FileKind::TestHost);
        assert_eq!(classify("tests/src/lib.rs"), FileKind::TestHost);
        assert_eq!(classify("crates/analysis/tests/fixtures.rs"), FileKind::TestHost);
    }

    #[test]
    fn walk_finds_this_crate_in_sorted_order() {
        // CARGO_MANIFEST_DIR = crates/analysis → workspace root is ../..
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = walk(&root).expect("workspace walk");
        let mut sorted = files.iter().map(|f| f.path.clone()).collect::<Vec<_>>();
        assert!(sorted.iter().any(|p| p == "crates/analysis/src/walker.rs"));
        assert!(sorted.iter().all(|p| !p.contains("target/")));
        let orig = sorted.clone();
        sorted.sort();
        assert_eq!(orig, sorted, "walk order must be deterministic");
    }
}
