//! A hand-rolled token-level lexer for Rust source.
//!
//! The container has no crates.io access, so `syn`/`proc-macro2` are off
//! the table — the same constraint that produced the local
//! rayon/criterion stand-ins. The determinism rules only need *tokens
//! with spans*, not a syntax tree: an identifier is a potential API
//! call, a comment is a potential `// SAFETY:` justification, and
//! everything inside string literals must be ignored. This lexer covers
//! the token forms that actually occur in real Rust source, including
//! the classically tricky ones:
//!
//! * nested block comments (`/* /* */ */`);
//! * raw strings with arbitrary hash fences (`r##"…"##`), byte strings
//!   and raw byte strings;
//! * lifetimes vs char literals (`'a` vs `'a'`, including `'\''`);
//! * raw identifiers (`r#match`) — lexed as identifiers, never as the
//!   start of a raw string;
//! * numeric literals with underscores, type suffixes and exponents.
//!
//! Anything it does not model (float vs int distinction, keyword
//! classification beyond the identifier text) is irrelevant to the
//! rules and deliberately left out.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `r#match`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Character literal (`'x'`, `'\''`, `'\u{1F600}'`).
    CharLit,
    /// String literal of any form (plain, raw, byte, raw byte).
    StrLit,
    /// Numeric literal (`0xFF`, `1_000`, `2.5e-3`, `42usize`).
    NumLit,
    /// Line comment (`//`, `///`, `//!`) including its text.
    LineComment,
    /// Block comment (`/* … */`, nested) including its text.
    BlockComment,
    /// Any single punctuation byte (`.`, `!`, `(`, `{`, `#`, …).
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text, exactly as written (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// True for the punctuation byte `b`.
    pub fn is_punct(&self, b: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes()[0] == b as u8
    }

    /// True for comments of either form.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Identifier text with any `r#` prefix stripped, or `None`.
    pub fn ident(&self) -> Option<&str> {
        if self.kind == TokenKind::Ident {
            Some(self.text.strip_prefix("r#").unwrap_or(&self.text))
        } else {
            None
        }
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (strings,
/// block comments) consume to end of input rather than erroring: the
/// rules run over code that `rustc` already accepted, so recovery only
/// matters for fixture robustness.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), src, pos: 0, line: 1, col: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.b.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking line/col.
    fn bump(&mut self) {
        if self.b[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.b.len() {
                self.bump();
            }
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token { kind, text: self.src[start..self.pos].to_string(), line, col });
    }

    fn run(mut self) -> Vec<Token> {
        // A leading shebang line is not Rust tokens.
        if self.b.starts_with(b"#!") && !self.b.starts_with(b"#![") {
            while self.peek(0).is_some_and(|c| c != b'\n') {
                self.bump();
            }
        }
        while let Some(c) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                b'\'' => self.lifetime_or_char(start, line, col),
                b'"' => {
                    self.string_body();
                    self.emit(TokenKind::StrLit, start, line, col);
                }
                b'r' | b'b' => {
                    if let Some(kind) = self.raw_or_prefixed(start) {
                        self.emit(kind, start, line, col);
                    } else {
                        self.ident_body();
                        self.emit(TokenKind::Ident, start, line, col);
                    }
                }
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    self.ident_body();
                    self.emit(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => {
                    self.number_body();
                    self.emit(TokenKind::NumLit, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes a `/* … */` comment, honouring nesting.
    fn block_comment(&mut self) {
        self.bump_n(2); // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// After a `'`: a char literal iff the body is followed by a closing
    /// quote, otherwise a lifetime/label. `'\''` and `'\u{…}'` are chars;
    /// `'a` and `'static` are lifetimes; `'a'` is a char.
    fn lifetime_or_char(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape, then to closing quote.
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                while self.peek(0).is_some_and(|c| c != b'\'' && c != b'\n') {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.emit(TokenKind::CharLit, start, line, col);
            }
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 => {
                // Could be `'a'` (char) or `'abc` (lifetime): consume the
                // ident-ish run, then check for a closing quote.
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    self.emit(TokenKind::CharLit, start, line, col);
                } else {
                    self.emit(TokenKind::Lifetime, start, line, col);
                }
            }
            Some(b'\'') => {
                // `''` — empty char literal (invalid Rust, but recover).
                self.bump();
                self.emit(TokenKind::CharLit, start, line, col);
            }
            Some(_) => {
                // `'('`-style single-char literal of a non-ident byte.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.emit(TokenKind::CharLit, start, line, col);
            }
            None => self.emit(TokenKind::Lifetime, start, line, col),
        }
    }

    /// Consumes a plain `"…"` body (after the opening quote is current).
    fn string_body(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw string body `r#*"…"#*` with the fence already
    /// counted (`hashes`), starting at the opening `"`.
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // opening "
        while self.peek(0).is_some() {
            if self.peek(0) == Some(b'"') {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Disambiguates tokens starting with `r` or `b`: raw strings
    /// (`r"`, `r#"`), byte strings (`b"`, `br"`, `br#"`), byte chars
    /// (`b'x'`), raw identifiers (`r#ident`) — or a plain identifier.
    /// Returns the token kind if a literal was consumed, else `None`
    /// (caller lexes an identifier).
    fn raw_or_prefixed(&mut self, _start: usize) -> Option<TokenKind> {
        let c0 = self.peek(0)?;
        // b'x' byte char literal.
        if c0 == b'b' && self.peek(1) == Some(b'\'') {
            self.bump(); // b
            let (s, l, c) = (self.pos, self.line, self.col);
            self.lifetime_or_char(s, l, c);
            // lifetime_or_char already emitted a CharLit/Lifetime token for
            // the quote part; merge is unnecessary for the rules, but we
            // must not emit twice. Pop the sub-token and report as CharLit.
            self.out.pop();
            return Some(TokenKind::CharLit);
        }
        // b"…" byte string.
        if c0 == b'b' && self.peek(1) == Some(b'"') {
            self.bump();
            self.string_body();
            return Some(TokenKind::StrLit);
        }
        // br#*"…" raw byte string.
        if c0 == b'b' && self.peek(1) == Some(b'r') {
            let mut h = 0usize;
            while self.peek(2 + h) == Some(b'#') {
                h += 1;
            }
            if self.peek(2 + h) == Some(b'"') {
                self.bump_n(2 + h);
                self.raw_string_body(h);
                return Some(TokenKind::StrLit);
            }
            return None;
        }
        if c0 == b'r' {
            let mut h = 0usize;
            while self.peek(1 + h) == Some(b'#') {
                h += 1;
            }
            if self.peek(1 + h) == Some(b'"') {
                // r"…" or r#"…"# raw string.
                self.bump_n(1 + h);
                self.raw_string_body(h);
                return Some(TokenKind::StrLit);
            }
            if h == 1
                && self.peek(2).is_some_and(|c| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80)
            {
                // r#ident raw identifier: consume as one Ident token.
                self.bump_n(2);
                self.ident_body();
                return Some(TokenKind::Ident);
            }
        }
        None
    }

    fn ident_body(&mut self) {
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80) {
            self.bump();
        }
    }

    fn number_body(&mut self) {
        // Integer/float body: digits, underscores, radix prefixes, a
        // possible `.` fraction, exponent with sign, and a type suffix.
        // Precise numeric grammar is irrelevant to the rules; consume the
        // maximal plausible run without swallowing `..` or method calls
        // (`1.max(2)`).
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            // `e+`/`e-` exponent signs ride along with the ident-ish run.
            let at_exp = (self.peek(0) == Some(b'e') || self.peek(0) == Some(b'E'))
                && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                && self.peek(2).is_some_and(|c| c.is_ascii_digit());
            self.bump();
            if at_exp {
                self.bump(); // sign
            }
        }
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                let at_exp = (self.peek(0) == Some(b'e') || self.peek(0) == Some(b'E'))
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit());
                self.bump();
                if at_exp {
                    self.bump();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let t = kinds("unsafe fn f(x: u32) { x.unwrap() }");
        assert_eq!(t[0], (TokenKind::Ident, "unsafe".into()));
        assert_eq!(t[1], (TokenKind::Ident, "fn".into()));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::CharLit && s == "'x'"));
        // Escaped quote and unicode escape are chars, `'static` is a lifetime.
        let t = kinds(r"('\'', '\u{1F600}', &'static str)");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(), 2);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Lifetime && s == "'static"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let t = kinds(r####"let x = r#"Instant::now() inside a string"#;"####);
        assert!(t.iter().all(|(_, s)| !s.contains("now") || s.starts_with("r#")));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::StrLit && s.contains("Instant")));
        // Multi-hash fence with an embedded `"#`.
        let t = kinds(r#####"r##"fence "# inside"##"#####);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, TokenKind::StrLit);
    }

    #[test]
    fn plain_and_byte_strings() {
        let t = kinds(r##"("esc \" quote", b"bytes", b'x', br#"raw"#)"##);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::StrLit).count(), 3);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(), 1);
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let t = kinds("let r#match = r#fn;");
        let raws: Vec<_> =
            t.iter().filter(|(k, s)| *k == TokenKind::Ident && s.starts_with("r#")).collect();
        assert_eq!(raws.len(), 2);
        // And `ident()` strips the prefix.
        let toks = lex("r#match");
        assert_eq!(toks[0].ident(), Some("match"));
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].0, TokenKind::BlockComment);
        assert!(t[1].1.contains("inner"));
        assert_eq!(t[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let t = kinds("x // trailing\n/// doc\n//! inner\ny");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::LineComment).count(), 3);
        assert_eq!(t.last().unwrap(), &(TokenKind::Ident, "y".into()));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let t = kinds("(0xFF_u8, 1_000, 2.5e-3, 42usize, 1.max(2))");
        let nums: Vec<_> = t.iter().filter(|(k, _)| *k == TokenKind::NumLit).collect();
        assert_eq!(nums.len(), 6); // 1.max(2) lexes `1` and `2` separately
        assert!(nums.iter().any(|(_, s)| s == "2.5e-3"));
        assert!(nums.iter().any(|(_, s)| s == "0xFF_u8"));
        // `1.max` must not swallow the `.` as a float.
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "max"));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn strings_spanning_lines_keep_line_accounting() {
        let toks = lex("\"line1\nline2\"\nafter");
        assert_eq!(toks[0].kind, TokenKind::StrLit);
        let after = &toks[1];
        assert_eq!((after.text.as_str(), after.line), ("after", 3));
    }

    #[test]
    fn shebang_is_skipped_but_inner_attr_is_not() {
        let t = kinds("#!/usr/bin/env rust\nfn main() {}");
        assert_eq!(t[0], (TokenKind::Ident, "fn".into()));
        let t = kinds("#![allow(dead_code)]");
        assert_eq!(t[0].0, TokenKind::Punct); // `#`
    }

    #[test]
    fn unterminated_constructs_recover_at_eof() {
        assert_eq!(lex("/* never closed").len(), 1);
        assert_eq!(lex("\"never closed").len(), 1);
        assert_eq!(lex("r#\"never closed").len(), 1);
    }
}
