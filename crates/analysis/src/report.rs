//! Applying the allowlist and rendering results — human diagnostics
//! and the machine-readable `--json` document the CI gate consumes.

use crate::allowlist::AllowEntry;
use crate::rules::{RuleOutput, UnsafeKind, UnsafeSite, Violation, RULE_IDS};
use std::collections::BTreeMap;

/// Final outcome of one analysis pass.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Violations the allowlist did **not** absorb — each fails the run.
    pub open: Vec<Violation>,
    /// Violations absorbed by an allowlist entry, in report order.
    pub allowlisted: Vec<Violation>,
    /// Stale allowlist entries (matched zero violations) — also fail.
    pub stale: Vec<AllowEntry>,
    /// Every `unsafe` site in the tree (the audit inventory).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Allowlist entries applied.
    pub allow_entries: usize,
}

impl AnalysisReport {
    /// Matches rule output against the allowlist. Within one
    /// `(rule, path)` group the first `max` violations (report order)
    /// are absorbed; the rest stay open, so *new* violations in an
    /// already-allowlisted file still fail.
    pub fn build(out: RuleOutput, allow: &[AllowEntry], files_scanned: usize) -> AnalysisReport {
        let mut budget: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for e in allow {
            budget.insert((e.rule.as_str(), e.path.as_str()), e.max);
        }
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut open = Vec::new();
        let mut allowlisted = Vec::new();
        for v in out.violations {
            let key = (v.rule, v.path.as_str());
            match budget.get(&key) {
                Some(&max) => {
                    let u = used.entry((v.rule.to_string(), v.path.clone())).or_insert(0);
                    if *u < max {
                        *u += 1;
                        allowlisted.push(v);
                    } else {
                        let mut v = v;
                        v.message = format!(
                            "{} [exceeds the allowlist budget of {max} for this file]",
                            v.message
                        );
                        open.push(v);
                    }
                }
                None => open.push(v),
            }
        }
        let stale = allow
            .iter()
            .filter(|e| !used.contains_key(&(e.rule.clone(), e.path.clone())))
            .cloned()
            .collect();
        AnalysisReport {
            open,
            allowlisted,
            stale,
            unsafe_sites: out.unsafe_sites,
            files_scanned,
            allow_entries: allow.len(),
        }
    }

    /// True when the tree is clean: no open violations, no stale entries.
    pub fn clean(&self) -> bool {
        self.open.is_empty() && self.stale.is_empty()
    }

    /// Allowlisted-violation count for one rule.
    pub fn allowlisted_count(&self, rule: &str) -> usize {
        self.allowlisted.iter().filter(|v| v.rule == rule).count()
    }

    /// Open-violation count for one rule.
    pub fn open_count(&self, rule: &str) -> usize {
        self.open.iter().filter(|v| v.rule == rule).count()
    }

    /// Fingerprint of the unsafe inventory: FNV-1a over the sorted
    /// `path:fn_count:block_count:impl_count` lines. Line-number
    /// agnostic (editing an unrelated part of a file does not churn the
    /// gate) but any *new or removed* `unsafe` site changes it — and the
    /// exact-match tolerance class in `bench_diff` turns that change
    /// into a reviewed snapshot update.
    pub fn unsafe_fingerprint(&self) -> u64 {
        let mut per_file: BTreeMap<&str, [usize; 3]> = BTreeMap::new();
        for s in &self.unsafe_sites {
            let e = per_file.entry(s.path.as_str()).or_default();
            match s.kind {
                UnsafeKind::Fn => e[0] += 1,
                UnsafeKind::Block => e[1] += 1,
                UnsafeKind::ImplOrTrait => e[2] += 1,
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (path, [fns, blocks, impls]) in &per_file {
            for &b in format!("{path}:{fns}:{blocks}:{impls};").as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Human-readable diagnostics, `file:line:col: rule: message`.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for v in &self.open {
            s.push_str(&format!("{}:{}:{}: {}: {}\n", v.path, v.line, v.col, v.rule, v.message));
        }
        for e in &self.stale {
            s.push_str(&format!(
                "analysis.allow:{}: stale entry ({} {} max={}) matches no violation — delete it\n",
                e.line, e.rule, e.path, e.max
            ));
        }
        let fns = self.unsafe_sites.iter().filter(|s| s.kind == UnsafeKind::Fn).count();
        let blocks = self.unsafe_sites.len() - fns;
        s.push_str(&format!(
            "lint_static: {} file(s), {} open violation(s), {} allowlisted, \
             {} stale allowlist entr{}, unsafe inventory {} fn(s) + {} other site(s) \
             [fingerprint {:#018x}]\n",
            self.files_scanned,
            self.open.len(),
            self.allowlisted.len(),
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
            fns,
            blocks,
            self.unsafe_fingerprint()
        ));
        s
    }

    /// The machine-readable document the CI gate consumes. Every field
    /// is an integer or string, so `bench_diff` gates it under the
    /// exact-match tolerance class: a new wall-clock read, ambient-
    /// randomness call, unordered-iteration site, uncommented `unsafe`
    /// or library panic shifts a count or the fingerprint and fails CI.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\"bench\":\"lint_static\"");
        s.push_str(&format!(",\"files_scanned\":{}", self.files_scanned));
        s.push_str(&format!(",\"allow_entries\":{}", self.allow_entries));
        s.push_str(&format!(",\"open_violations\":{}", self.open.len()));
        s.push_str(&format!(",\"stale_allow_entries\":{}", self.stale.len()));
        s.push_str(",\"rules\":[");
        for (i, rule) in RULE_IDS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":\"{rule}\",\"open\":{},\"allowlisted\":{}}}",
                self.open_count(rule),
                self.allowlisted_count(rule)
            ));
        }
        s.push_str("],\"unsafe_inventory\":{");
        let fns = self.unsafe_sites.iter().filter(|x| x.kind == UnsafeKind::Fn).count();
        let blocks = self.unsafe_sites.iter().filter(|x| x.kind == UnsafeKind::Block).count();
        let impls = self.unsafe_sites.iter().filter(|x| x.kind == UnsafeKind::ImplOrTrait).count();
        let undocumented = self.unsafe_sites.iter().filter(|x| !x.documented).count();
        s.push_str(&format!(
            "\"sites\":{},\"fns\":{fns},\"blocks\":{blocks},\"impls\":{impls},\
             \"undocumented\":{undocumented},\"fingerprint\":\"{:#018x}\"",
            self.unsafe_sites.len(),
            self.unsafe_fingerprint()
        ));
        s.push_str("}}");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rules;
    use crate::walker::SourceFile;

    fn violations_for(src: &str) -> RuleOutput {
        run_rules(&[SourceFile::synthetic("crates/x/src/lib.rs", src)])
    }

    fn entry(rule: &str, path: &str, max: usize) -> AllowEntry {
        AllowEntry {
            rule: rule.into(),
            path: path.into(),
            max,
            why: "test fixture".into(),
            line: 1,
        }
    }

    #[test]
    fn allowlist_absorbs_up_to_max_then_overflows() {
        let out = violations_for(
            "fn f(a: Option<u32>, b: Option<u32>) { a.unwrap(); b.unwrap(); panic!(\"x\"); }",
        );
        assert_eq!(out.violations.len(), 3);
        let allow = [entry("no-panic-in-library", "crates/x/src/lib.rs", 2)];
        let r = AnalysisReport::build(out, &allow, 1);
        assert_eq!(r.allowlisted.len(), 2);
        assert_eq!(r.open.len(), 1);
        assert!(!r.clean());
        assert!(r.open[0].message.contains("exceeds the allowlist budget"));
    }

    #[test]
    fn stale_entries_fail_the_run() {
        let out = violations_for("fn f() {}");
        let allow = [entry("no-wall-clock", "crates/x/src/lib.rs", 1)];
        let r = AnalysisReport::build(out, &allow, 1);
        assert!(r.open.is_empty());
        assert_eq!(r.stale.len(), 1);
        assert!(!r.clean());
        assert!(r.render_human().contains("stale entry"));
    }

    #[test]
    fn unsafe_fingerprint_tracks_sites_not_lines() {
        let a = violations_for("// SAFETY: ok\nfn f() { unsafe { g() } }");
        let b = violations_for("\n\n\n// SAFETY: ok\nfn f() { unsafe { g() } }");
        let ra = AnalysisReport::build(a, &[], 1);
        let rb = AnalysisReport::build(b, &[], 1);
        assert!(ra.clean() && rb.clean());
        assert_eq!(ra.unsafe_fingerprint(), rb.unsafe_fingerprint(), "line shifts don't churn");
        let c = violations_for(
            "// SAFETY: ok\nfn f() { unsafe { g() } }\n// SAFETY: ok\nfn h() { unsafe { g() } }",
        );
        let rc = AnalysisReport::build(c, &[], 1);
        assert_ne!(ra.unsafe_fingerprint(), rc.unsafe_fingerprint(), "new sites do");
    }

    #[test]
    fn json_document_shape_is_stable() {
        let out = violations_for("// SAFETY: ok\nfn f() { unsafe { g() } }");
        let r = AnalysisReport::build(out, &[], 1);
        let j = r.render_json();
        assert!(j.contains("\"bench\":\"lint_static\""));
        assert!(j.contains("\"rule\":\"no-wall-clock\""));
        assert!(j.contains("\"sites\":1"));
        assert!(j.contains("\"undocumented\":0"));
        assert!(j.contains("\"fingerprint\":\"0x"));
    }
}
