//! The in-repo allowlist: `analysis.allow` at the workspace root.
//!
//! TOML-free by constraint (no external parser crates) and by design —
//! the format is one entry per line, greppable, and every entry carries
//! a **mandatory justification**:
//!
//! ```text
//! # comment
//! <rule-id> <path> max=<N> why="<non-empty justification>"
//! no-panic-in-library crates/parallel/src/lib.rs max=12 why="mutex poisoning is unrecoverable"
//! ```
//!
//! Semantics:
//!
//! * an entry silences up to `max` violations of `<rule-id>` in
//!   `<path>`; the `max + 1`-th violation is reported as over budget —
//!   so new violations in an allowlisted file still fail the pass;
//! * an entry that matches **zero** violations is *stale* and is itself
//!   an error — the allowlist can only shrink ratchet-style as code is
//!   fixed, never accrete dead exemptions;
//! * the allowlisted counts are emitted in the `--json` report, where
//!   `bench_diff` gates them **exactly**: silently consuming more (or
//!   less) of a budget still forces a reviewed snapshot update.

use std::collections::BTreeMap;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Workspace-relative file path it covers.
    pub path: String,
    /// Maximum violations of `rule` in `path` the entry absorbs.
    pub max: usize,
    /// Mandatory human justification.
    pub why: String,
    /// 1-based line in `analysis.allow` (for error messages).
    pub line: u32,
}

/// A parse failure, with its `analysis.allow` line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for AllowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis.allow:{}: {}", self.line, self.message)
    }
}

/// Parses the allowlist text. Unknown rules, malformed fields, missing
/// or empty justifications, and duplicate `(rule, path)` pairs are all
/// hard errors — a lint pass with a sloppy exemption file checks
/// nothing.
pub fn parse(text: &str, known_rules: &[&str]) -> Result<Vec<AllowEntry>, AllowError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut seen: BTreeMap<(String, String), u32> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| AllowError { line: lineno, message };
        let mut parts = line.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or_default().to_string();
        let path = parts.next().unwrap_or_default().to_string();
        let rest = parts.next().unwrap_or_default().trim();
        if !known_rules.contains(&rule.as_str()) {
            return Err(err(format!("unknown rule '{rule}' (known: {})", known_rules.join(", "))));
        }
        if path.is_empty() {
            return Err(err("missing <path> field".into()));
        }
        let Some(after_max) = rest.strip_prefix("max=") else {
            return Err(err(format!("expected `max=<N>` after the path, found '{rest}'")));
        };
        let (max_str, after) = after_max.split_once(char::is_whitespace).unwrap_or((after_max, ""));
        let max: usize = max_str
            .parse()
            .map_err(|_| err(format!("`max=` needs a positive integer, found '{max_str}'")))?;
        if max == 0 {
            return Err(err("`max=0` allows nothing — delete the entry instead".into()));
        }
        let after = after.trim();
        let Some(quoted) = after.strip_prefix("why=\"") else {
            return Err(err("every entry needs a justification: why=\"...\"".into()));
        };
        let Some(why) = quoted.strip_suffix('"') else {
            return Err(err("unterminated justification string".into()));
        };
        if why.trim().is_empty() {
            return Err(err("justification must be non-empty".into()));
        }
        if let Some(prev) = seen.insert((rule.clone(), path.clone()), lineno) {
            return Err(err(format!(
                "duplicate entry for ({rule}, {path}) — first defined on line {prev}"
            )));
        }
        entries.push(AllowEntry { rule, path, max, why: why.to_string(), line: lineno });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: [&str; 2] = ["no-panic-in-library", "no-wall-clock"];

    #[test]
    fn parses_entries_comments_and_blanks() {
        let text = "\
# header comment
no-panic-in-library crates/a/src/lib.rs max=3 why=\"invariant-backed\"

no-wall-clock crates/b/src/lib.rs max=1 why=\"legacy probe, tracked in #12\"
";
        let e = parse(text, &RULES).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].rule, "no-panic-in-library");
        assert_eq!(e[0].max, 3);
        assert_eq!(e[0].why, "invariant-backed");
        assert_eq!(e[1].line, 4);
    }

    #[test]
    fn justification_is_mandatory_and_non_empty() {
        for bad in [
            "no-wall-clock crates/a/src/lib.rs max=1",
            "no-wall-clock crates/a/src/lib.rs max=1 why=\"\"",
            "no-wall-clock crates/a/src/lib.rs max=1 why=\"   \"",
            "no-wall-clock crates/a/src/lib.rs max=1 why=\"unterminated",
        ] {
            assert!(parse(bad, &RULES).is_err(), "{bad}");
        }
    }

    #[test]
    fn unknown_rules_bad_max_and_duplicates_error() {
        assert!(parse("no-such-rule p max=1 why=\"x\"", &RULES).is_err());
        assert!(parse("no-wall-clock p max=zero why=\"x\"", &RULES).is_err());
        assert!(parse("no-wall-clock p max=0 why=\"x\"", &RULES).is_err());
        let dup = "no-wall-clock p max=1 why=\"x\"\nno-wall-clock p max=2 why=\"y\"";
        let e = parse(dup, &RULES).unwrap_err();
        assert!(e.message.contains("duplicate"), "{}", e.message);
        assert_eq!(e.line, 2);
    }
}
