//! The determinism-contract rules.
//!
//! Each rule walks one file's token stream and emits spanned
//! violations. The scopes mirror the prose contract in ROADMAP.md's
//! design notes (see `crates/serve/README.md` § "Determinism contract,
//! machine-checked" for the rule-by-rule mapping):
//!
//! | rule id                  | forbids                                   | scope                                         |
//! |--------------------------|-------------------------------------------|-----------------------------------------------|
//! | `no-wall-clock`          | `Instant` / `SystemTime`                  | everywhere except `obs/profile.rs`, `crates/criterion`, bench bins/benches |
//! | `no-ambient-randomness`  | `thread_rng` / `from_entropy` / `RandomState` | the whole workspace                       |
//! | `no-unordered-iteration` | `HashMap` / `HashSet`                     | library code of `serve` (non-obs), `core`, `tensor`, `bench` |
//! | `unsafe-audit`           | `unsafe` without a `SAFETY`-marked comment | the whole workspace (also builds the inventory) |
//! | `no-panic-in-library`    | `.unwrap()` / `.expect(…)` / `panic!`     | library code outside `#[cfg(test)]` / `#[test]` regions |
//!
//! Rules are syntactic by design: a token named `Instant` that is not
//! `std::time::Instant` still fires, and the allowlist (with its
//! mandatory justification) is the pressure valve — exactly like the
//! `bench_diff --allow` escape hatch for intentional perf moves.

use crate::lexer::{lex, Token};
use crate::walker::{FileKind, SourceFile};

/// Stable rule identifiers (also the allowlist / JSON keys).
pub const RULE_IDS: [&str; 5] = [
    "no-wall-clock",
    "no-ambient-randomness",
    "no-unordered-iteration",
    "unsafe-audit",
    "no-panic-in-library",
];

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line / byte column of the offending token.
    pub line: u32,
    pub col: u32,
    /// Human explanation with the remediation.
    pub message: String,
}

/// What kind of `unsafe` site an inventory entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe fn` declaration.
    Fn,
    /// `unsafe { … }` block (including `unsafe extern`).
    Block,
    /// `unsafe impl` / `unsafe trait`.
    ImplOrTrait,
}

impl UnsafeKind {
    pub fn label(&self) -> &'static str {
        match self {
            UnsafeKind::Fn => "fn",
            UnsafeKind::Block => "block",
            UnsafeKind::ImplOrTrait => "impl",
        }
    }
}

/// One `unsafe` site, SAFETY-commented or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub path: String,
    pub line: u32,
    pub kind: UnsafeKind,
    /// Whether a `SAFETY`-marked comment justifies the site.
    pub documented: bool,
}

/// Output of running every rule over one file set.
#[derive(Debug, Default)]
pub struct RuleOutput {
    pub violations: Vec<Violation>,
    /// Every `unsafe` site found, documented or not (the inventory).
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Runs all five rules over `files` (workspace or synthetic fixtures).
pub fn run_rules(files: &[SourceFile]) -> RuleOutput {
    let mut out = RuleOutput::default();
    for f in files {
        let toks = lex(&f.text);
        let test_mask = test_region_mask(&toks);
        no_wall_clock(f, &toks, &mut out.violations);
        no_ambient_randomness(f, &toks, &mut out.violations);
        no_unordered_iteration(f, &toks, &mut out.violations);
        unsafe_audit(f, &toks, &mut out);
        no_panic_in_library(f, &toks, &test_mask, &mut out.violations);
    }
    // Deterministic report order regardless of rule interleaving.
    out.violations
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    out.unsafe_sites.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Marks token indices that live inside `#[cfg(test)]` items or
/// `#[test]` functions — the regions `no-panic-in-library` exempts.
///
/// Token-level heuristic: an attribute whose content mentions `test`
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`) starts a test
/// item; the region runs to the matching `}` of the first `{` that
/// follows (or to the `;` of a braceless item).
fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Find the attribute's closing `]` (attrs can nest brackets).
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut mentions_test = false;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].ident() == Some("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                // Scan to the item body `{ … }` (or a `;` for braceless
                // items); everything through the matching brace is test
                // code. Later attributes may intervene (`#[test] #[ignore]`).
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    let mut bdepth = 0i32;
                    let mut end = k;
                    while end < toks.len() {
                        if toks[end].is_punct('{') {
                            bdepth += 1;
                        } else if toks[end].is_punct('}') {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    for m in mask.iter_mut().take(end.min(toks.len() - 1) + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Rule: no-wall-clock
// ---------------------------------------------------------------------------

/// Paths where reading the host clock is sanctioned.
fn wall_clock_exempt(f: &SourceFile) -> bool {
    f.path == "crates/serve/src/obs/profile.rs"
        || f.path.starts_with("crates/criterion/")
        || matches!(f.kind, FileKind::Bin | FileKind::Bench)
}

fn no_wall_clock(f: &SourceFile, toks: &[Token], out: &mut Vec<Violation>) {
    if wall_clock_exempt(f) {
        return;
    }
    for t in toks {
        if matches!(t.ident(), Some("Instant") | Some("SystemTime")) {
            out.push(Violation {
                rule: "no-wall-clock",
                path: f.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` reads the host clock; the serving stack runs on virtual time — \
                     route wall-clock measurement through `obs::profile` or a bench bin",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-ambient-randomness
// ---------------------------------------------------------------------------

fn no_ambient_randomness(f: &SourceFile, toks: &[Token], out: &mut Vec<Violation>) {
    for t in toks {
        if matches!(t.ident(), Some("thread_rng") | Some("from_entropy") | Some("RandomState")) {
            out.push(Violation {
                rule: "no-ambient-randomness",
                path: f.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` draws OS entropy; all randomness must flow from an explicit \
                     seed (`defa_tensor::rng`) so reports replay byte-identically",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration
// ---------------------------------------------------------------------------

/// Library code whose iteration order reaches digests or reports.
fn unordered_scope(f: &SourceFile) -> bool {
    if f.kind != FileKind::Library {
        return false;
    }
    (f.path.starts_with("crates/serve/") && !f.path.starts_with("crates/serve/src/obs/"))
        || f.path.starts_with("crates/core/")
        || f.path.starts_with("crates/tensor/")
        || f.path.starts_with("crates/bench/")
}

fn no_unordered_iteration(f: &SourceFile, toks: &[Token], out: &mut Vec<Violation>) {
    if !unordered_scope(f) {
        return;
    }
    for t in toks {
        if matches!(t.ident(), Some("HashMap") | Some("HashSet")) {
            out.push(Violation {
                rule: "no-unordered-iteration",
                path: f.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` iterates in hash order, which leaks into digests and reports — \
                     use `BTreeMap`/`BTreeSet`/`Vec` or allowlist with a justification",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-audit
// ---------------------------------------------------------------------------

/// Looks backwards from token `i` for a comment containing a safety
/// marker (`SAFETY` or `# Safety`). The scan may cross anything within
/// the same statement/item head — attributes, visibility, qualifiers,
/// a `let x =`, a match-arm pattern — but stops cold at a statement or
/// item boundary (`;` or `}`): a justification on the *previous*
/// statement, function, or match arm never carries over.
fn has_safety_comment(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    let mut hops = 0;
    while j > 0 && hops < 64 {
        j -= 1;
        hops += 1;
        let t = &toks[j];
        if t.is_comment() {
            if t.text.contains("SAFETY") || t.text.contains("# Safety") {
                return true;
            }
            // An unrelated or continuing comment line — keep scanning
            // upwards through the comment run.
            continue;
        }
        if t.is_punct(';') || t.is_punct('}') {
            return false;
        }
    }
    false
}

fn unsafe_audit(f: &SourceFile, toks: &[Token], out: &mut RuleOutput) {
    for (i, t) in toks.iter().enumerate() {
        if t.ident() != Some("unsafe") {
            continue;
        }
        // Classify the site from the next significant token.
        let next = toks[i + 1..].iter().find(|t| !t.is_comment());
        let kind = match next.and_then(|t| t.ident()) {
            Some("fn") => UnsafeKind::Fn,
            Some("impl") | Some("trait") => UnsafeKind::ImplOrTrait,
            _ => UnsafeKind::Block,
        };
        let documented = has_safety_comment(toks, i);
        out.unsafe_sites.push(UnsafeSite { path: f.path.clone(), line: t.line, kind, documented });
        if !documented {
            out.violations.push(Violation {
                rule: "unsafe-audit",
                path: f.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`unsafe` {} without a `// SAFETY:` comment — state the invariant \
                     that makes it sound directly above the site",
                    kind.label()
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-panic-in-library
// ---------------------------------------------------------------------------

fn no_panic_in_library(
    f: &SourceFile,
    toks: &[Token],
    test_mask: &[bool],
    out: &mut Vec<Violation>,
) {
    if f.kind != FileKind::Library {
        return;
    }
    let significant: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    for (si, &i) in significant.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let prev = si.checked_sub(1).map(|p| &toks[significant[p]]);
        let next = significant.get(si + 1).map(|&n| &toks[n]);
        let fires = match t.ident() {
            Some("unwrap") | Some("expect") => {
                prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('('))
            }
            Some("panic") => next.is_some_and(|n| n.is_punct('!')),
            _ => false,
        };
        if fires {
            out.push(Violation {
                rule: "no-panic-in-library",
                path: f.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` can abort a serving run from library code — return a typed \
                     error, prove the invariant, or allowlist with a justification",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::SourceFile;

    fn run_one(path: &str, src: &str) -> RuleOutput {
        run_rules(&[SourceFile::synthetic(path, src)])
    }

    fn rules_fired(out: &RuleOutput) -> Vec<&'static str> {
        let mut r: Vec<_> = out.violations.iter().map(|v| v.rule).collect();
        r.dedup();
        r
    }

    // -- no-wall-clock ----------------------------------------------------

    #[test]
    fn wall_clock_fires_in_library_code() {
        let out = run_one(
            "crates/serve/src/runtime.rs",
            "fn t() -> std::time::Instant { std::time::Instant::now() }",
        );
        assert_eq!(rules_fired(&out), ["no-wall-clock"]);
        assert_eq!(out.violations.len(), 2);
        assert_eq!(out.violations[0].line, 1);
    }

    #[test]
    fn wall_clock_is_sanctioned_in_profile_criterion_and_bench_bins() {
        for path in [
            "crates/serve/src/obs/profile.rs",
            "crates/criterion/src/lib.rs",
            "crates/bench/src/bin/serve.rs",
            "crates/bench/benches/gemm.rs",
        ] {
            let out = run_one(path, "fn t() { let _ = Instant::now(); }");
            assert!(out.violations.is_empty(), "{path} should be exempt");
        }
    }

    #[test]
    fn wall_clock_inside_strings_and_comments_does_not_fire() {
        let out = run_one(
            "crates/serve/src/runtime.rs",
            r##"// Instant::now is forbidden here
               const DOC: &str = "Instant::now()";
               const RAW: &str = r#"SystemTime"#;"##,
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn system_time_fires_too() {
        let out = run_one("crates/core/src/runner.rs", "use std::time::SystemTime;");
        assert_eq!(rules_fired(&out), ["no-wall-clock"]);
    }

    // -- no-ambient-randomness --------------------------------------------

    #[test]
    fn ambient_randomness_fires_everywhere_including_bins() {
        for path in ["crates/serve/src/loadgen.rs", "crates/bench/src/bin/serve.rs"] {
            let out = run_one(path, "let mut rng = thread_rng();");
            assert_eq!(rules_fired(&out), ["no-ambient-randomness"], "{path}");
        }
        let out = run_one("crates/model/src/sampling.rs", "let s = RandomState::new();");
        assert_eq!(rules_fired(&out), ["no-ambient-randomness"]);
        let out = run_one("tests/tests/serving.rs", "let r = SmallRng::from_entropy();");
        assert_eq!(rules_fired(&out), ["no-ambient-randomness"]);
    }

    // -- no-unordered-iteration -------------------------------------------

    #[test]
    fn unordered_iteration_fires_in_digest_scope_only() {
        let src = "use std::collections::HashMap;";
        for path in [
            "crates/serve/src/report.rs",
            "crates/core/src/msgs.rs",
            "crates/tensor/src/tensor.rs",
            "crates/bench/src/json.rs",
        ] {
            let out = run_one(path, src);
            assert_eq!(rules_fired(&out), ["no-unordered-iteration"], "{path}");
        }
        // The obs subtree, other crates, and bins are out of scope.
        for path in [
            "crates/serve/src/obs/metrics.rs",
            "crates/model/src/config.rs",
            "crates/bench/src/bin/serve.rs",
        ] {
            let out = run_one(path, src);
            assert!(out.violations.is_empty(), "{path} should be out of scope");
        }
    }

    // -- unsafe-audit ------------------------------------------------------

    #[test]
    fn unsafe_without_safety_comment_fires_and_is_inventoried() {
        let out = run_one(
            "crates/tensor/src/matmul.rs",
            "fn f() { unsafe { danger() } }\nunsafe fn g() {}\n",
        );
        assert_eq!(rules_fired(&out), ["unsafe-audit"]);
        assert_eq!(out.violations.len(), 2);
        assert_eq!(out.unsafe_sites.len(), 2);
        assert_eq!(out.unsafe_sites[0].kind, UnsafeKind::Block);
        assert_eq!(out.unsafe_sites[1].kind, UnsafeKind::Fn);
        assert!(out.unsafe_sites.iter().all(|s| !s.documented));
    }

    #[test]
    fn safety_comment_silences_but_still_inventories() {
        let src = "\
// SAFETY: cpu features verified at dispatch.
fn f() { unsafe { danger() } }

/// Docs.
///
/// # Safety
///
/// Caller verified avx512f.
#[cfg(target_arch = \"x86_64\")]
#[target_feature(enable = \"avx512f\")]
unsafe fn g() {}
";
        let out = run_one("crates/tensor/src/matmul.rs", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.unsafe_sites.len(), 2);
        assert!(out.unsafe_sites.iter().all(|s| s.documented));
    }

    #[test]
    fn safety_comment_must_be_adjacent_not_anywhere_above() {
        let src = "\
// SAFETY: this one justifies f only.
fn f() { unsafe { a() } }
fn g() { let x = 1; unsafe { b() } }
";
        let out = run_one("crates/x/src/lib.rs", src);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].line, 3);
    }

    #[test]
    fn match_arm_unsafe_needs_its_own_safety_comment() {
        // Mirrors the matmul dispatch shape: the second arm cannot
        // borrow the first arm's justification.
        let src = "\
fn dispatch(isa: Isa) {
    match isa {
        // SAFETY: verified avx512f.
        Isa::A => unsafe { a() },
        Isa::B => unsafe { b() },
    }
}
";
        let out = run_one("crates/x/src/lib.rs", src);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].line, 5);
    }

    // -- no-panic-in-library ----------------------------------------------

    #[test]
    fn panics_fire_in_library_code_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
                   fn h() { panic!(\"boom\"); }\n";
        let out = run_one("crates/serve/src/runtime.rs", src);
        assert_eq!(out.violations.len(), 3);
        assert!(rules_fired(&out) == ["no-panic-in-library"]);
        // Bins, benches, examples and the test host are exempt.
        for path in [
            "crates/bench/src/bin/serve.rs",
            "crates/bench/benches/gemm.rs",
            "examples/serving.rs",
            "tests/tests/serving.rs",
        ] {
            assert!(run_one(path, src).violations.is_empty(), "{path}");
        }
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_exempt() {
        let src = "\
fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); panic!(\"in test\"); }
}

#[test]
fn top_level_test() { Some(1).expect(\"fine\"); }
";
        let out = run_one("crates/serve/src/report.rs", src);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert_eq!(out.violations[0].line, 1);
    }

    #[test]
    fn expect_as_free_fn_or_field_does_not_fire() {
        // Only method-call position (`.expect(`) fires; a field named
        // `expect` or a local fn does not.
        let src = "fn f() { let expect = 1; let _ = expect; g(expect); }";
        let out = run_one("crates/x/src/lib.rs", src);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn violations_sort_deterministically() {
        let files = [
            SourceFile::synthetic("crates/b/src/lib.rs", "fn f(x: Option<u32>) { x.unwrap(); }"),
            SourceFile::synthetic("crates/a/src/lib.rs", "use std::time::Instant;"),
        ];
        let out = run_rules(&files);
        assert_eq!(out.violations[0].path, "crates/a/src/lib.rs");
        assert_eq!(out.violations[1].path, "crates/b/src/lib.rs");
    }
}
