//! `lint_static` — run the determinism-contract pass over the tree.
//!
//! ```sh
//! lint_static [--root <path>] [--json]
//! ```
//!
//! * default: human diagnostics (`file:line:col: rule: message`) plus a
//!   one-line summary; exits non-zero on any unallowlisted violation,
//!   stale allowlist entry, or allowlist parse error;
//! * `--json`: emits the machine-readable report (rule → open and
//!   allowlisted violation counts, unsafe-inventory fingerprint) that
//!   joins `BENCH_serve.json` under `bench_diff`'s exact-match
//!   tolerance class — so *new* violations fail CI twice over: here and
//!   in the snapshot gate;
//! * `--root <path>`: workspace root (default: the ancestor of this
//!   binary's manifest, i.e. the checkout it was built from, falling
//!   back to the current directory when run elsewhere).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("lint_static: --root needs a value");
                    return ExitCode::FAILURE;
                };
                root = Some(PathBuf::from(v));
                i += 2;
            }
            other => {
                eprintln!("lint_static: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        if manifest.join("Cargo.toml").exists() {
            manifest
        } else {
            PathBuf::from(".")
        }
    });

    let report = match defa_analysis::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint_static: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        if json {
            // The JSON document went to stdout; still surface the
            // diagnostics where a CI log shows them.
            eprint!("{}", report.render_human());
        }
        ExitCode::FAILURE
    }
}
