//! `defa-analysis` — machine-checking the determinism contract.
//!
//! Every headline claim in this repo (byte-identical `ServeReport`
//! across thread counts, the 108 pinned scheduler×router×controller
//! fingerprints, the paper-level energy tables) rests on rules that
//! used to exist only as prose in ROADMAP.md's design notes: no wall
//! clock or ambient randomness in the serving stack, no hash-order
//! iteration on digest paths, audited `unsafe`, no panics in library
//! code. This crate turns that prose into executable static analysis —
//! the same move PR 5 made for perf claims with the typed `bench_diff`
//! gate.
//!
//! The pass is a hand-rolled token-level lexer ([`lexer`]; the
//! container has no crates.io access, so no `syn` — the constraint
//! that already produced the local rayon/criterion stand-ins) plus a
//! rule engine ([`rules`]) with file/line-spanned diagnostics, an
//! in-repo allowlist with mandatory justifications ([`allowlist`]),
//! and a reporter ([`report`]) that renders human diagnostics and the
//! `--json` document CI gates under `bench_diff`'s exact-match
//! tolerance class.
//!
//! Run it with:
//!
//! ```sh
//! cargo run --release -p defa-analysis --bin lint_static            # human
//! cargo run --release -p defa-analysis --bin lint_static -- --json  # CI gate doc
//! ```

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walker;

use report::AnalysisReport;
use std::path::Path;

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "analysis.allow";

/// Errors a full workspace pass can produce before any rule runs.
#[derive(Debug)]
pub enum AnalysisError {
    /// Filesystem problem while walking or reading sources.
    Io(std::io::Error),
    /// `analysis.allow` failed to parse.
    Allowlist(allowlist::AllowError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Io(e) => write!(f, "workspace walk failed: {e}"),
            AnalysisError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Runs the full pass over the workspace at `root`: walk every `.rs`
/// file, lex, apply all rules, then match violations against the
/// allowlist (missing `analysis.allow` means an empty allowlist).
pub fn analyze_workspace(root: &Path) -> Result<AnalysisReport, AnalysisError> {
    let files = walker::walk(root).map_err(AnalysisError::Io)?;
    let allow_text = match std::fs::read_to_string(root.join(ALLOWLIST_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(AnalysisError::Io(e)),
    };
    let allow =
        allowlist::parse(&allow_text, &rules::RULE_IDS).map_err(AnalysisError::Allowlist)?;
    let n = files.len();
    Ok(AnalysisReport::build(rules::run_rules(&files), &allow, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the whole PR: the pass runs clean on this
    /// workspace — zero unallowlisted violations, zero stale entries —
    /// and the negative fixtures in `rules::tests` prove every rule can
    /// still fire.
    #[test]
    fn workspace_is_clean_under_the_determinism_contract() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = analyze_workspace(&root).expect("pass must run");
        assert!(report.clean(), "determinism-contract violations:\n{}", report.render_human());
        assert!(report.files_scanned >= 90, "walker lost files: {}", report.files_scanned);
        // Every unsafe site in the tree carries a SAFETY justification.
        assert!(report.unsafe_sites.iter().all(|s| s.documented));
    }
}
