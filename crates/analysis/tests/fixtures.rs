//! Negative fixtures: every rule (1) fires on a seeded violation and
//! (2) is silenced by an allowlist entry for exactly that violation —
//! proving the pass can fail and that the escape hatch works. A lint
//! whose rules cannot fire, or whose allowlist silences too much,
//! checks nothing.

use defa_analysis::allowlist::AllowEntry;
use defa_analysis::report::AnalysisReport;
use defa_analysis::rules::{run_rules, RULE_IDS};
use defa_analysis::walker::SourceFile;

/// One seeded violation per rule, in a file path inside the rule's scope.
fn seeded_violation(rule: &str) -> SourceFile {
    let (path, src) = match rule {
        "no-wall-clock" => (
            "crates/serve/src/runtime.rs",
            "fn now() -> u64 { let t = std::time::Instant::now(); 0 }",
        ),
        "no-ambient-randomness" => {
            ("crates/serve/src/loadgen.rs", "fn seed() -> u64 { let mut r = thread_rng(); 4 }")
        }
        "no-unordered-iteration" => {
            ("crates/serve/src/report.rs", "use std::collections::HashMap;")
        }
        "unsafe-audit" => (
            "crates/tensor/src/matmul.rs",
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }",
        ),
        "no-panic-in-library" => {
            ("crates/core/src/runner.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }")
        }
        other => panic!("unknown rule {other}"),
    };
    SourceFile::synthetic(path, src)
}

#[test]
fn every_rule_fires_on_its_seeded_violation() {
    for rule in RULE_IDS {
        let out = run_rules(&[seeded_violation(rule)]);
        let fired: Vec<_> = out.violations.iter().map(|v| v.rule).collect();
        assert_eq!(fired, vec![rule], "rule {rule} must fire exactly once on its fixture");
        let report = AnalysisReport::build(out, &[], 1);
        assert!(!report.clean(), "rule {rule}: an open violation must fail the pass");
        assert_eq!(report.open_count(rule), 1);
    }
}

#[test]
fn every_rule_is_silenced_by_a_matching_allowlist_entry() {
    for rule in RULE_IDS {
        let file = seeded_violation(rule);
        let entry = AllowEntry {
            rule: rule.to_string(),
            path: file.path.clone(),
            max: 1,
            why: "negative fixture: seeded violation, intentionally exempt".to_string(),
            line: 1,
        };
        let report = AnalysisReport::build(run_rules(&[file]), &[entry], 1);
        assert!(report.clean(), "rule {rule}: the allowlist entry must absorb the violation");
        assert_eq!(report.allowlisted_count(rule), 1);
        assert_eq!(report.open_count(rule), 0);
    }
}

#[test]
fn an_allowlist_entry_does_not_silence_other_rules_or_files() {
    // A no-panic budget in file A must not absorb a wall-clock read in
    // file A or a panic in file B.
    let files = [
        seeded_violation("no-wall-clock"), // crates/serve/src/runtime.rs
        seeded_violation("no-panic-in-library"), // crates/core/src/runner.rs
    ];
    let entry = AllowEntry {
        rule: "no-panic-in-library".to_string(),
        path: "crates/serve/src/runtime.rs".to_string(),
        max: 1,
        why: "wrong file on purpose".to_string(),
        line: 1,
    };
    let report = AnalysisReport::build(run_rules(&files), &[entry], 2);
    assert!(!report.clean());
    assert_eq!(report.open_count("no-wall-clock"), 1);
    assert_eq!(report.open_count("no-panic-in-library"), 1);
    // And the unconsumed entry is flagged as stale.
    assert_eq!(report.stale.len(), 1);
}

#[test]
fn the_json_gate_document_moves_when_violations_move() {
    // The CI gate compares these integers exactly: seeding a violation
    // must change the document even when it is allowlisted.
    let clean = AnalysisReport::build(run_rules(&[]), &[], 0);
    let file = seeded_violation("no-panic-in-library");
    let entry = AllowEntry {
        rule: "no-panic-in-library".to_string(),
        path: file.path.clone(),
        max: 1,
        why: "fixture".to_string(),
        line: 1,
    };
    let dirty = AnalysisReport::build(run_rules(&[file]), &[entry], 1);
    assert!(clean.clean() && dirty.clean());
    assert_ne!(clean.render_json(), dirty.render_json());
}
