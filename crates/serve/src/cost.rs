//! Memoized scenario cost tables: the fleet's pricing, computed once.
//!
//! Scheduling, routing and idle-energy accounting all consult *modeled
//! estimates* — [`Backend::estimate_cost_ns`],
//! [`Backend::estimate_energy_pj`] and [`Backend::idle_power_mw`] — and
//! every one of those estimators is a pure function of `(scenario,
//! DVFS point)`. With a handful of scenarios and a four-rung ladder the
//! whole pricing surface of a backend is a few dozen integers, so the
//! runtime materializes it once at fleet construction as a [`CostTable`]
//! instead of re-deriving analytic latency/energy models on live paths.
//!
//! # Exactness contract
//!
//! A table is a *memo*, never an approximation:
//!
//! * the nominal row holds exactly the live estimator values;
//! * every other row holds exactly `backend.reprice(nominal estimate,
//!   point)` — the same integer `div_round` scaling the settle path
//!   applies to real outputs ([`Backend::reprice`] is pure in `(out,
//!   clock)`, so pricing an estimate once is the same as pricing it per
//!   call);
//! * the idle column holds exactly [`Backend::idle_power_mw`] per point.
//!
//! The property tests at the bottom of this module pin lookup == live
//! recomputation for every scenario × ladder point × shipped backend, so
//! a backend whose estimators drift from its table fails loudly.

use crate::backend::{Backend, BackendOutput};
use crate::control::DvfsPoint;
use crate::energy::EnergyBreakdown;
use crate::error::ServeError;
use defa_model::workload::RequestGenerator;

/// One backend's full pricing surface: modeled cost, energy and idle
/// power for every scenario at every pricing point (see the module
/// docs). Row 0 is always [`DvfsPoint::NOMINAL`].
#[derive(Debug, Clone)]
pub struct CostTable {
    /// The pricing points, nominal first (deduplicated).
    points: Vec<DvfsPoint>,
    n_scenarios: usize,
    /// Modeled service time, `[point × n_scenarios + scenario]`.
    cost_ns: Vec<u64>,
    /// Modeled energy, same layout.
    energy_pj: Vec<u128>,
    /// Modeled idle power per pricing point.
    idle_mw: Vec<u64>,
}

impl CostTable {
    /// Prices every scenario of `gen` at nominal plus each of `points`
    /// (deduplicated, nominal forced first) using `backend`'s live
    /// estimators and repricer.
    ///
    /// # Errors
    ///
    /// Propagates scenario-lookup failures from the generator.
    pub fn build(
        backend: &dyn Backend,
        gen: &RequestGenerator,
        points: &[DvfsPoint],
    ) -> Result<Self, ServeError> {
        let mut pts = vec![DvfsPoint::NOMINAL];
        for &p in points {
            if !pts.contains(&p) {
                pts.push(p);
            }
        }
        let n = gen.scenarios().len();
        let mut cost_ns = Vec::with_capacity(pts.len() * n);
        let mut energy_pj = Vec::with_capacity(pts.len() * n);
        let mut idle_mw = Vec::with_capacity(pts.len());
        for &p in &pts {
            for s in 0..n {
                let wl = gen.scenario(s)?;
                let est_cost = backend.estimate_cost_ns(wl);
                let est_energy = backend.estimate_energy_pj(wl);
                let (c, e) = if p == DvfsPoint::NOMINAL {
                    (est_cost, est_energy)
                } else {
                    // Price the estimate exactly like settle prices real
                    // outputs: through the backend's own repricer.
                    let out = backend.reprice(
                        BackendOutput {
                            digest: 0,
                            cost_ns: est_cost,
                            energy: EnergyBreakdown::from_estimate(est_energy),
                            dense_flops: 0,
                        },
                        p,
                    );
                    (out.cost_ns, out.energy.total_pj())
                };
                cost_ns.push(c);
                energy_pj.push(e);
            }
            idle_mw.push(backend.idle_power_mw(p));
        }
        Ok(CostTable { points: pts, n_scenarios: n, cost_ns, energy_pj, idle_mw })
    }

    /// The pricing points, nominal first.
    pub fn points(&self) -> &[DvfsPoint] {
        &self.points
    }

    /// Number of scenarios per row.
    pub fn scenarios(&self) -> usize {
        self.n_scenarios
    }

    /// Row index of `clock`, if it is a pricing point of this table.
    pub fn point_index(&self, clock: DvfsPoint) -> Option<usize> {
        self.points.iter().position(|&p| p == clock)
    }

    /// Memoized [`Backend::estimate_cost_ns`] repriced to point `point`.
    pub fn cost_ns(&self, point: usize, scenario: usize) -> u64 {
        self.cost_ns[point * self.n_scenarios + scenario]
    }

    /// Memoized [`Backend::estimate_energy_pj`] repriced to point
    /// `point`.
    pub fn energy_pj(&self, point: usize, scenario: usize) -> u128 {
        self.energy_pj[point * self.n_scenarios + scenario]
    }

    /// Memoized [`Backend::idle_power_mw`] at point `point`.
    pub fn idle_mw(&self, point: usize) -> u64 {
        self.idle_mw[point]
    }

    /// The nominal cost row (scenario-indexed), the values
    /// [`Backend::estimate_cost_ns`] returns live.
    pub fn nominal_cost_row(&self) -> &[u64] {
        &self.cost_ns[..self.n_scenarios]
    }

    /// The nominal energy row (scenario-indexed), the values
    /// [`Backend::estimate_energy_pj`] returns live.
    pub fn nominal_energy_row(&self) -> &[u128] {
        &self.energy_pj[..self.n_scenarios]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::control::DVFS_LADDER;
    use defa_model::MsdaConfig;

    /// The memoization contract: every table entry equals an independent
    /// live recomputation — all 9 grid scenarios × every ladder point ×
    /// all three analytic backends.
    #[test]
    fn table_matches_live_estimators_everywhere() {
        let gen = RequestGenerator::grid(&MsdaConfig::tiny(), 7).unwrap();
        assert_eq!(gen.scenarios().len(), 9, "grid is the 9-scenario sweep");
        for kind in [BackendKind::Dense, BackendKind::Pruned, BackendKind::Accelerator] {
            let backend = kind.build();
            let table = CostTable::build(backend.as_ref(), &gen, &DVFS_LADDER).unwrap();
            assert_eq!(table.points()[0], DvfsPoint::NOMINAL, "nominal row first");
            assert_eq!(table.scenarios(), 9);
            for (pi, &p) in table.points().iter().enumerate() {
                assert_eq!(
                    table.idle_mw(pi),
                    backend.idle_power_mw(p),
                    "{}: idle power at {}",
                    backend.name(),
                    p.label()
                );
                for s in 0..9 {
                    let wl = gen.scenario(s).unwrap();
                    let est_cost = backend.estimate_cost_ns(wl);
                    let est_energy = backend.estimate_energy_pj(wl);
                    let (want_cost, want_energy) = if p == DvfsPoint::NOMINAL {
                        (est_cost, est_energy)
                    } else {
                        let out = backend.reprice(
                            BackendOutput {
                                digest: 0,
                                cost_ns: est_cost,
                                energy: EnergyBreakdown::from_estimate(est_energy),
                                dense_flops: 0,
                            },
                            p,
                        );
                        (out.cost_ns, out.energy.total_pj())
                    };
                    assert_eq!(
                        table.cost_ns(pi, s),
                        want_cost,
                        "{}: cost of scenario {s} at {}",
                        backend.name(),
                        p.label()
                    );
                    assert_eq!(
                        table.energy_pj(pi, s),
                        want_energy,
                        "{}: energy of scenario {s} at {}",
                        backend.name(),
                        p.label()
                    );
                }
            }
        }
    }

    /// Nominal-only tables (the uncontrolled fast path) have one row and
    /// duplicate points collapse.
    #[test]
    fn points_are_deduplicated_with_nominal_first() {
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 7).unwrap();
        let backend = BackendKind::Accelerator.build();
        let table = CostTable::build(backend.as_ref(), &gen, &[]).unwrap();
        assert_eq!(table.points(), &[DvfsPoint::NOMINAL]);

        let dup = [DvfsPoint::NOMINAL, DVFS_LADDER[1], DVFS_LADDER[1]];
        let table = CostTable::build(backend.as_ref(), &gen, &dup).unwrap();
        assert_eq!(table.points(), &[DvfsPoint::NOMINAL, DVFS_LADDER[1]]);
        assert_eq!(table.point_index(DVFS_LADDER[1]), Some(1));
        assert_eq!(table.point_index(DVFS_LADDER[3]), None);
    }

    /// GPU-modeled backends reprice as the identity: their non-nominal
    /// rows equal the nominal row (clock-independent pricing).
    #[test]
    fn identity_repricers_fill_constant_rows() {
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 7).unwrap();
        let backend = BackendKind::Dense.build();
        let table = CostTable::build(backend.as_ref(), &gen, &DVFS_LADDER).unwrap();
        for pi in 1..table.points().len() {
            for s in 0..table.scenarios() {
                assert_eq!(table.cost_ns(pi, s), table.cost_ns(0, s));
                assert_eq!(table.energy_pj(pi, s), table.energy_pj(0, s));
            }
        }
    }
}
