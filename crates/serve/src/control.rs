//! Closed-loop fleet control: epoch-stepped observation and actuation.
//!
//! The policy layers of [`crate::runtime`] decide *per batch*; this module
//! decides *per epoch*. The runtime divides virtual time into fixed
//! control epochs ([`crate::config::ControlConfig::epoch_us`]); at every
//! boundary it hands the [`Controller`] a [`FleetView`] snapshot — queue
//! depth, arrivals, drops, SLO misses since the previous boundary, the
//! active shard count and the current accelerator clock — and applies
//! whatever [`ControlAction`]s the controller returns before the next
//! batch is formed.
//!
//! # Determinism contract
//!
//! Controllers run on the accounting thread of the virtual-time loop and
//! must be **pure state machines over the snapshot sequence**: the same
//! seed and [`crate::ServeConfig`] produce the same snapshots, so the same
//! decisions, so a byte-identical [`crate::ServeReport`] for any
//! `RAYON_NUM_THREADS`. No wall clock, no randomness, no interior
//! mutability beyond the state the trait's `&mut self` makes explicit.
//! [`NoOpController`] returns no actions, which pins the uncontrolled
//! runtime byte-for-byte (`tests/tests/control.rs` holds it against the
//! PR 4 digests).
//!
//! # The shipped controllers
//!
//! * [`NoOpController`] — a static fleet at the nominal clock;
//! * [`ShardAutoscaler`] — hysteresis on epoch queue depth and drops:
//!   adds a shard under pressure, drains the highest-index shard after a
//!   run of calm epochs. Draining is *drain-before-stop*: the shard takes
//!   no new batches but its in-flight batch settles normally, so
//!   conservation (arrivals = completed + dropped) survives every resize;
//! * [`DvfsGovernor`] — steps the accelerator clock down a
//!   frequency/voltage ladder ([`DVFS_LADDER`]) across idle epochs and
//!   snaps back to nominal under pressure. The runtime re-prices latency
//!   (cycles at the epoch's clock) *and* energy (dynamic energy ∝ V²)
//!   through [`crate::Backend::reprice`] — energy-proportional serving.

/// One accelerator operating point: core clock and supply voltage.
///
/// Latency scales inversely with `freq_mhz`; dynamic energy scales with
/// `mv²` (the classic CV²f argument with the f cancelled per-event).
/// Integer fields keep the re-pricing arithmetic exact, so reports stay
/// byte-identical across hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvfsPoint {
    /// Core clock in MHz.
    pub freq_mhz: u32,
    /// Supply voltage in millivolts.
    pub mv: u32,
}

impl DvfsPoint {
    /// The paper design point: 400 MHz at nominal voltage.
    ///
    /// Re-pricing at this point is exactly the identity, which is what
    /// lets [`NoOpController`] runs reproduce the uncontrolled runtime
    /// byte-for-byte.
    pub const NOMINAL: DvfsPoint = DvfsPoint { freq_mhz: 400, mv: 1000 };

    /// Short display form (`400MHz@1.00V`).
    pub fn label(&self) -> String {
        format!("{}MHz@{:.2}V", self.freq_mhz, self.mv as f64 / 1000.0)
    }
}

/// The default frequency/voltage ladder, fastest first. Voltage tracks
/// frequency as on real silicon, so each step down cuts dynamic energy
/// quadratically while stretching latency linearly.
pub const DVFS_LADDER: [DvfsPoint; 4] = [
    DvfsPoint::NOMINAL,
    DvfsPoint { freq_mhz: 300, mv: 900 },
    DvfsPoint { freq_mhz: 200, mv: 800 },
    DvfsPoint { freq_mhz: 100, mv: 700 },
];

/// What the controller sees at one epoch boundary.
///
/// Counters cover the epoch that just ended — more precisely, the events
/// the virtual-time loop *processed* since the previous boundary, which is
/// the deterministic analogue of a production controller's metric window.
/// The report-side timeline ([`crate::report::EpochStat`]) instead
/// attributes events by exact virtual timestamp; controllers only need a
/// consistent signal, reports need exact accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetView {
    /// Index of the epoch that just ended (0-based).
    pub epoch: u64,
    /// Virtual start of that epoch.
    pub start_ns: u64,
    /// Virtual end of that epoch (the boundary being crossed).
    pub end_ns: u64,
    /// Shards currently accepting new batches.
    pub active_shards: usize,
    /// Fleet-size ceiling (shards that exist, active or not).
    pub max_shards: usize,
    /// Admission-queue depth at the boundary.
    pub queue_depth: usize,
    /// Arrivals observed during the epoch (admitted + dropped).
    pub arrivals: u64,
    /// Arrivals dropped during the epoch.
    pub dropped: u64,
    /// Requests settled during the epoch.
    pub completed: u64,
    /// Settled requests that blew their SLO budget during the epoch.
    pub slo_violations: u64,
    /// Clock the fleet ran at during the epoch.
    pub clock: DvfsPoint,
}

/// One actuation a controller may request at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Activate the lowest-index inactive shard (no-op at the ceiling).
    AddShard,
    /// Drain the highest-index active shard: it takes no new batches, its
    /// in-flight batch settles normally (no-op at one active shard).
    DrainShard,
    /// Switch the fleet clock for subsequently dispatched batches.
    SetClock(DvfsPoint),
}

impl ControlAction {
    /// Stable snake_case kind label (used on the observability
    /// controller track and in tables).
    pub fn kind_label(&self) -> &'static str {
        match self {
            ControlAction::AddShard => "add_shard",
            ControlAction::DrainShard => "drain_shard",
            ControlAction::SetClock(_) => "set_clock",
        }
    }
}

/// An epoch-boundary fleet controller.
///
/// `decide` must be a pure function of the snapshot sequence and the
/// state reachable from it — see the module-level determinism contract.
pub trait Controller: Send {
    /// Short display name for tables and reports.
    fn name(&self) -> &'static str;

    /// Observes the epoch that just ended and returns the actions to
    /// apply before the next batch is formed.
    fn decide(&mut self, view: &FleetView) -> Vec<ControlAction>;

    /// Whether the controller is *quiescent* at `view`: `decide` would
    /// return no actions for this view — and for any run of consecutive
    /// views identical to it up to epoch index and timestamps — and
    /// skipping those `decide` calls leaves every future decision
    /// unchanged.
    ///
    /// The event loop consults this only on all-quiet boundaries (no
    /// arrivals, drops, completions or SLO misses in the epoch, and an
    /// empty queue) and, on `true`, fast-forwards across the whole idle
    /// gap in O(1) instead of stepping each boundary — the fix for the
    /// old O(idle-epochs) walk. Returning `true` when the controller
    /// would still mutate observable state breaks the determinism
    /// contract, so the default is a conservative `false`; implementors
    /// must argue state-equivalence before opting in.
    fn quiescent(&self, _view: &FleetView) -> bool {
        false
    }
}

/// A static fleet at the nominal clock: never acts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOpController;

impl Controller for NoOpController {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(&mut self, _view: &FleetView) -> Vec<ControlAction> {
        Vec::new()
    }

    fn quiescent(&self, _view: &FleetView) -> bool {
        true
    }
}

/// Operating thresholds of the [`ShardAutoscaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Queue depth at an epoch boundary that triggers a scale-up (any
    /// drop in the epoch triggers one regardless).
    pub scale_up_queue: usize,
    /// Queue depth at or below which an epoch counts as calm.
    pub scale_down_queue: usize,
    /// Consecutive calm epochs required before draining one shard — the
    /// hysteresis that keeps the fleet from flapping on bursty traffic.
    pub calm_epochs: u32,
    /// Never drain below this many active shards.
    pub min_shards: usize,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig { scale_up_queue: 8, scale_down_queue: 1, calm_epochs: 3, min_shards: 1 }
    }
}

/// Elastic fleet sizing with hysteresis.
///
/// Scale-up is eager (any epoch with drops or a deep queue adds a shard
/// immediately); scale-down is lazy (a run of
/// [`AutoscalerConfig::calm_epochs`] calm epochs drains one shard). The
/// asymmetry is deliberate: under-provisioning sheds requests
/// irrecoverably, over-provisioning only costs idle energy.
#[derive(Debug, Clone)]
pub struct ShardAutoscaler {
    cfg: AutoscalerConfig,
    calm_streak: u32,
}

impl ShardAutoscaler {
    /// An autoscaler with the given thresholds.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        ShardAutoscaler { cfg, calm_streak: 0 }
    }
}

impl Controller for ShardAutoscaler {
    fn name(&self) -> &'static str {
        "autoscaler"
    }

    fn decide(&mut self, view: &FleetView) -> Vec<ControlAction> {
        let pressured = view.dropped > 0 || view.queue_depth >= self.cfg.scale_up_queue;
        if pressured {
            self.calm_streak = 0;
            // Drops are an emergency (requests are being lost right now):
            // add two shards at once; a deep-but-holding queue adds one.
            let want = if view.dropped > 0 { 2 } else { 1 };
            let headroom = view.max_shards.saturating_sub(view.active_shards);
            return vec![ControlAction::AddShard; want.min(headroom)];
        }
        let calm = view.queue_depth <= self.cfg.scale_down_queue && view.slo_violations == 0;
        if calm && view.active_shards > self.cfg.min_shards.max(1) {
            self.calm_streak += 1;
            if self.calm_streak >= self.cfg.calm_epochs {
                self.calm_streak = 0;
                return vec![ControlAction::DrainShard];
            }
        } else {
            self.calm_streak = 0;
        }
        Vec::new()
    }

    fn quiescent(&self, view: &FleetView) -> bool {
        // On an all-quiet view, `decide` is a pure no-op exactly when
        // the fleet sits at its floor (the calm branch is skipped, and
        // the streak reset in the else-branch only matters if the streak
        // is non-zero) and a zero queue cannot read as pressure.
        view.dropped == 0
            && view.slo_violations == 0
            && view.queue_depth == 0
            && self.cfg.scale_up_queue > 0
            && view.active_shards <= self.cfg.min_shards.max(1)
            && self.calm_streak == 0
    }
}

/// Operating thresholds of the [`DvfsGovernor`].
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsConfig {
    /// The frequency/voltage ladder, fastest first.
    pub ladder: Vec<DvfsPoint>,
    /// Queue depth at a boundary that snaps the clock back to the top of
    /// the ladder (any drop or SLO miss in the epoch snaps regardless).
    pub busy_queue: usize,
    /// Consecutive quiet epochs (empty queue, no drops, no misses)
    /// required before stepping one rung down.
    pub quiet_epochs: u32,
}

impl Default for DvfsConfig {
    fn default() -> Self {
        DvfsConfig { ladder: DVFS_LADDER.to_vec(), busy_queue: 4, quiet_epochs: 2 }
    }
}

/// Steps the accelerator clock down the ladder across quiet epochs and
/// snaps it back to nominal under pressure.
///
/// Like the autoscaler, reaction is asymmetric: pressure restores the
/// full clock in one epoch (latency is at stake), while stepping down
/// needs a sustained quiet run (only energy is at stake).
#[derive(Debug, Clone)]
pub struct DvfsGovernor {
    cfg: DvfsConfig,
    level: usize,
    quiet_streak: u32,
}

impl DvfsGovernor {
    /// A governor starting at the top of its ladder.
    pub fn new(cfg: DvfsConfig) -> Self {
        DvfsGovernor { cfg, level: 0, quiet_streak: 0 }
    }
}

impl Controller for DvfsGovernor {
    fn name(&self) -> &'static str {
        "dvfs"
    }

    fn decide(&mut self, view: &FleetView) -> Vec<ControlAction> {
        if self.cfg.ladder.is_empty() {
            return Vec::new();
        }
        let pressured =
            view.dropped > 0 || view.slo_violations > 0 || view.queue_depth >= self.cfg.busy_queue;
        if pressured {
            self.quiet_streak = 0;
            if self.level != 0 {
                self.level = 0;
                return vec![ControlAction::SetClock(self.cfg.ladder[0])];
            }
            return Vec::new();
        }
        if view.queue_depth == 0 {
            // Saturating: at the bottom rung the streak keeps growing
            // without ever being read (see `quiescent`), and a 10M-epoch
            // run must not overflow it.
            self.quiet_streak = self.quiet_streak.saturating_add(1);
            if self.quiet_streak >= self.cfg.quiet_epochs && self.level + 1 < self.cfg.ladder.len()
            {
                self.quiet_streak = 0;
                self.level += 1;
                return vec![ControlAction::SetClock(self.cfg.ladder[self.level])];
            }
        } else {
            self.quiet_streak = 0;
        }
        Vec::new()
    }

    fn quiescent(&self, view: &FleetView) -> bool {
        // At the bottom rung the quiet streak still increments, but its
        // value is unobservable: it only gates steps *down* (impossible
        // at the bottom) and the next pressure resets it to zero before
        // it is read again. So an all-quiet view at the bottom — with a
        // zero queue that cannot read as pressure — is skippable.
        if self.cfg.ladder.is_empty() {
            return true;
        }
        view.dropped == 0
            && view.slo_violations == 0
            && view.queue_depth == 0
            && self.cfg.busy_queue > 0
            && self.level + 1 >= self.cfg.ladder.len()
    }
}

/// The shipped fleet controllers, for config, sweeps and CLI selection.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ControllerKind {
    /// [`NoOpController`] (the default — byte-compatible with PR 4).
    #[default]
    NoOp,
    /// [`ShardAutoscaler`] with the given thresholds.
    Autoscaler(AutoscalerConfig),
    /// [`DvfsGovernor`] with the given ladder and thresholds.
    Dvfs(DvfsConfig),
}

impl ControllerKind {
    /// The controller's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ControllerKind::NoOp => "static",
            ControllerKind::Autoscaler(_) => "autoscaler",
            ControllerKind::Dvfs(_) => "dvfs",
        }
    }

    /// Builds the controller in its initial state.
    pub fn build(&self) -> Box<dyn Controller> {
        match self {
            ControllerKind::NoOp => Box::new(NoOpController),
            ControllerKind::Autoscaler(cfg) => Box::new(ShardAutoscaler::new(*cfg)),
            ControllerKind::Dvfs(cfg) => Box::new(DvfsGovernor::new(cfg.clone())),
        }
    }

    /// Every DVFS point this controller can set, nominal first.
    ///
    /// This is the closed set of clocks a run can ever price work at —
    /// only [`DvfsGovernor`] moves the clock, and only within its ladder
    /// — so [`crate::cost::CostTable`]s built over these points cover
    /// every lookup the runtime will make.
    pub fn pricing_points(&self) -> Vec<DvfsPoint> {
        let mut pts = vec![DvfsPoint::NOMINAL];
        if let ControllerKind::Dvfs(cfg) = self {
            for &p in &cfg.ladder {
                if !pts.contains(&p) {
                    pts.push(p);
                }
            }
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(epoch: u64, active: usize, queue: usize, dropped: u64) -> FleetView {
        FleetView {
            epoch,
            start_ns: epoch * 1_000_000,
            end_ns: (epoch + 1) * 1_000_000,
            active_shards: active,
            max_shards: 4,
            queue_depth: queue,
            arrivals: 10,
            dropped,
            completed: 10 - dropped,
            slo_violations: 0,
            clock: DvfsPoint::NOMINAL,
        }
    }

    #[test]
    fn noop_never_acts() {
        let mut c = NoOpController;
        for e in 0..10 {
            assert!(c.decide(&view(e, 2, 64, 5)).is_empty());
        }
    }

    #[test]
    fn autoscaler_scales_up_on_drops_and_deep_queues() {
        let mut c = ShardAutoscaler::new(AutoscalerConfig::default());
        assert_eq!(
            c.decide(&view(0, 2, 0, 3)),
            [ControlAction::AddShard; 2],
            "drops are an emergency: two shards at once"
        );
        assert_eq!(c.decide(&view(1, 3, 8, 0)), [ControlAction::AddShard], "deep queue adds one");
        // One slot of headroom left: the emergency add is clamped to it.
        assert_eq!(c.decide(&view(2, 3, 0, 5)), [ControlAction::AddShard]);
        // At the ceiling, pressure is acknowledged but nothing is added.
        assert!(c.decide(&view(3, 4, 64, 9)).is_empty());
    }

    #[test]
    fn autoscaler_drains_only_after_a_calm_streak() {
        let mut c = ShardAutoscaler::new(AutoscalerConfig { calm_epochs: 3, ..Default::default() });
        assert!(c.decide(&view(0, 3, 0, 0)).is_empty());
        assert!(c.decide(&view(1, 3, 1, 0)).is_empty());
        // A pressured epoch resets the streak.
        assert_eq!(c.decide(&view(2, 3, 0, 1)), [ControlAction::AddShard]);
        assert!(c.decide(&view(3, 4, 0, 0)).is_empty());
        assert!(c.decide(&view(4, 4, 0, 0)).is_empty());
        assert_eq!(c.decide(&view(5, 4, 0, 0)), [ControlAction::DrainShard]);
        // The streak restarts after a drain.
        assert!(c.decide(&view(6, 3, 0, 0)).is_empty());
        assert!(c.decide(&view(7, 3, 0, 0)).is_empty());
        assert_eq!(c.decide(&view(8, 3, 0, 0)), [ControlAction::DrainShard]);
    }

    #[test]
    fn autoscaler_respects_the_floor() {
        let mut c = ShardAutoscaler::new(AutoscalerConfig {
            calm_epochs: 1,
            min_shards: 2,
            ..Default::default()
        });
        assert!(c.decide(&view(0, 2, 0, 0)).is_empty(), "at the floor, calm never drains");
        assert_eq!(c.decide(&view(1, 3, 0, 0)), [ControlAction::DrainShard]);
    }

    #[test]
    fn governor_steps_down_across_quiet_epochs_and_snaps_back() {
        let mut c = DvfsGovernor::new(DvfsConfig::default());
        let quiet = |e| view(e, 2, 0, 0);
        assert!(c.decide(&quiet(0)).is_empty());
        assert_eq!(c.decide(&quiet(1)), [ControlAction::SetClock(DVFS_LADDER[1])]);
        assert!(c.decide(&quiet(2)).is_empty());
        assert_eq!(c.decide(&quiet(3)), [ControlAction::SetClock(DVFS_LADDER[2])]);
        // Pressure snaps straight to the top, not one rung.
        assert_eq!(c.decide(&view(4, 2, 9, 0)), [ControlAction::SetClock(DVFS_LADDER[0])]);
        // Already at the top: pressure produces no action.
        assert!(c.decide(&view(5, 2, 9, 2)).is_empty());
    }

    #[test]
    fn governor_never_walks_off_the_ladder() {
        let mut c = DvfsGovernor::new(DvfsConfig { quiet_epochs: 1, ..Default::default() });
        let mut clocks = Vec::new();
        for e in 0..10 {
            for a in c.decide(&view(e, 2, 0, 0)) {
                if let ControlAction::SetClock(p) = a {
                    clocks.push(p);
                }
            }
        }
        assert_eq!(clocks, &DVFS_LADDER[1..], "one pass down the ladder, then stable");
    }

    #[test]
    fn kinds_build_what_they_name() {
        for kind in [
            ControllerKind::NoOp,
            ControllerKind::Autoscaler(AutoscalerConfig::default()),
            ControllerKind::Dvfs(DvfsConfig::default()),
        ] {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn quiescence_matches_a_decide_no_op() {
        let idle = |active: usize| FleetView {
            epoch: 9,
            start_ns: 9_000_000,
            end_ns: 10_000_000,
            active_shards: active,
            max_shards: 4,
            queue_depth: 0,
            arrivals: 0,
            dropped: 0,
            completed: 0,
            slo_violations: 0,
            clock: DvfsPoint::NOMINAL,
        };
        assert!(NoOpController.quiescent(&idle(2)));

        // Autoscaler: above the floor an idle epoch still drains shards,
        // so it must keep stepping; at the floor it is skippable.
        let mut scaler = ShardAutoscaler::new(AutoscalerConfig::default());
        assert!(!scaler.quiescent(&idle(2)));
        assert!(scaler.quiescent(&idle(1)));
        assert!(scaler.decide(&idle(1)).is_empty(), "quiescent view must be a decide no-op");
        // A live calm streak is observable state: not skippable.
        let mut streaky = ShardAutoscaler::new(AutoscalerConfig::default());
        streaky.decide(&idle(3));
        assert!(!streaky.quiescent(&idle(1)), "mid-streak state must keep stepping");

        // Governor: quiescent only once parked at the bottom rung.
        let mut gov = DvfsGovernor::new(DvfsConfig { quiet_epochs: 1, ..Default::default() });
        assert!(!gov.quiescent(&idle(2)));
        for e in 0..3 {
            gov.decide(&idle(2));
            let _ = e;
        }
        assert!(gov.quiescent(&idle(2)), "bottom of the ladder is skippable");
        assert!(gov.decide(&idle(2)).is_empty());
    }

    #[test]
    fn dvfs_points_label_their_operating_point() {
        assert_eq!(DvfsPoint::NOMINAL.label(), "400MHz@1.00V");
        assert_eq!(DVFS_LADDER[3].label(), "100MHz@0.70V");
    }
}
