//! Fixed-bucket latency histograms with deterministic quantiles.
//!
//! The runtime accounts latency in *virtual* nanoseconds (see
//! [`crate::runtime`]), so histogram contents must be exactly reproducible:
//! fixed power-of-two buckets, integer counts, and quantiles read off the
//! bucket boundaries. No sampling, no floating-point accumulation order —
//! two runs that record the same latencies produce byte-identical
//! histograms regardless of thread count or batch interleaving.

/// Number of buckets; see [`LatencyHistogram`] for the covered range.
pub const N_BUCKETS: usize = 48;

/// log2 of the first bucket's upper bound in nanoseconds (2^10 ≈ 1 µs).
const LOG2_LO: u32 = 10;

/// A log2-spaced latency histogram over `[0, ~2^57) ns`.
///
/// Bucket 0 covers `[0, 2^10) ns` — *everything* below ~1 µs, not one
/// power-of-two like the rest — and bucket `i ≥ 1` covers
/// `[2^(i+9), 2^(i+10)) ns`, with the last bucket additionally absorbing
/// everything from 2^57 ns up. (`index()` saturates `log2` at the low end,
/// so ns = 1 and ns = 1023 both land in bucket 0 while ns = 1024 starts
/// bucket 1; the boundary tests pin this so doc and code cannot drift.)
/// One power-of-two per bucket resolves p50/p95/p99 to within 2×, which is
/// the right fidelity for a model-driven runtime — and the fixed layout is
/// what lets determinism tests compare bucket counts across thread counts.
///
/// # Example
///
/// ```
/// use defa_serve::histogram::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.p50_ns() <= h.p99_ns());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Bucket index for a latency.
    fn index(ns: u64) -> usize {
        let bits = 64 - ns.max(1).leading_zeros(); // ceil(log2(ns+…)): 2^(bits-1) <= ns < 2^bits
        (bits.saturating_sub(LOG2_LO) as usize).min(N_BUCKETS - 1)
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bucket counts (fixed layout; see the type docs).
    pub fn bucket_counts(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / self.count as u128) as u64
        }
    }

    /// Largest recorded latency (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest recorded latency (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The latency below which a fraction `q` of observations falls,
    /// resolved to the upper bound of the containing bucket (clamped to
    /// the recorded max). Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = 1u64 << (i as u32 + LOG2_LO);
                return bound.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency (bucket upper bound).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency (bucket upper bound).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats nanoseconds as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_covers_the_range() {
        assert_eq!(LatencyHistogram::index(0), 0);
        assert_eq!(LatencyHistogram::index(1), 0);
        assert_eq!(LatencyHistogram::index(1 << LOG2_LO), 1);
        assert_eq!(LatencyHistogram::index(u64::MAX), N_BUCKETS - 1);
        // Buckets are monotone in latency.
        let mut prev = 0;
        for shift in 0..63 {
            let i = LatencyHistogram::index(1u64 << shift);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn bucket_zero_boundary_matches_the_documented_layout() {
        // Bucket 0 is [0, 2^10): ns = 1 and ns = 1023 are inside, ns = 1024
        // opens bucket 1 ([2^10, 2^11)), which also holds ns = 1025.
        assert_eq!(LatencyHistogram::index(1), 0);
        assert_eq!(LatencyHistogram::index(1023), 0);
        assert_eq!(LatencyHistogram::index(1024), 1);
        assert_eq!(LatencyHistogram::index(1025), 1);
        // General layout: bucket i >= 1 covers [2^(i+9), 2^(i+10)).
        for i in 1..(N_BUCKETS - 1) as u32 {
            assert_eq!(LatencyHistogram::index(1u64 << (i + 9)), i as usize);
            assert_eq!(LatencyHistogram::index((1u64 << (i + 10)) - 1), i as usize);
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 10_000); // 10 µs .. 10 ms
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_ns());
        // p50 of uniform 10µs..10ms sits within a bucket of 5ms.
        assert!((2_500_000..=10_000_000).contains(&p50), "p50={p50}");
        assert_eq!(h.mean_ns(), 5_005_000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn merge_equals_joint_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut joint = LatencyHistogram::new();
        for i in 0..100u64 {
            let ns = (i + 1) * 7_777;
            if i % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            joint.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn single_observation_quantiles_hit_it() {
        let mut h = LatencyHistogram::new();
        h.record(123_456);
        assert_eq!(h.p50_ns(), 123_456); // clamped to max
        assert_eq!(h.p99_ns(), 123_456);
        assert_eq!(h.min_ns(), 123_456);
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(500).ends_with("ns"));
        assert!(fmt_ns(5_000).ends_with("µs"));
        assert!(fmt_ns(5_000_000).ends_with("ms"));
        assert!(fmt_ns(5_000_000_000).ends_with('s'));
    }
}
