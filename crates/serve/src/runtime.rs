//! The serving runtime: the discrete-event virtual-time engine that
//! composes the policy layers.
//!
//! # Execution model
//!
//! The runtime separates *what* is computed from *when* it is deemed to
//! happen:
//!
//! * **Real execution** — every admitted request is materialized from the
//!   seeded [`RequestGenerator`] and evaluated by its shard's backend on a
//!   long-lived [`WorkerPool`] worker. Requests are independent, so
//!   per-request results are bit-identical regardless of batch
//!   composition, shard count or thread count. Pool workers are
//!   persistent threads, so the thread-local [`defa_tensor::Scratch`]
//!   arenas inside the GEMM kernels act as per-shard arenas: after the
//!   first batch warms the high-water mark, steady-state serving performs
//!   no packing allocations. Payload-free backends
//!   ([`Backend::payload_free`], e.g. [`crate::backend::ReplayBackend`])
//!   skip materialization *and* the pool round-trip entirely: their
//!   batches execute inline on the accounting thread, which is what makes
//!   10M-request traces feasible in seconds.
//!
//! * **Virtual-time accounting** — arrivals, queueing, batching triggers
//!   and service times are tracked on an integer virtual clock driven by
//!   the seeded load generator and the backends' deterministic cost
//!   models. Latency numbers therefore never observe wall-clock jitter:
//!   the full [`ServeReport`] — digest, histogram buckets, quantiles,
//!   timeline — is byte-identical for any `RAYON_NUM_THREADS`, pinned by
//!   `tests/tests/serving.rs`.
//!
//! # The event loop
//!
//! The loop is driven by a typed event list ([`crate::events`]): one
//! pending epoch-boundary event, one pending arrival (the head of the
//! lazy [`crate::loadgen::ArrivalIter`] — the trace is never
//! materialized), and a binary heap of per-shard free events. Live state
//! is therefore bounded by *in-flight* work — the admission queue, one
//! batch per shard, and a small settle-reorder window — never by the
//! trace length:
//!
//! * **Arrivals** stream from the pull iterator one at a time; consuming
//!   the cursor pulls the next.
//! * **Outcomes** stream into the log2 latency histograms, fixed-point
//!   energy accumulators and the id-ordered FNV digest as they settle; a
//!   reorder window no deeper than the scheduler's fairness bound puts
//!   out-of-order settles back in id order. Per-request
//!   [`RequestOutcome`] records are an opt-in debug capture of the first
//!   [`crate::config::ServeConfig::outcome_capture`] requests.
//! * **Epoch boundaries** are scheduled events. Across an idle gap with a
//!   quiescent controller ([`Controller::quiescent`]) the loop
//!   fast-forwards the boundary cursor in O(1) instead of stepping every
//!   boundary — a multi-second silent trace segment costs one skip, not
//!   O(idle-epochs) controller calls. Peak live state and the
//!   stepped/skipped split are reported in [`crate::report::LiveStats`].
//!
//! # The policy layers
//!
//! Each decision the loop takes is delegated to a layer behind a trait,
//! configured per [`ServeConfig`]:
//!
//! ```text
//!  ArrivalProcess ─> AdmissionQueue ─> Scheduler ─> Router ─> fleet ─> report
//!  (when requests    (who may wait;    (who rides   (which     (which
//!   arrive)           who is dropped)   the batch)   shard)     backend)
//! ```
//!
//! The loop itself owns only the *timing* rules, identical for every
//! policy: a batch launches when [`ServeConfig::max_batch`] requests are
//! waiting or the oldest waiting request has aged past
//! [`ServeConfig::batch_deadline_us`]; the chosen shard serves it
//! sequentially after a fixed dispatch overhead. With the default
//! policies (Poisson, tail drop, FIFO, round-robin) the loop replays the
//! PR 2 runtime decision-for-decision — the byte-compat test pins it.
//!
//! # The control loop
//!
//! On top of the per-batch policies sits the per-epoch control loop
//! ([`crate::control`]): virtual time is divided into
//! [`crate::config::ControlConfig::epoch_us`] epochs, and before each
//! routing decision the loop settles every boundary the decision time has
//! crossed — handing the [`Controller`] a [`FleetView`] of the epoch that
//! ended and applying its actions (activate a shard, drain a shard, step
//! the DVFS clock) before any further batch forms. Draining is
//! *drain-before-stop*: a drained shard takes no new batches but its
//! in-flight batch settles through the normal path, so conservation and
//! byte-determinism survive every resize. Batches carry the clock they
//! were dispatched at; settling re-prices their latency and energy
//! through [`Backend::reprice`], which is exactly the identity at the
//! nominal point — a [`crate::control::NoOpController`] run is
//! byte-identical to PR 4 (`tests/tests/control.rs` pins it against the
//! same digests as `tests/tests/serving.rs`).

use crate::admission::{Admission, AdmissionQueue, QueuedRequest};
use crate::backend::{Backend, BackendOutput};
use crate::config::ServeConfig;
use crate::control::{ControlAction, Controller, DvfsPoint, FleetView};
use crate::cost::CostTable;
use crate::energy::EnergyBreakdown;
use crate::events::EventList;
use crate::histogram::LatencyHistogram;
use crate::loadgen::ArrivalIter;
use crate::obs::{Obs, ProfSection};
use crate::report::{EpochStat, LiveStats, RequestOutcome, ServeReport};
use crate::router::ShardView;
use crate::ServeError;
use defa_model::workload::{RequestGenerator, SloClass};
use defa_parallel::WorkerPool;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::sync::{mpsc, Arc};

/// Salt applied to the generator seed for the arrival-time stream, so load
/// timing and request payloads draw from independent streams.
const ARRIVAL_SALT: u64 = 0x5E54_1A7E_57A6_0001;

/// Digest marker mixed in for dropped requests.
const DROP_MARK: u64 = 0xD20D_D20D_D20D_D20D;

/// Where a batch's real results come from: a worker-pool channel for
/// backends that need materialized payloads, or the already-computed
/// vector for payload-free backends executed inline.
enum BatchResults {
    Pool(mpsc::Receiver<Vec<Result<BackendOutput, ServeError>>>),
    Ready(Vec<Result<BackendOutput, ServeError>>),
}

/// A batch handed to a shard: its virtual start, the clock it dispatched
/// at, plus where its real results arrive.
struct Inflight {
    start_ns: u64,
    batch: u64,
    clock: DvfsPoint,
    members: Vec<QueuedRequest>,
    results: BatchResults,
}

/// Streams settled outcomes into the id-ordered FNV digest without
/// holding them all.
///
/// Settles arrive out of id order (pipelined shards, non-FIFO
/// schedulers), but the digest folds in id order, so a small reorder
/// window buffers outcomes until the id watermark (`base`) reaches them.
/// The window depth is bounded by how far the scheduler lets a request
/// fall behind its successors — the fairness bound — not by the trace
/// length; its high-water mark is reported as
/// [`LiveStats::peak_reorder`].
///
/// The window holds only the 8-byte *digest word* per pending request
/// (the response digest, or [`DROP_MARK`] for drops) — never the full
/// [`RequestOutcome`]. At trace scale the window runs hundreds of
/// entries deep, so keeping it to a `u64` ring instead of ~120-byte
/// outcome records is a measured hot-path win (the settle section of
/// the self-profile); the fold order and `peak_window` accounting are
/// unchanged. The opt-in debug capture of the first `capture_cap`
/// outcomes (by id) is collected out of settle order on the side and
/// sorted once at `finish` — ids are unique, so the sorted capture is
/// byte-identical to the fold-order capture it replaced.
struct OutcomeLedger {
    digest: u64,
    /// All outcomes with id < base are folded into `digest`.
    base: u64,
    /// Pending digest words for ids `base..base + window.len()`.
    window: VecDeque<Option<u64>>,
    captured: Vec<(u64, RequestOutcome)>,
    capture_cap: u64,
    peak_window: usize,
}

impl OutcomeLedger {
    fn new(capture_cap: usize) -> Self {
        OutcomeLedger {
            digest: crate::backend::FNV_OFFSET,
            base: 0,
            window: VecDeque::new(),
            captured: Vec::new(),
            capture_cap: capture_cap as u64,
            peak_window: 0,
        }
    }

    /// Whether request `id` falls in the opt-in debug capture; callers
    /// only materialize a [`RequestOutcome`] when it does.
    #[inline(always)]
    fn captures(&self, id: u64) -> bool {
        id < self.capture_cap
    }

    /// Keeps one captured outcome (any settle order; sorted at finish).
    #[inline(always)]
    fn capture(&mut self, id: u64, outcome: RequestOutcome) {
        debug_assert!(self.captures(id));
        self.captured.push((id, outcome));
    }

    /// Buffers one settled digest word and folds every now-contiguous
    /// prefix into the digest.
    #[inline(always)]
    fn record(&mut self, id: u64, word: u64) {
        debug_assert!(id >= self.base, "request {id} settled twice");
        let off = (id - self.base) as usize;
        if off >= self.window.len() {
            self.window.resize_with(off + 1, || None);
        }
        debug_assert!(self.window[off].is_none(), "request {id} settled twice");
        self.window[off] = Some(word);
        self.peak_window = self.peak_window.max(self.window.len());
        while let Some(&Some(w)) = self.window.front() {
            self.window.pop_front();
            self.digest = crate::backend::fnv_fold(self.digest, w);
            self.base += 1;
        }
    }

    /// Conservation check and final accounting:
    /// `(digest, captured outcomes, peak reorder depth)`.
    fn finish(mut self, n_requests: u64) -> (u64, Vec<RequestOutcome>, u64) {
        assert_eq!(
            self.base, n_requests,
            "outcome ledger: {} of {n_requests} requests settled",
            self.base
        );
        self.captured.sort_unstable_by_key(|&(id, _)| id);
        let captured = self.captured.into_iter().map(|(_, o)| o).collect();
        (self.digest, captured, self.peak_window as u64)
    }
}

/// One epoch's worth of streamed timeline counters.
#[derive(Debug, Clone, Copy)]
struct SlotAcc {
    arrivals: u64,
    completed: u64,
    dropped: u64,
    slo_violations: u64,
    energy: EnergyBreakdown,
}

impl SlotAcc {
    const EMPTY: SlotAcc = SlotAcc {
        arrivals: 0,
        completed: 0,
        dropped: 0,
        slo_violations: 0,
        energy: EnergyBreakdown::ZERO,
    };
}

/// Streaming accumulator for the per-epoch report timeline.
///
/// Counters stream in by exact virtual timestamp as requests settle (the
/// makespan — and hence the final epoch count — is unknown until the
/// run ends); `finalize` clamps any counters recorded past the makespan
/// into the last epoch, exactly as the outcome-replay builder it
/// replaced did.
struct TimelineAcc {
    epoch_ns: u64,
    slots: Vec<SlotAcc>,
    /// Slot index and half-open `[start, end)` window of the last lookup.
    /// Timestamps cluster heavily within one control epoch, so caching
    /// the window turns the per-event `u64` division into two compares
    /// on the hot path (`cached_end == 0` initially, so the first lookup
    /// always misses).
    cached_idx: usize,
    cached_start: u64,
    cached_end: u64,
}

impl TimelineAcc {
    fn new(epoch_ns: u64) -> Self {
        TimelineAcc { epoch_ns, slots: Vec::new(), cached_idx: 0, cached_start: 0, cached_end: 0 }
    }

    #[inline(always)]
    fn slot(&mut self, t: u64) -> &mut SlotAcc {
        if t < self.cached_start || t >= self.cached_end {
            let idx = (t / self.epoch_ns) as usize;
            if idx >= self.slots.len() {
                self.slots.resize(idx + 1, SlotAcc::EMPTY);
            }
            self.cached_idx = idx;
            self.cached_start = t - t % self.epoch_ns;
            self.cached_end = self.cached_start.saturating_add(self.epoch_ns);
        }
        &mut self.slots[self.cached_idx]
    }

    /// An offered request at its arrival time.
    #[inline(always)]
    fn arrival(&mut self, t: u64) {
        self.slot(t).arrivals += 1;
    }

    /// A dropped request at its arrival time (drops count as offered).
    #[inline(always)]
    fn drop_at(&mut self, t: u64) {
        let s = self.slot(t);
        s.arrivals += 1;
        s.dropped += 1;
    }

    /// A completion (and its energy and SLO verdict) at its completion
    /// time.
    #[inline(always)]
    fn completion(&mut self, t: u64, energy: EnergyBreakdown, violated: bool) {
        let s = self.slot(t);
        s.completed += 1;
        s.energy += energy;
        if violated {
            s.slo_violations += 1;
        }
    }

    /// Builds the report timeline: one [`EpochStat`] per epoch up to the
    /// makespan, fleet states looked up from the run's change-point log.
    fn finalize(mut self, makespan_ns: u64, states: &[(u64, EpochFleetState)]) -> Vec<EpochStat> {
        let n_epochs =
            if makespan_ns == 0 { 1 } else { makespan_ns.div_ceil(self.epoch_ns) } as usize;
        if self.slots.len() < n_epochs {
            self.slots.resize(n_epochs, SlotAcc::EMPTY);
        }
        // Timestamps at the very edge of the trace (a drop offered past
        // the final completion, or a completion exactly at the makespan)
        // clamp into the last epoch.
        let overflow: Vec<SlotAcc> = self.slots.split_off(n_epochs);
        if let Some(last) = self.slots.last_mut() {
            for extra in overflow {
                last.arrivals += extra.arrivals;
                last.completed += extra.completed;
                last.dropped += extra.dropped;
                last.slo_violations += extra.slo_violations;
                last.energy += extra.energy;
            }
        }
        // Fleet states are change-points `(from_epoch, state)`; epochs
        // between change-points (including every skipped boundary) carry
        // the last recorded state forward.
        let mut si = 0usize;
        self.slots
            .into_iter()
            .enumerate()
            .map(|(e, s)| {
                while si + 1 < states.len() && states[si + 1].0 <= e as u64 {
                    si += 1;
                }
                let st = states[si].1;
                let start_ns = e as u64 * self.epoch_ns;
                let end_ns = (start_ns.saturating_add(self.epoch_ns)).min(makespan_ns);
                EpochStat {
                    epoch: e as u64,
                    start_ns,
                    end_ns,
                    active_shards: st.active_shards,
                    clock: st.clock,
                    arrivals: s.arrivals,
                    completed: s.completed,
                    dropped: s.dropped,
                    slo_violations: s.slo_violations,
                    energy: s.energy,
                    static_pj: st.idle_mw as u128 * end_ns.saturating_sub(start_ns) as u128,
                }
            })
            .collect()
    }
}

/// Mutable accounting state of one `run` call.
struct SimState {
    ledger: OutcomeLedger,
    timeline: TimelineAcc,
    queue: LatencyHistogram,
    compute: LatencyHistogram,
    total: LatencyHistogram,
    completed: u64,
    dropped: u64,
    slo_violations: u64,
    per_shard_completed: Vec<u64>,
    shard_free: Vec<u64>,
    makespan_ns: u64,
    energy: EnergyBreakdown,
    dense_flops: u128,
    events: EventList,
    /// Requests currently riding an in-flight batch.
    inflight_members: u64,
    peak_inflight: u64,
    epochs_stepped: u64,
    epochs_skipped: u64,
    /// Events processed since the last epoch boundary — the controller's
    /// metric window (see [`FleetView`]).
    ep_arrivals: u64,
    ep_dropped: u64,
    ep_completed: u64,
    ep_slo: u64,
    /// The observability collector (every hook bails on one boolean when
    /// its pillar is disabled — the zero-overhead contract).
    obs: Obs,
    /// Recycled batch-member buffers: settle clears and returns them,
    /// dispatch pops one for the scheduler to fill. Grow-on-touch, never
    /// shrink — steady-state dispatch/settle performs no allocation.
    scratch_members: Vec<Vec<QueuedRequest>>,
    /// Recycled batch-result buffers, same discipline (inline-executed
    /// fleets only; pool batches allocate on the worker side).
    scratch_results: Vec<Vec<Result<BackendOutput, ServeError>>>,
}

impl SimState {
    /// Settles a shard's in-flight batch: collects its real results,
    /// re-prices them for the clock the batch dispatched at, and advances
    /// the shard's virtual clock through them in batch order.
    fn settle(
        &mut self,
        shard: usize,
        slot: &mut Option<Inflight>,
        overhead_ns: u64,
        backend: &dyn Backend,
        shard_active: bool,
    ) -> Result<(), ServeError> {
        let Some(inf) = slot.take() else { return Ok(()) };
        let prof = self.obs.prof_begin();
        let mut results = match inf.results {
            BatchResults::Pool(rx) => rx.recv().map_err(|_| {
                ServeError::WorkerLost(format!("shard {shard} dropped batch {}", inf.batch))
            })?,
            BatchResults::Ready(r) => r,
        };
        debug_assert_eq!(results.len(), inf.members.len());
        self.inflight_members -= inf.members.len() as u64;
        // Re-pricing is the identity at the nominal clock (a documented
        // [`Backend::reprice`] requirement); skipping the virtual call
        // for nominal batches keeps the uncontrolled fast path free of
        // per-request dynamic dispatch.
        let nominal = inf.clock == DvfsPoint::NOMINAL;
        let mut t = inf.start_ns + overhead_ns;
        for (m, res) in inf.members.iter().zip(results.drain(..)) {
            // Re-pricing happens once, here, on the accounting thread:
            // the worker computed the response at whatever wall-clock
            // speed; the virtual cost and energy belong to the DVFS point
            // the batch dispatched at (identity at nominal).
            let out = if nominal { res? } else { backend.reprice(res?, inf.clock) };
            t += out.cost_ns;
            let queue_ns = inf.start_ns - m.arrival_ns;
            let compute_ns = t - inf.start_ns;
            self.queue.record(queue_ns);
            self.compute.record(compute_ns);
            self.total.record(queue_ns + compute_ns);
            self.completed += 1;
            self.ep_completed += 1;
            self.per_shard_completed[shard] += 1;
            // Fixed reduction order: settle() runs on the accounting
            // thread in batch order, and the energies are integers, so the
            // totals are byte-identical however the batches were executed.
            self.energy += out.energy;
            self.dense_flops += out.dense_flops as u128;
            // Exactly `RequestOutcome::violated_slo`, without building the
            // outcome record (only the debug capture materializes one).
            let violated = queue_ns + compute_ns > m.slo.deadline_ns();
            if violated {
                self.slo_violations += 1;
                self.ep_slo += 1;
            }
            if self.ledger.captures(m.id) {
                self.ledger.capture(
                    m.id,
                    RequestOutcome::Completed {
                        scenario: m.scenario,
                        slo: m.slo,
                        arrival_ns: m.arrival_ns,
                        digest: out.digest,
                        shard,
                        batch: inf.batch,
                        queue_ns,
                        compute_ns,
                        energy: out.energy,
                    },
                );
            }
            self.obs.on_settle(
                t,
                m.id,
                shard,
                inf.batch,
                queue_ns,
                compute_ns,
                violated,
                out.energy.total_pj(),
            );
            self.timeline.arrival(m.arrival_ns);
            self.timeline.completion(t, out.energy, violated);
            self.ledger.record(m.id, out.digest);
        }
        // Both batch buffers are drained/done: return them to the scratch
        // pools for the next dispatch (grow-on-touch, never shrink).
        self.scratch_results.push(results);
        let mut members = inf.members;
        members.clear();
        self.scratch_members.push(members);
        self.shard_free[shard] = t;
        if shard_active {
            self.events.reschedule_shard(shard, t);
        }
        self.makespan_ns = self.makespan_ns.max(t);
        self.obs.prof_end(ProfSection::Settle, prof);
        Ok(())
    }

    /// Records whatever the admission queue decided about one arrival.
    /// `req` is the offered newcomer, `depth` the queue depth after the
    /// verdict; under evict-oldest the dropped id can be an older waiter
    /// while the newcomer itself is admitted.
    #[inline(always)]
    fn record_admission(&mut self, req: &QueuedRequest, verdict: Admission, depth: usize) {
        self.obs.on_arrival(req.arrival_ns, req.id, req.scenario);
        self.ep_arrivals += 1;
        match verdict {
            Admission::Admitted => self.obs.on_admitted(req.arrival_ns, req.id, depth),
            Admission::Dropped { id, arrival_ns } => {
                if id != req.id {
                    // Evict-oldest: the newcomer got in; an old waiter
                    // was shed at the newcomer's arrival instant.
                    self.obs.on_admitted(req.arrival_ns, req.id, depth);
                }
                self.obs.on_dropped(req.arrival_ns, id);
                self.dropped += 1;
                self.ep_dropped += 1;
                self.timeline.drop_at(arrival_ns);
                if self.ledger.captures(id) {
                    self.ledger.capture(id, RequestOutcome::Dropped { arrival_ns });
                }
                self.ledger.record(id, DROP_MARK);
            }
        }
    }

    /// Tracks the peak of queued + in-flight requests — the live-state
    /// bound [`LiveStats::peak_inflight`] reports.
    #[inline(always)]
    fn note_live(&mut self, queued: usize) {
        self.peak_inflight = self.peak_inflight.max(queued as u64 + self.inflight_members);
    }

    /// Drains the epoch-window counters, returning
    /// `(arrivals, dropped, completed, slo_violations)`.
    fn take_epoch_counters(&mut self) -> (u64, u64, u64, u64) {
        let c = (self.ep_arrivals, self.ep_dropped, self.ep_completed, self.ep_slo);
        self.ep_arrivals = 0;
        self.ep_dropped = 0;
        self.ep_completed = 0;
        self.ep_slo = 0;
        c
    }
}

/// Fleet state in effect during one epoch, recorded at each boundary
/// where it changed for the report timeline and the static-energy
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EpochFleetState {
    active_shards: usize,
    clock: DvfsPoint,
    /// Σ over active shards of the backend's idle power at `clock`.
    idle_mw: u64,
}

/// Total idle power of the active shards at the given clock, read from
/// the fleet's memoized pricing tables. Clocks only ever come from
/// [`crate::control::ControllerKind::pricing_points`] — the set the
/// tables were built over — so the lookup always hits.
fn fleet_idle_mw(tables: &[CostTable], active: &[bool], clock: DvfsPoint) -> u64 {
    tables
        .iter()
        .zip(active)
        .filter(|(_, a)| **a)
        .map(|(t, _)| t.idle_mw(t.point_index(clock).expect("clock is a pricing point")))
        .sum()
}

/// Runs one request on `backend`: the payload-free fast path for
/// backends that model results from the scenario alone, the
/// materialize-and-run path otherwise.
#[inline(always)]
fn exec_request(
    gen: &RequestGenerator,
    backend: &dyn Backend,
    id: u64,
    scenario: usize,
) -> Result<BackendOutput, ServeError> {
    if backend.payload_free() {
        let wl = gen.scenario(scenario)?;
        backend.run_modeled(scenario, wl, id)
    } else {
        let req = gen.request(id);
        gen.scenario(req.scenario).map_err(ServeError::from).and_then(|wl| backend.run(wl, &req))
    }
}

/// Consumes the pending arrival and primes the next from the lazy
/// stream, returning `(arrival_ns, id)`.
#[inline(always)]
fn next_arrival(events: &mut EventList, stream: &mut ArrivalIter, n_requests: u64) -> (u64, u64) {
    let (t, id) = events.take_arrival().expect("caller checked a pending arrival");
    if id + 1 < n_requests {
        let t_next = stream.next().expect("arrival stream is infinite");
        debug_assert!(t_next >= t, "arrival stream went backwards");
        events.set_arrival(t_next, id + 1);
    }
    (t, id)
}

/// Per-scenario and per-shard scheduling/routing estimates, computed once
/// per run from the backends' analytic models.
struct Estimates {
    /// Fleet-mean service-time estimate per scenario (what queued
    /// requests carry for SJF).
    scenario_cost_ns: Vec<u64>,
    /// Scenario-mean service-time estimate per shard (what routers see).
    shard_cost_ns: Vec<u64>,
    /// Scenario-mean energy estimate per shard (what routers see).
    shard_energy_pj: Vec<u128>,
    /// Scenario-mean prefill-phase estimate per shard
    /// ([`Backend::estimate_prefill_ns`]) — the phase split routers see.
    shard_prefill_ns: Vec<u64>,
    /// Scenario-mean decode-step estimate per shard
    /// ([`Backend::estimate_decode_ns`]).
    shard_decode_ns: Vec<u64>,
}

impl Estimates {
    /// Folds the fleet's memoized nominal pricing rows into the
    /// per-scenario and per-shard means the policies consume. Nominal
    /// table rows are exactly the live estimator outputs, so these are
    /// the same integers as folding the estimators directly — including
    /// the phase split, whose trait contract defines prefill as the full
    /// nominal cost and one decode step as `1/DECODE_COST_DIV` of it
    /// (floored at 1 ns). Folding rows instead of calling the live
    /// estimators keeps backend model evaluation out of the serve path.
    fn from_tables(tables: &[CostTable]) -> Self {
        let n_scen = tables[0].scenarios();
        let scenario_cost_ns = (0..n_scen)
            .map(|s| {
                let sum: u128 = tables.iter().map(|t| t.nominal_cost_row()[s] as u128).sum();
                (sum / tables.len() as u128) as u64
            })
            .collect();
        let shard_cost_ns = tables
            .iter()
            .map(|t| {
                (t.nominal_cost_row().iter().map(|&v| v as u128).sum::<u128>() / n_scen as u128)
                    as u64
            })
            .collect();
        let shard_energy_pj = tables
            .iter()
            .map(|t| t.nominal_energy_row().iter().sum::<u128>() / n_scen as u128)
            .collect();
        let mut shard_prefill_ns = Vec::with_capacity(tables.len());
        let mut shard_decode_ns = Vec::with_capacity(tables.len());
        for t in tables {
            let mut prefill: u128 = 0;
            let mut decode: u128 = 0;
            for &cost in t.nominal_cost_row() {
                prefill += cost as u128;
                decode += (cost / crate::backend::DECODE_COST_DIV).max(1) as u128;
            }
            shard_prefill_ns.push((prefill / n_scen.max(1) as u128) as u64);
            shard_decode_ns.push((decode / n_scen.max(1) as u128) as u64);
        }
        Estimates {
            scenario_cost_ns,
            shard_cost_ns,
            shard_energy_pj,
            shard_prefill_ns,
            shard_decode_ns,
        }
    }
}

/// Display name of a fleet: the single backend name, or the distinct
/// names joined with `+` in shard order.
fn fleet_label(fleet: &[Arc<dyn Backend>]) -> String {
    let mut label = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for b in fleet {
        if !seen.contains(&b.name()) {
            if !seen.is_empty() {
                let _ = write!(label, "+");
            }
            let _ = write!(label, "{}", b.name());
            seen.push(b.name());
        }
    }
    label
}

/// One fully-specified serving run: the fleet plus the operating point.
///
/// This is the single typed entry point of [`ServeRuntime::serve`] —
/// it replaces the positional `run`/`run_fleet` pair, whose argument
/// order carried no types to catch a swap and which could not grow
/// session parameters without breaking every call site.
#[derive(Clone)]
pub struct ServeSpec {
    /// One backend per shard, covering the control ceiling:
    /// `config.control.fleet_size(config.shards)` entries. Shards beyond
    /// `config.shards` start inactive (autoscaling headroom).
    pub fleet: Vec<Arc<dyn Backend>>,
    /// The operating point to serve at.
    pub config: ServeConfig,
}

impl ServeSpec {
    /// A homogeneous fleet: the same backend on every shard, including
    /// any autoscaling headroom up to the control ceiling.
    pub fn homogeneous(backend: &Arc<dyn Backend>, config: &ServeConfig) -> Self {
        let fleet =
            (0..config.control.fleet_size(config.shards)).map(|_| Arc::clone(backend)).collect();
        ServeSpec { fleet, config: config.clone() }
    }

    /// An explicit — possibly heterogeneous — fleet, one backend per
    /// shard (the mixed-fleet mode phase-aware routers exist for).
    pub fn fleet(fleet: Vec<Arc<dyn Backend>>, config: &ServeConfig) -> Self {
        ServeSpec { fleet, config: config.clone() }
    }
}

/// The batched inference runtime: one request generator, one worker pool,
/// any number of [`Self::serve`] calls across backends, fleets and
/// operating points.
///
/// The pool is created once and reused, so a sweep over backends × loads ×
/// batch sizes pays the thread-spawn cost a single time.
///
/// # Example
///
/// ```
/// use defa_model::workload::RequestGenerator;
/// use defa_model::MsdaConfig;
/// use defa_serve::{BackendKind, ServeConfig, ServeRuntime, ServeSpec};
///
/// # fn main() -> Result<(), defa_serve::ServeError> {
/// let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 42)?;
/// let runtime = ServeRuntime::new(gen);
/// let report = runtime.serve(&ServeSpec::homogeneous(
///     &BackendKind::Accelerator.build(),
///     &ServeConfig::at_load(500.0, 8),
/// ))?;
/// assert_eq!(report.completed + report.dropped, 8);
/// # Ok(())
/// # }
/// ```
pub struct ServeRuntime {
    gen: Arc<RequestGenerator>,
    pool: WorkerPool,
}

impl ServeRuntime {
    /// A runtime over `gen` with one pool worker per configured thread
    /// ([`defa_parallel::current_num_threads`]).
    pub fn new(gen: RequestGenerator) -> Self {
        Self::with_pool_threads(gen, defa_parallel::current_num_threads())
    }

    /// A runtime with an explicit pool size.
    pub fn with_pool_threads(gen: RequestGenerator, threads: usize) -> Self {
        ServeRuntime { gen: Arc::new(gen), pool: WorkerPool::new(threads) }
    }

    /// The request generator backing this runtime.
    pub fn generator(&self) -> &RequestGenerator {
        &self.gen
    }

    /// Batch-effective modeled capacity of `shards` shards of `backend`
    /// in requests per virtual second: full `max_batch`-deep batches of
    /// mean-cost requests plus the `overhead_us` dispatch overhead.
    ///
    /// The mean cost is probed deterministically by *running* the first
    /// eight requests of the trace (analytic estimates undershoot the
    /// simulated cycle counts at small scales), so the result is a pure
    /// function of the generator seed — what the trace-driven bench bins
    /// calibrate their offered loads against.
    ///
    /// # Errors
    ///
    /// Propagates backend failures from the probe runs.
    pub fn modeled_capacity_rps(
        &self,
        backend: &Arc<dyn Backend>,
        shards: usize,
        max_batch: usize,
        overhead_us: u64,
    ) -> Result<f64, ServeError> {
        let probes = 8u64;
        let mut total_cost_ns = 0f64;
        for id in 0..probes {
            let scenario = self.gen.request_scenario(id);
            total_cost_ns +=
                exec_request(&self.gen, backend.as_ref(), id, scenario)?.cost_ns as f64;
        }
        let mean_cost_ns = total_cost_ns / probes as f64;
        let batch_ns = overhead_us as f64 * 1e3 + max_batch.max(1) as f64 * mean_cost_ns;
        Ok(max_batch.max(1) as f64 / batch_ns * 1e9 * shards.max(1) as f64)
    }

    /// Serves one fully-specified run ([`ServeSpec`]) and reports
    /// latency, energy and SLO accounting.
    ///
    /// Dispatches on [`crate::config::SessionConfig::enabled`]: a
    /// one-shot session profile (the default) runs the legacy pipelined
    /// engine byte-for-byte, a multi-iteration profile runs the session
    /// engine with iteration-level continuous batching.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DegenerateConfig`] /
    /// [`ServeError::InvalidConfig`] for a bad configuration,
    /// [`ServeError::FleetMismatch`] when the fleet does not cover the
    /// control ceiling (`config.control.fleet_size(config.shards)`
    /// backends), and propagates backend failures.
    pub fn serve(&self, spec: &ServeSpec) -> Result<ServeReport, ServeError> {
        spec.config.validate()?;
        let fleet_size = spec.config.control.fleet_size(spec.config.shards);
        if spec.fleet.len() != fleet_size {
            return Err(ServeError::FleetMismatch { fleet: spec.fleet.len(), shards: fleet_size });
        }
        if spec.config.sessions.enabled() {
            self.serve_sessions(&spec.fleet, &spec.config)
        } else {
            self.serve_oneshot(&spec.fleet, &spec.config)
        }
    }

    /// Serves one trace on a homogeneous fleet.
    ///
    /// # Errors
    ///
    /// As [`Self::serve`].
    #[deprecated(note = "build a `ServeSpec` and call `ServeRuntime::serve`")]
    pub fn run(
        &self,
        backend: &Arc<dyn Backend>,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        self.serve(&ServeSpec::homogeneous(backend, cfg))
    }

    /// Serves one trace on an explicit fleet.
    ///
    /// # Errors
    ///
    /// As [`Self::serve`].
    #[deprecated(note = "build a `ServeSpec` and call `ServeRuntime::serve`")]
    pub fn run_fleet(
        &self,
        fleet: &[Arc<dyn Backend>],
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        self.serve(&ServeSpec::fleet(fleet.to_vec(), cfg))
    }

    /// The legacy pipelined one-shot engine: every request is a session
    /// of exactly one iteration. `serve` validated the config and the
    /// fleet size. All pre-session digest/fingerprint pins ride this
    /// path unchanged.
    fn serve_oneshot(
        &self,
        fleet: &[Arc<dyn Backend>],
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        let fleet_size = fleet.len();
        let scheduler = cfg.scheduler.build();
        let router = cfg.router.build();
        let mut controller: Box<dyn Controller> = cfg.control.controller.build();
        let epoch_ns = cfg.control.epoch_us.saturating_mul(1_000).max(1);
        let n_requests = cfg.n_requests as u64;
        // The arrival trace streams lazily: the event list holds exactly
        // one pending arrival; consuming it pulls the next.
        let mut stream = cfg.arrival.stream(cfg.offered_load, self.gen.seed() ^ ARRIVAL_SALT);
        // Memoize each backend's pricing surface once. The scheduler and
        // router estimates below and the per-epoch idle accounting index
        // these tables instead of re-running analytic estimators; the
        // `cost` property tests pin every entry equal to the live path.
        let points = cfg.control.controller.pricing_points();
        let tables: Vec<CostTable> = fleet
            .iter()
            .map(|b| CostTable::build(b.as_ref(), &self.gen, &points))
            .collect::<Result<_, _>>()?;
        let est = Estimates::from_tables(&tables);
        let deadline_ns = cfg.batch_deadline_us.saturating_mul(1_000);
        let overhead_ns = cfg.batch_overhead_us.saturating_mul(1_000);
        // Payload-free fleets (replay/modeled backends) execute batches
        // inline on the accounting thread: no materialization, no pool
        // round-trip — the fast path trace-scale simulation rides on.
        let inline = fleet.iter().all(|b| b.payload_free());

        let mut state = SimState {
            ledger: OutcomeLedger::new(cfg.outcome_capture),
            timeline: TimelineAcc::new(epoch_ns),
            queue: LatencyHistogram::new(),
            compute: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            completed: 0,
            dropped: 0,
            slo_violations: 0,
            per_shard_completed: vec![0; fleet_size],
            shard_free: vec![0; fleet_size],
            makespan_ns: 0,
            energy: EnergyBreakdown::ZERO,
            dense_flops: 0,
            events: EventList::new(fleet_size),
            inflight_members: 0,
            peak_inflight: 0,
            epochs_stepped: 0,
            epochs_skipped: 0,
            ep_arrivals: 0,
            ep_dropped: 0,
            ep_completed: 0,
            ep_slo: 0,
            obs: Obs::new(&cfg.obs, self.gen.seed(), fleet_size, false),
            scratch_members: Vec::new(),
            scratch_results: Vec::new(),
        };
        let mut queue = AdmissionQueue::new(cfg.queue_capacity, cfg.drop);
        let mut inflight: Vec<Option<Inflight>> = (0..fleet_size).map(|_| None).collect();
        let mut batches = 0u64;
        let mut batched_requests = 0u64;

        // Control-loop state: which shards take new batches, the clock
        // batches dispatch at, and the fleet-state change-points for the
        // timeline. Shards beyond cfg.shards start inactive (autoscaling
        // headroom).
        let mut active: Vec<bool> = (0..fleet_size).map(|s| s < cfg.shards).collect();
        let mut clock = DvfsPoint::NOMINAL;
        let mut epoch_states: Vec<(u64, EpochFleetState)> = vec![(
            0,
            EpochFleetState {
                active_shards: cfg.shards,
                clock,
                idle_mw: fleet_idle_mw(&tables, &active, clock),
            },
        )];
        for (s, _) in active.iter().enumerate().filter(|(_, a)| **a) {
            state.events.activate_shard(s, 0);
        }
        state.events.set_boundary(epoch_ns, 0);
        state.events.set_arrival(stream.next().expect("arrival stream is infinite"), 0);

        let gen = &self.gen;
        let queued = |id: u64, arrival_ns: u64| {
            let scenario = gen.request_scenario(id);
            let slo = gen.request_slo(id);
            QueuedRequest {
                id,
                arrival_ns,
                scenario,
                slo,
                est_cost_ns: est.scenario_cost_ns[scenario],
                deadline_ns: arrival_ns.saturating_add(slo.deadline_ns()),
            }
        };
        // Per-shard static router ratings, computed once; the routable
        // view buffer is rebuilt per dispatch (the active set can change
        // at any boundary) into reused storage.
        let est_batch_ns: Vec<u64> = (0..fleet_size)
            .map(|shard| {
                overhead_ns
                    .saturating_add(est.shard_cost_ns[shard].saturating_mul(cfg.max_batch as u64))
            })
            .collect();
        let mut views: Vec<ShardView> = Vec::with_capacity(fleet_size);

        loop {
            if queue.is_empty() && state.events.arrival().is_none() {
                break;
            }
            // The earliest moment the next batch could start: no sooner
            // than the earliest *active* shard frees and no sooner than
            // work exists to serve. (Under the pipelined round-robin path
            // free times may be stale-low; the bound is still
            // deterministic, which is all the control loop needs.)
            let prof_pop = state.obs.prof_begin();
            let pending = queue
                .front()
                .map(|r| r.arrival_ns)
                .or_else(|| state.events.arrival().map(|(t, _)| t))
                .expect("loop not done: work exists");
            let min_free = state.events.min_active_free().expect("at least one active shard");
            let t_now = min_free.max(pending);
            state.obs.prof_end(ProfSection::EventPop, prof_pop);

            // Settle every epoch boundary the decision time has crossed:
            // snapshot the ended epoch, let the controller act, apply its
            // actions before any further batch forms. Across an idle gap
            // with a quiescent controller the whole run of boundaries
            // fast-forwards in one O(1) skip.
            while let Some((boundary, epoch)) = state.events.boundary_due(t_now) {
                let (arrivals_w, dropped_w, completed_w, slo_w) = state.take_epoch_counters();
                let view = FleetView {
                    epoch,
                    start_ns: boundary - epoch_ns,
                    end_ns: boundary,
                    active_shards: active.iter().filter(|a| **a).count(),
                    max_shards: fleet_size,
                    queue_depth: queue.len(),
                    arrivals: arrivals_w,
                    dropped: dropped_w,
                    completed: completed_w,
                    slo_violations: slo_w,
                    clock,
                };
                let all_quiet = arrivals_w == 0
                    && dropped_w == 0
                    && completed_w == 0
                    && slo_w == 0
                    && queue.is_empty();
                if all_quiet && controller.quiescent(&view) {
                    // Every remaining boundary up to t_now would see a
                    // view identical to this one (up to epoch index and
                    // timestamps): nothing settles or arrives before
                    // t_now, and a quiescent controller's decide is a
                    // no-op on all of them. Skip the whole run.
                    let skipped = (t_now - boundary) / epoch_ns + 1;
                    state.epochs_skipped += skipped;
                    state.events.set_boundary(
                        boundary.saturating_add(epoch_ns.saturating_mul(skipped)),
                        epoch.saturating_add(skipped),
                    );
                    continue;
                }
                let prof_ctl = state.obs.prof_begin();
                for action in controller.decide(&view) {
                    state.obs.on_control(boundary, epoch, &action);
                    match action {
                        ControlAction::AddShard => {
                            if let Some(s) = active.iter().position(|a| !a) {
                                active[s] = true;
                                state.events.activate_shard(s, state.shard_free[s]);
                            }
                        }
                        ControlAction::DrainShard => {
                            let n_active = active.iter().filter(|a| **a).count();
                            if n_active > 1 {
                                if let Some(s) = active.iter().rposition(|a| *a) {
                                    // Drain-before-stop: the shard takes
                                    // no new batches; its in-flight batch
                                    // settles through the normal path.
                                    active[s] = false;
                                    state.events.deactivate_shard(s);
                                }
                            }
                        }
                        ControlAction::SetClock(p) => {
                            debug_assert!(p.freq_mhz > 0 && p.mv > 0, "degenerate clock {p:?}");
                            clock = p;
                        }
                    }
                }
                let st = EpochFleetState {
                    active_shards: active.iter().filter(|a| **a).count(),
                    clock,
                    idle_mw: fleet_idle_mw(&tables, &active, clock),
                };
                if epoch_states.last().map(|(_, prev)| *prev != st).unwrap_or(true) {
                    epoch_states.push((epoch + 1, st));
                }
                state.obs.prof_end(ProfSection::ControllerStep, prof_ctl);
                let inflight_now = state.inflight_members;
                let ev_depth = state.events.depth() as u64;
                let free_ev = state.events.live_shard_events() as u64;
                state.obs.on_epoch(
                    boundary,
                    epoch,
                    st.active_shards,
                    queue.len(),
                    clock,
                    inflight_now,
                    ev_depth,
                    free_ev,
                );
                state.epochs_stepped += 1;
                state.events.set_boundary(boundary.saturating_add(epoch_ns), epoch + 1);
            }

            // Routing over the *active* shards only. Routers that read
            // shard backlogs ask for fleet state: every in-flight batch is
            // settled first so free times are exact. Stateless routers
            // (round-robin) route on possibly stale views and settle only
            // the chosen shard, keeping up to one batch in flight per
            // shard — the PR 2 pipeline.
            let shard = if router.needs_fleet_state() {
                for (s, slot) in inflight.iter_mut().enumerate() {
                    state.settle(s, slot, overhead_ns, fleet[s].as_ref(), active[s])?;
                }
                let min_free = state.events.min_active_free().expect("at least one active shard");
                fill_views(&mut views, &active, &state.shard_free, &est_batch_ns, &est);
                let pos = router.route(batches, min_free.max(pending), &views);
                views[pos].shard
            } else {
                fill_views(&mut views, &active, &state.shard_free, &est_batch_ns, &est);
                let pos = router.route(batches, 0, &views);
                let s = views[pos].shard;
                state.settle(s, &mut inflight[s], overhead_ns, fleet[s].as_ref(), active[s])?;
                s
            };
            debug_assert!(shard < fleet_size, "router returned shard {shard}");
            let t_free = state.shard_free[shard];

            // Admission: everything that arrived while this shard was
            // busy faces the bounded queue and its drop policy.
            let prof_pull = state.obs.prof_begin();
            while state.events.arrival().is_some_and(|(t, _)| t <= t_free) {
                let (t_arr, id) = next_arrival(&mut state.events, &mut stream, n_requests);
                let req = queued(id, t_arr);
                let verdict = queue.offer(req);
                state.record_admission(&req, verdict, queue.len());
            }
            if queue.is_empty() {
                if state.events.arrival().is_none() {
                    state.obs.prof_end(ProfSection::ArrivalPull, prof_pull);
                    continue; // other shards may still be in flight; loop exits above
                }
                // Idle shard: virtually wait for the next arrival (an
                // empty queue always admits).
                let (t_arr, id) = next_arrival(&mut state.events, &mut stream, n_requests);
                let req = queued(id, t_arr);
                let verdict = queue.offer(req);
                state.record_admission(&req, verdict, queue.len());
            }
            // Batching window: wait for a full batch unless the oldest
            // waiting request's deadline fires first.
            let t_deadline = queue.front().expect("queue non-empty").arrival_ns + deadline_ns;
            while queue.len() < cfg.max_batch
                && state.events.arrival().is_some_and(|(t, _)| t <= t_deadline)
            {
                let (t_arr, id) = next_arrival(&mut state.events, &mut stream, n_requests);
                let req = queued(id, t_arr);
                let verdict = queue.offer(req);
                state.record_admission(&req, verdict, queue.len());
            }
            // One live-state probe per pull phase: the queue only grows
            // between dispatches and in-flight membership is constant
            // here, so the end-of-phase depth *is* the phase's maximum —
            // the per-offer probes it replaces measured the same peak.
            state.note_live(queue.len());
            state.obs.prof_end(ProfSection::ArrivalPull, prof_pull);
            // Scheduling: the policy picks who rides this batch, filling
            // a recycled member buffer (no steady-state allocation).
            let prof_dispatch = state.obs.prof_begin();
            let mut members = state.scratch_members.pop().unwrap_or_default();
            scheduler.select_into(&mut queue, cfg.max_batch, t_free, &mut members);
            debug_assert!(!members.is_empty(), "scheduler returned an empty batch");
            let last_arrival = members.iter().map(|m| m.arrival_ns).max().expect("batch non-empty");
            let ready_at = if members.len() >= cfg.max_batch {
                last_arrival // when the filling request arrived
            } else if state.events.arrival().is_some() {
                t_deadline
            } else {
                last_arrival // trace exhausted: flush
            };
            let start_ns = t_free.max(ready_at);
            batched_requests += members.len() as u64;
            state.obs.on_dispatch(start_ns, batches, shard, members.len(), clock);
            for m in &members {
                state.obs.on_scheduled(start_ns, m.id, batches, shard);
            }

            // Real execution. Payload-free fleets evaluate the batch
            // inline; otherwise the batch materializes and runs on this
            // shard's pool worker, results returning over a per-batch
            // channel. Timing comes from the cost model either way, never
            // the wall clock.
            let results = if inline {
                let backend = fleet[shard].as_ref();
                let mut out = state.scratch_results.pop().unwrap_or_default();
                out.extend(members.iter().map(|m| exec_request(gen, backend, m.id, m.scenario)));
                BatchResults::Ready(out)
            } else {
                let (tx, rx) = mpsc::channel();
                let gen = Arc::clone(&self.gen);
                let backend = Arc::clone(&fleet[shard]);
                let work: Vec<(u64, usize)> = members.iter().map(|m| (m.id, m.scenario)).collect();
                self.pool.submit(shard, move || {
                    let results = work
                        .iter()
                        .map(|&(id, sc)| exec_request(&gen, backend.as_ref(), id, sc))
                        .collect();
                    // The receiver disappears only if `run` already
                    // failed; nothing to report to in that case.
                    let _ = tx.send(results);
                });
                BatchResults::Pool(rx)
            };
            state.inflight_members += members.len() as u64;
            state.note_live(queue.len());
            inflight[shard] = Some(Inflight { start_ns, batch: batches, clock, members, results });
            batches += 1;
            state.obs.prof_end(ProfSection::Dispatch, prof_dispatch);
        }
        for (shard, slot) in inflight.iter_mut().enumerate() {
            state.settle(shard, slot, overhead_ns, fleet[shard].as_ref(), active[shard])?;
        }
        // Conservation: every observed arrival was either served or shed.
        // `drop_fraction` divides by this sum, so the invariant is what
        // keeps the reported rate meaningful for partial traces too.
        assert_eq!(
            state.completed + state.dropped,
            n_requests,
            "runtime lost requests: {} completed + {} dropped != {} arrivals",
            state.completed,
            state.dropped,
            n_requests
        );

        let SimState {
            ledger,
            timeline,
            queue: queue_hist,
            compute,
            total,
            completed,
            dropped,
            slo_violations,
            per_shard_completed,
            makespan_ns,
            energy,
            dense_flops,
            events,
            peak_inflight,
            epochs_stepped,
            epochs_skipped,
            obs,
            ..
        } = state;
        let (digest, outcomes, peak_reorder) = ledger.finish(n_requests);
        let timeline = timeline.finalize(makespan_ns, &epoch_states);
        let static_energy_pj = timeline.iter().map(|e| e.static_pj).sum();
        let live = LiveStats {
            peak_inflight,
            peak_events: events.peak_depth() as u64,
            peak_reorder,
            epochs_stepped,
            epochs_skipped,
        };

        // Every request is a single-iteration session: its first token is
        // its only token, so TTFT equals total latency, the TTFT budget
        // equals the class deadline, and no token-to-token gap exists.
        let ttft = total.clone();
        Ok(ServeReport {
            backend: fleet_label(fleet),
            config: cfg.clone(),
            completed,
            dropped,
            slo_violations,
            iterations: completed,
            evictions: 0,
            ttft_violations: slo_violations,
            tbt_violations: 0,
            batches,
            batched_requests,
            queue: queue_hist,
            compute,
            total,
            ttft,
            tbt: LatencyHistogram::new(),
            makespan_ns,
            energy,
            dense_flops,
            digest,
            outcomes,
            per_shard_completed,
            live,
            timeline,
            static_energy_pj,
            obs: obs.finish(),
        })
    }

    /// The session engine: sessions as the unit of serving, with
    /// iteration-level continuous batching.
    ///
    /// Every request id is the *prefill* of a session whose length and
    /// think times are pure functions of `(seed, id)` — see
    /// [`defa_model::workload::SessionProfile`]. Prefills face admission
    /// and the scheduler exactly as legacy requests do; each settled
    /// iteration then schedules the next decode step on the session's
    /// resident shard after its seeded think time, and due decode steps
    /// rejoin that shard's next batch ahead of new prefills (they
    /// already hold state there). A per-shard state budget
    /// ([`crate::config::SessionConfig::state_budget`]) caps resident
    /// sessions; making room evicts the least-recently-settled resident
    /// not riding the forming batch, whose next step then pays a priced
    /// prefill recompute. Gang mode schedules a session as one unit:
    /// its decode steps and think times hold the shard (and its state
    /// slot) from prefill to completion — the baseline continuous
    /// batching is measured against.
    ///
    /// Batches settle synchronously at dispatch (each decode step's
    /// cost derives from its session's settled prefill via
    /// [`Backend::decode_output`]), so free times are always exact and
    /// `batch_deadline_us` never applies: dispatch is greedy, which is
    /// what iteration-level batching means. Fleet controllers are
    /// rejected by validation for now.
    fn serve_sessions(
        &self,
        fleet: &[Arc<dyn Backend>],
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        let fleet_size = fleet.len();
        let scheduler = cfg.scheduler.build();
        let router = cfg.router.build();
        let epoch_ns = cfg.control.epoch_us.saturating_mul(1_000).max(1);
        let n_requests = cfg.n_requests as u64;
        let profile = cfg.sessions.profile;
        let budget = cfg.sessions.state_budget;
        let gang = cfg.sessions.gang;
        let seed = self.gen.seed();
        let mut stream = cfg.arrival.stream(cfg.offered_load, seed ^ ARRIVAL_SALT);
        let points = cfg.control.controller.pricing_points();
        let tables: Vec<CostTable> = fleet
            .iter()
            .map(|b| CostTable::build(b.as_ref(), &self.gen, &points))
            .collect::<Result<_, _>>()?;
        let est = Estimates::from_tables(&tables);
        let overhead_ns = cfg.batch_overhead_us.saturating_mul(1_000);

        let mut state = SimState {
            ledger: OutcomeLedger::new(cfg.outcome_capture),
            timeline: TimelineAcc::new(epoch_ns),
            queue: LatencyHistogram::new(),
            compute: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            completed: 0,
            dropped: 0,
            slo_violations: 0,
            per_shard_completed: vec![0; fleet_size],
            shard_free: vec![0; fleet_size],
            makespan_ns: 0,
            energy: EnergyBreakdown::ZERO,
            dense_flops: 0,
            events: EventList::new(fleet_size),
            inflight_members: 0,
            peak_inflight: 0,
            epochs_stepped: 0,
            epochs_skipped: 0,
            ep_arrivals: 0,
            ep_dropped: 0,
            ep_completed: 0,
            ep_slo: 0,
            obs: Obs::new(&cfg.obs, seed, fleet_size, true),
            scratch_members: Vec::new(),
            scratch_results: Vec::new(),
        };
        let mut queue = AdmissionQueue::new(cfg.queue_capacity, cfg.drop);
        let mut batches = 0u64;
        let mut batched_requests = 0u64;
        let mut ttft_hist = LatencyHistogram::new();
        let mut tbt_hist = LatencyHistogram::new();
        let mut iterations = 0u64;
        let mut evictions = 0u64;
        let mut ttft_violations = 0u64;
        let mut tbt_violations = 0u64;

        // Live session state. Everything iterated on a digest path is a
        // BTree so iteration order is the key order, never hash order.
        let mut sessions: BTreeMap<u64, SessionLive> = BTreeMap::new();
        // Per shard: decode steps whose think time has (or will have)
        // elapsed, keyed `(ready_ns, id)` — the settle order within a
        // batch's decode segment.
        let mut ready: Vec<BTreeSet<(u64, u64)>> =
            (0..fleet_size).map(|_| BTreeSet::new()).collect();
        // Per shard: resident sessions keyed `(last_settle_ns, id)` —
        // eviction order under the state budget.
        let mut lru: Vec<BTreeSet<(u64, u64)>> = (0..fleet_size).map(|_| BTreeSet::new()).collect();
        let mut pending_decodes = 0usize;

        if let Some(t0) = stream.next() {
            state.events.set_arrival(t0, 0);
        }
        let gen = &self.gen;
        let queued = |id: u64, arrival_ns: u64| {
            let scenario = gen.request_scenario(id);
            let slo = gen.request_slo(id);
            QueuedRequest {
                id,
                arrival_ns,
                scenario,
                slo,
                est_cost_ns: est.scenario_cost_ns[scenario],
                deadline_ns: arrival_ns.saturating_add(slo.deadline_ns()),
            }
        };
        let est_batch_ns: Vec<u64> = (0..fleet_size)
            .map(|shard| {
                overhead_ns
                    .saturating_add(est.shard_cost_ns[shard].saturating_mul(cfg.max_batch as u64))
            })
            .collect();
        let all_active: Vec<bool> = vec![true; fleet_size];
        let mut views: Vec<ShardView> = Vec::with_capacity(fleet_size);
        // Distinct sessions per batch: the whole batch becomes resident
        // at settle, so it must itself fit the state budget.
        let cap = if budget > 0 { cfg.max_batch.min(budget) } else { cfg.max_batch };

        loop {
            let have_prefill = !queue.is_empty() || state.events.arrival().is_some();
            if !have_prefill && pending_decodes == 0 {
                break;
            }
            // Earliest decode dispatch over the fleet: each shard's first
            // ready step, bounded below by the shard's free time; ties go
            // to the lower shard.
            let mut decode_at: Option<(u64, usize)> = None;
            for (s, rdy) in ready.iter().enumerate() {
                if let Some(&(rn, _)) = rdy.iter().next() {
                    let t = rn.max(state.shard_free[s]);
                    let better = match decode_at {
                        None => true,
                        Some((bt, _)) => t < bt,
                    };
                    if better {
                        decode_at = Some((t, s));
                    }
                }
            }
            // Earliest prefill dispatch: pending work bounded below by
            // the earliest free shard (the router picks the shard).
            let prefill_at = if have_prefill {
                let pending = queue
                    .front()
                    .map(|r| r.arrival_ns)
                    .or_else(|| state.events.arrival().map(|(t, _)| t))
                    .unwrap_or(0);
                let min_free = state.shard_free.iter().copied().min().unwrap_or(0);
                Some(min_free.max(pending))
            } else {
                None
            };
            // A due decode step wins ties: the resident session continues
            // before new work claims the shard.
            let (t_start, shard) = match (decode_at, prefill_at) {
                (Some((td, s)), Some(tp)) if td <= tp => (td, s),
                (Some((td, s)), None) => (td, s),
                (None, Some(tp)) | (Some(_), Some(tp)) => {
                    fill_views(&mut views, &all_active, &state.shard_free, &est_batch_ns, &est);
                    let pos = router.route(batches, tp, &views);
                    let s = views[pos].shard;
                    (tp.max(state.shard_free[s]), s)
                }
                (None, None) => break,
            };

            // Admission: everything that arrived by the batch start faces
            // the bounded queue and its drop policy.
            while state.events.arrival().is_some_and(|(t, _)| t <= t_start) {
                let (t_arr, id) = next_arrival(&mut state.events, &mut stream, n_requests);
                let req = queued(id, t_arr);
                let verdict = queue.offer(req);
                state.record_admission(&req, verdict, queue.len());
            }

            // Batch formation: due decode steps of this shard first, in
            // `(ready_ns, id)` order — they already hold state here —
            // then prefills admitted by the scheduler into the remaining
            // slots (iteration-level continuous batching).
            let mut decode_members: Vec<(u64, u64)> = Vec::new();
            while decode_members.len() < cap {
                let due = ready[shard].iter().next().copied().filter(|&(rn, _)| rn <= t_start);
                let Some((rn, id)) = due else { break };
                ready[shard].remove(&(rn, id));
                pending_decodes -= 1;
                decode_members.push((rn, id));
            }
            let mut members = state.scratch_members.pop().unwrap_or_default();
            let slots = cap.saturating_sub(decode_members.len());
            if slots > 0 && !queue.is_empty() {
                scheduler.admit_into(&mut queue, slots, t_start, &mut members);
            }
            if decode_members.is_empty() && members.is_empty() {
                // Nothing dispatchable this instant (every arrival up to
                // t_start was dropped); recycle and re-evaluate.
                state.scratch_members.push(members);
                continue;
            }

            // State budget: the batch's sessions stay resident through
            // the step; evict the least-recently-settled residents not
            // riding this batch until everyone fits.
            if !gang && budget > 0 {
                let mut batch_ids: BTreeSet<u64> = BTreeSet::new();
                for &(_, id) in &decode_members {
                    batch_ids.insert(id);
                }
                for m in &members {
                    batch_ids.insert(m.id);
                }
                let newcomers = members.len()
                    + decode_members
                        .iter()
                        .filter(|&&(_, id)| sessions.get(&id).is_some_and(|s| !s.resident))
                        .count();
                let excess = (lru[shard].len() + newcomers).saturating_sub(budget);
                if excess > 0 {
                    let victims: Vec<(u64, u64)> = lru[shard]
                        .iter()
                        .filter(|&&(_, id)| !batch_ids.contains(&id))
                        .take(excess)
                        .copied()
                        .collect();
                    for (ls, id) in victims {
                        lru[shard].remove(&(ls, id));
                        if let Some(sess) = sessions.get_mut(&id) {
                            sess.resident = false;
                            sess.needs_prefill = true;
                        }
                        evictions += 1;
                        state.obs.on_evicted(t_start, id);
                    }
                }
            }

            let size = decode_members.len() + members.len();
            batched_requests += size as u64;
            state.obs.on_dispatch(t_start, batches, shard, size, DvfsPoint::NOMINAL);
            for &(_, id) in &decode_members {
                state.obs.on_scheduled(t_start, id, batches, shard);
            }
            for m in &members {
                state.obs.on_scheduled(t_start, m.id, batches, shard);
            }
            state.note_live(queue.len() + sessions.len());

            // Per-iteration settle path: synchronous, in batch order.
            let backend = fleet[shard].as_ref();
            let mut t = t_start + overhead_ns;
            for &(rn, id) in &decode_members {
                iterations += 1;
                state.obs.on_iteration();
                let mut finished = false;
                if let Some(sess) = sessions.get_mut(&id) {
                    let out = backend.decode_output(&sess.prefill, sess.next_iter as u64);
                    let recompute = sess.needs_prefill;
                    t += out.cost_ns;
                    let mut step_energy = out.energy;
                    let mut step_flops = out.dense_flops as u128;
                    if recompute {
                        // The evicted state rebuilds: this step pays the
                        // prefill again in time, energy and FLOPs (the
                        // response bits are unchanged — recompute is
                        // deterministic).
                        t += sess.prefill.cost_ns;
                        step_energy += sess.prefill.energy;
                        step_flops += sess.prefill.dense_flops as u128;
                    }
                    let tbt = t - rn;
                    tbt_hist.record(tbt);
                    if tbt > sess.slo.streaming_budgets().tbt_ns {
                        tbt_violations += 1;
                        sess.violated = true;
                    }
                    state.compute.record(t - t_start);
                    sess.digest = crate::backend::fnv_fold(sess.digest, out.digest);
                    sess.energy += step_energy;
                    sess.flops += step_flops;
                    sess.needs_prefill = false;
                    if sess.resident {
                        lru[shard].remove(&(sess.last_settle_ns, id));
                    }
                    sess.last_settle_ns = t;
                    sess.resident = true;
                    lru[shard].insert((t, id));
                    sess.next_iter += 1;
                    state.obs.on_settle(
                        t,
                        id,
                        shard,
                        batches,
                        tbt,
                        t - t_start,
                        sess.violated,
                        step_energy.total_pj(),
                    );
                    finished = sess.next_iter >= sess.len;
                    if !finished {
                        let think = profile.think_ns(seed, id, sess.next_iter);
                        ready[shard].insert((t.saturating_add(think), id));
                        pending_decodes += 1;
                    }
                }
                if finished {
                    if let Some(sess) = sessions.remove(&id) {
                        lru[shard].remove(&(sess.last_settle_ns, id));
                        finalize_session(&mut state, shard, batches, id, t, &sess);
                    }
                }
            }
            let mut results = state.scratch_results.pop().unwrap_or_default();
            results.extend(members.iter().map(|m| exec_request(gen, backend, m.id, m.scenario)));
            for (m, res) in members.iter().zip(results.drain(..)) {
                iterations += 1;
                state.obs.on_iteration();
                let out = res?;
                t += out.cost_ns;
                let queue_ns = t_start - m.arrival_ns;
                let ttft = t - m.arrival_ns;
                state.queue.record(queue_ns);
                state.compute.record(t - t_start);
                ttft_hist.record(ttft);
                let budgets = m.slo.streaming_budgets();
                let ttft_violated = ttft > budgets.ttft_ns;
                if ttft_violated {
                    ttft_violations += 1;
                }
                state.obs.on_settle(
                    t,
                    m.id,
                    shard,
                    batches,
                    queue_ns,
                    t - t_start,
                    ttft_violated,
                    out.energy.total_pj(),
                );
                let len = profile.session_len(seed, m.id);
                if gang {
                    // Gang scheduling: the session holds its batch slot
                    // from prefill to completion; decode steps and think
                    // times serialize on the shard.
                    let mut digest = if len <= 1 {
                        out.digest
                    } else {
                        crate::backend::fnv_fold(crate::backend::FNV_OFFSET, out.digest)
                    };
                    let mut energy = out.energy;
                    let mut flops = out.dense_flops as u128;
                    let mut violated = ttft_violated;
                    for iter in 1..len {
                        iterations += 1;
                        state.obs.on_iteration();
                        let rn = t.saturating_add(profile.think_ns(seed, m.id, iter));
                        t = rn;
                        let dout = backend.decode_output(&out, iter as u64);
                        t += dout.cost_ns;
                        let tbt = t - rn;
                        tbt_hist.record(tbt);
                        if tbt > budgets.tbt_ns {
                            tbt_violations += 1;
                            violated = true;
                        }
                        state.compute.record(t - t_start);
                        digest = crate::backend::fnv_fold(digest, dout.digest);
                        energy += dout.energy;
                        flops += dout.dense_flops as u128;
                        state.obs.on_settle(
                            t,
                            m.id,
                            shard,
                            batches,
                            tbt,
                            t - t_start,
                            violated,
                            dout.energy.total_pj(),
                        );
                    }
                    let sess = SessionLive {
                        scenario: m.scenario,
                        slo: m.slo,
                        arrival_ns: m.arrival_ns,
                        len,
                        next_iter: len,
                        prefill: out,
                        needs_prefill: false,
                        resident: false,
                        last_settle_ns: t,
                        digest,
                        energy,
                        flops,
                        queue_ns,
                        violated,
                    };
                    finalize_session(&mut state, shard, batches, m.id, t, &sess);
                } else if len <= 1 {
                    // A single-iteration session is exactly a legacy
                    // request: digest word `d0`, total == TTFT.
                    let sess = SessionLive {
                        scenario: m.scenario,
                        slo: m.slo,
                        arrival_ns: m.arrival_ns,
                        len: 1,
                        next_iter: 1,
                        digest: out.digest,
                        energy: out.energy,
                        flops: out.dense_flops as u128,
                        prefill: out,
                        needs_prefill: false,
                        resident: false,
                        last_settle_ns: t,
                        queue_ns,
                        violated: ttft_violated,
                    };
                    finalize_session(&mut state, shard, batches, m.id, t, &sess);
                } else {
                    let think = profile.think_ns(seed, m.id, 1);
                    ready[shard].insert((t.saturating_add(think), m.id));
                    pending_decodes += 1;
                    lru[shard].insert((t, m.id));
                    sessions.insert(
                        m.id,
                        SessionLive {
                            scenario: m.scenario,
                            slo: m.slo,
                            arrival_ns: m.arrival_ns,
                            len,
                            next_iter: 1,
                            digest: crate::backend::fnv_fold(
                                crate::backend::FNV_OFFSET,
                                out.digest,
                            ),
                            energy: out.energy,
                            flops: out.dense_flops as u128,
                            prefill: out,
                            needs_prefill: false,
                            resident: true,
                            last_settle_ns: t,
                            queue_ns,
                            violated: ttft_violated,
                        },
                    );
                }
            }
            state.scratch_results.push(results);
            members.clear();
            state.scratch_members.push(members);
            state.shard_free[shard] = t;
            state.makespan_ns = state.makespan_ns.max(t);
            batches += 1;
        }
        debug_assert!(sessions.is_empty(), "sessions left live: {}", sessions.len());
        debug_assert_eq!(
            state.completed + state.dropped,
            n_requests,
            "session engine lost requests"
        );

        let SimState {
            ledger,
            timeline,
            queue: queue_hist,
            compute,
            total,
            completed,
            dropped,
            slo_violations,
            per_shard_completed,
            makespan_ns,
            energy,
            dense_flops,
            events,
            peak_inflight,
            obs,
            ..
        } = state;
        let (digest, outcomes, peak_reorder) = ledger.finish(n_requests);
        let clock = DvfsPoint::NOMINAL;
        let epoch_states = vec![(
            0,
            EpochFleetState {
                active_shards: cfg.shards,
                clock,
                idle_mw: fleet_idle_mw(&tables, &all_active, clock),
            },
        )];
        let timeline = timeline.finalize(makespan_ns, &epoch_states);
        let static_energy_pj = timeline.iter().map(|e| e.static_pj).sum();
        let live = LiveStats {
            peak_inflight,
            peak_events: events.peak_depth() as u64,
            peak_reorder,
            // The session engine runs no control loop: no boundary is
            // ever stepped or skipped.
            epochs_stepped: 0,
            epochs_skipped: 0,
        };

        Ok(ServeReport {
            backend: fleet_label(fleet),
            config: cfg.clone(),
            completed,
            dropped,
            slo_violations,
            iterations,
            evictions,
            ttft_violations,
            tbt_violations,
            batches,
            batched_requests,
            queue: queue_hist,
            compute,
            total,
            ttft: ttft_hist,
            tbt: tbt_hist,
            makespan_ns,
            energy,
            dense_flops,
            digest,
            outcomes,
            per_shard_completed,
            live,
            timeline,
            static_energy_pj,
            obs: obs.finish(),
        })
    }
}

/// One session mid-flight in the session engine: its static draw, the
/// settled prefill output (the pricing base for every decode step), and
/// the accumulators its final settle folds into the report.
struct SessionLive {
    scenario: usize,
    slo: SloClass,
    arrival_ns: u64,
    /// Total iterations ([`defa_model::workload::SessionProfile::session_len`]).
    len: u32,
    /// The next iteration to settle (0 is the prefill).
    next_iter: u32,
    /// The settled prefill output: decode steps derive from it, and a
    /// post-eviction recompute re-prices it.
    prefill: BackendOutput,
    /// Evicted since the last step: the next step pays the prefill again.
    needs_prefill: bool,
    /// Holds a state slot on its shard (tracked in the shard's LRU set).
    resident: bool,
    last_settle_ns: u64,
    /// FNV fold over the iteration digests (the raw prefill digest for a
    /// single-iteration session, matching the legacy engine's word).
    digest: u64,
    energy: EnergyBreakdown,
    flops: u128,
    /// Prefill admission wait (first batch start − arrival).
    queue_ns: u64,
    /// Blew its TTFT budget or any decode step blew its TBT budget.
    violated: bool,
}

/// Folds a finished session into the report accumulators: one ledger
/// word, one completion, one total-latency sample — sessions, not
/// iterations, are the unit every aggregate counts.
fn finalize_session(
    state: &mut SimState,
    shard: usize,
    batch: u64,
    id: u64,
    t: u64,
    sess: &SessionLive,
) {
    let total_ns = t.saturating_sub(sess.arrival_ns);
    state.total.record(total_ns);
    state.completed += 1;
    state.ep_completed += 1;
    state.per_shard_completed[shard] += 1;
    if sess.violated {
        state.slo_violations += 1;
        state.ep_slo += 1;
    }
    state.energy += sess.energy;
    state.dense_flops += sess.flops;
    if state.ledger.captures(id) {
        state.ledger.capture(
            id,
            RequestOutcome::Completed {
                scenario: sess.scenario,
                slo: sess.slo,
                arrival_ns: sess.arrival_ns,
                digest: sess.digest,
                shard,
                batch,
                queue_ns: sess.queue_ns,
                // Everything after admission — compute, think times,
                // per-step waits — so queue + compute spans the session.
                compute_ns: total_ns.saturating_sub(sess.queue_ns),
                energy: sess.energy,
            },
        );
    }
    state.timeline.arrival(sess.arrival_ns);
    state.timeline.completion(t, sess.energy, sess.violated);
    state.ledger.record(id, sess.digest);
}

/// Rebuilds the routable shard views — one per *active* shard, in shard
/// order — into the reused `views` buffer.
#[inline(always)]
fn fill_views(
    views: &mut Vec<ShardView>,
    active: &[bool],
    shard_free: &[u64],
    est_batch_ns: &[u64],
    est: &Estimates,
) {
    views.clear();
    for (shard, _) in active.iter().enumerate().filter(|(_, a)| **a) {
        views.push(ShardView {
            shard,
            free_ns: shard_free[shard],
            est_batch_ns: est_batch_ns[shard],
            est_energy_pj: est.shard_energy_pj[shard],
            est_prefill_ns: est.shard_prefill_ns[shard],
            est_decode_ns: est.shard_decode_ns[shard],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DropPolicy;
    use crate::backend::BackendKind;
    use crate::loadgen::ArrivalProcess;
    use crate::router::RouterKind;
    use crate::scheduler::SchedulerKind;
    use defa_model::MsdaConfig;

    fn runtime() -> ServeRuntime {
        ServeRuntime::new(RequestGenerator::standard(&MsdaConfig::tiny(), 42).unwrap())
    }

    fn serve(
        rt: &ServeRuntime,
        backend: &Arc<dyn Backend>,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        rt.serve(&ServeSpec::homogeneous(backend, cfg))
    }

    fn serve_fleet(
        rt: &ServeRuntime,
        fleet: Vec<Arc<dyn Backend>>,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        rt.serve(&ServeSpec::fleet(fleet, cfg))
    }

    /// A session profile that exercises the session engine: short
    /// multi-iteration sessions with sub-epoch think times.
    fn chatty(cfg: &ServeConfig) -> ServeConfig {
        ServeConfig {
            sessions: crate::config::SessionConfig {
                profile: defa_model::workload::SessionProfile {
                    min_len: 2,
                    max_len: 5,
                    think_mean_us: 200,
                },
                state_budget: 0,
                gang: false,
            },
            ..cfg.clone()
        }
    }

    #[test]
    fn every_request_is_accounted_for() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(2_000.0, 24);
        let report = serve(&rt, &BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.completed + report.dropped, 24);
        assert_eq!(report.outcomes.len(), 24);
        assert_eq!(report.total.count(), report.completed);
        assert!(report.makespan_ns > 0);
        assert!(report.batches > 0);
        assert!(report.mean_batch_size() >= 1.0);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(1_000.0, 16);
        let backend = BackendKind::Pruned.build();
        let a = serve(&rt, &backend, &cfg).unwrap();
        let b = serve(&rt, &backend, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn overload_triggers_backpressure_drops() {
        let rt = runtime();
        // A tiny queue, one shard and a huge offered load must shed.
        let cfg = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let report = serve(&rt, &BackendKind::Dense.build(), &cfg).unwrap();
        assert!(report.dropped > 0, "expected drops under overload");
        assert_eq!(report.completed + report.dropped, 64);
        // Drops are outcomes too.
        let drops =
            report.outcomes.iter().filter(|o| matches!(o, RequestOutcome::Dropped { .. })).count()
                as u64;
        assert_eq!(drops, report.dropped);
    }

    #[test]
    fn evict_oldest_sheds_the_stalest_work() {
        let rt = runtime();
        let base = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let reject = serve(&rt, &BackendKind::Dense.build(), &base).unwrap();
        let evict = serve(
            &rt,
            &BackendKind::Dense.build(),
            &ServeConfig { drop: DropPolicy::EvictOldest, ..base.clone() },
        )
        .unwrap();
        assert!(evict.dropped > 0);
        assert_eq!(evict.completed + evict.dropped, 64);
        // Same load, same shedding volume — only *who* is shed differs:
        // eviction keeps later arrivals, so the set of completed ids skews
        // later than under tail drop.
        let mean_completed_id = |r: &ServeReport| {
            let ids: Vec<u64> = r
                .outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, RequestOutcome::Completed { .. }))
                .map(|(id, _)| id as u64)
                .collect();
            ids.iter().sum::<u64>() as f64 / ids.len() as f64
        };
        assert!(
            mean_completed_id(&evict) > mean_completed_id(&reject),
            "eviction must favour fresher requests ({} vs {})",
            mean_completed_id(&evict),
            mean_completed_id(&reject)
        );
    }

    #[test]
    fn low_load_produces_partial_deadline_batches() {
        let rt = runtime();
        // Offered load far below service rate: batches go out on the
        // deadline with few requests each.
        let cfg =
            ServeConfig { max_batch: 8, batch_deadline_us: 100, ..ServeConfig::at_load(50.0, 12) };
        let report = serve(&rt, &BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.dropped, 0);
        assert!(
            report.mean_batch_size() < 4.0,
            "deadline batching should stay small at low load, got {}",
            report.mean_batch_size()
        );
    }

    #[test]
    fn deeper_batches_amortize_dispatch_overhead() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let base = ServeConfig {
            shards: 1,
            batch_overhead_us: 500,
            batch_deadline_us: 10_000,
            queue_capacity: 256,
            ..ServeConfig::at_load(4_000.0, 32)
        };
        let singles = serve(&rt, &backend, &ServeConfig { max_batch: 1, ..base.clone() }).unwrap();
        let batched = serve(&rt, &backend, &ServeConfig { max_batch: 16, ..base.clone() }).unwrap();
        assert_eq!(singles.dropped, 0);
        assert_eq!(batched.dropped, 0);
        assert!(
            batched.makespan_ns < singles.makespan_ns,
            "batching must amortize overhead: {} vs {}",
            batched.makespan_ns,
            singles.makespan_ns
        );
    }

    #[test]
    fn energy_totals_equal_the_sum_of_per_request_attributions() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(2_000.0, 20);
        for kind in BackendKind::all() {
            let report = serve(&rt, &kind.build(), &cfg).unwrap();
            let mut sum = EnergyBreakdown::ZERO;
            for o in &report.outcomes {
                if let RequestOutcome::Completed { energy, .. } = o {
                    sum += *energy;
                }
            }
            assert_eq!(sum, report.energy, "{} energy totals disagree", kind.name());
            assert!(report.energy.total_pj() > 0);
            assert!(report.joules_per_request() > 0.0);
            assert!(report.requests_per_joule() > 0.0);
            assert!(report.average_power_w() > 0.0);
            assert!(report.gops_per_watt() > 0.0);
            assert!(report.dense_flops > 0);
        }
    }

    #[test]
    fn energy_per_request_is_load_invariant() {
        // Energy is a property of the request, not of the schedule: two
        // very different load points must attribute identical totals when
        // they serve the same (complete) trace.
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let low = serve(&rt, &backend, &ServeConfig::at_load(300.0, 12)).unwrap();
        let high = serve(&rt, &backend, &ServeConfig::at_load(30_000.0, 12)).unwrap();
        assert_eq!(low.dropped, 0);
        assert_eq!(high.dropped, 0);
        assert_eq!(low.energy, high.energy);
        assert_eq!(low.dense_flops, high.dense_flops);
    }

    #[test]
    fn drop_fraction_divides_by_observed_arrivals() {
        let rt = runtime();
        let cfg = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let report = serve(&rt, &BackendKind::Dense.build(), &cfg).unwrap();
        assert!(report.dropped > 0);
        let arrivals = report.completed + report.dropped;
        assert_eq!(arrivals, 64, "full trace: arrivals match the config");
        assert!((report.drop_fraction() - report.dropped as f64 / arrivals as f64).abs() < 1e-12);
        assert!(report.drop_fraction() > 0.0 && report.drop_fraction() < 1.0);
        // A drop-free run reports zero.
        let calm =
            serve(&rt, &BackendKind::Dense.build(), &ServeConfig::at_load(100.0, 4)).unwrap();
        assert_eq!(calm.dropped, 0);
        assert_eq!(calm.drop_fraction(), 0.0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let rt = runtime();
        let backend = BackendKind::Dense.build();
        for cfg in [
            ServeConfig { offered_load: 0.0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { n_requests: 0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { shards: 0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { batch_deadline_us: 0, ..ServeConfig::at_load(1.0, 1) },
        ] {
            assert!(matches!(serve(&rt, &backend, &cfg), Err(ServeError::DegenerateConfig { .. })));
        }
        let cross =
            ServeConfig { max_batch: 100, queue_capacity: 10, ..ServeConfig::at_load(1.0, 1) };
        assert!(matches!(serve(&rt, &backend, &cross), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn fleets_must_match_the_shard_count() {
        let rt = runtime();
        let fleet = BackendKind::build_fleet(&[BackendKind::Dense]);
        let cfg = ServeConfig { shards: 2, ..ServeConfig::at_load(500.0, 4) };
        assert!(matches!(
            serve_fleet(&rt, fleet, &cfg),
            Err(ServeError::FleetMismatch { fleet: 1, shards: 2 })
        ));
    }

    #[test]
    fn heterogeneous_fleets_attribute_work_per_shard() {
        let rt = runtime();
        let fleet = BackendKind::build_fleet(&[BackendKind::Dense, BackendKind::Accelerator]);
        let cfg = ServeConfig {
            shards: 2,
            router: RouterKind::EnergyAware,
            ..ServeConfig::at_load(2_000.0, 16)
        };
        let report = serve_fleet(&rt, fleet, &cfg).unwrap();
        assert_eq!(report.backend, "dense+defa-accel");
        assert_eq!(report.completed + report.dropped, 16);
        let per_shard = report.completed_per_shard();
        assert_eq!(per_shard.iter().sum::<u64>(), report.completed);
        // Energy-aware routing must drain most work through the
        // accelerator shard (index 1), whose energy rating is ~2000x
        // lower.
        assert!(
            per_shard[1] > per_shard[0],
            "energy-aware routing sent {per_shard:?} to [dense, accel]"
        );
    }

    #[test]
    fn policy_layers_compose_without_losing_requests() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        for arrival in
            [ArrivalProcess::Poisson, ArrivalProcess::bursty_default(), ArrivalProcess::Uniform]
        {
            for scheduler in SchedulerKind::all() {
                for router in RouterKind::all() {
                    let cfg = ServeConfig {
                        arrival: arrival.clone(),
                        scheduler,
                        router,
                        ..ServeConfig::at_load(4_000.0, 12)
                    };
                    let report = serve(&rt, &backend, &cfg).unwrap();
                    assert_eq!(
                        report.completed + report.dropped,
                        12,
                        "{}/{}/{} lost requests",
                        arrival.label(),
                        scheduler.name(),
                        router.name()
                    );
                }
            }
        }
    }

    #[test]
    fn outcome_capture_caps_the_debug_record_without_touching_aggregates() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let cfg = ServeConfig::at_load(2_000.0, 16);
        let full = serve(&rt, &backend, &cfg).unwrap();
        let capped =
            serve(&rt, &backend, &ServeConfig { outcome_capture: 4, ..cfg.clone() }).unwrap();
        // The capture is a strict prefix of the full record; every
        // aggregate — digest included — is computed from all requests
        // either way.
        assert_eq!(full.outcomes.len(), 16);
        assert_eq!(capped.outcomes.len(), 4);
        assert_eq!(&full.outcomes[..4], &capped.outcomes[..]);
        assert_eq!(full.digest, capped.digest);
        assert_eq!(full.completed, capped.completed);
        assert_eq!(full.energy, capped.energy);
        assert_eq!(full.timeline, capped.timeline);
        assert_eq!(full.live, capped.live);
        // Live-state accounting is populated.
        assert!(capped.live.peak_inflight > 0);
        assert!(capped.live.peak_events > 0);
        assert!(capped.live.peak_reorder > 0);
        assert!(capped.live.epochs_stepped + capped.live.epochs_skipped > 0);
        // And zero capture means zero retained outcomes.
        let none = serve(&rt, &backend, &ServeConfig { outcome_capture: 0, ..cfg }).unwrap();
        assert!(none.outcomes.is_empty());
        assert_eq!(none.digest, full.digest);
    }

    #[test]
    fn display_covers_the_key_lines() {
        let rt = runtime();
        let report =
            serve(&rt, &BackendKind::Accelerator.build(), &ServeConfig::at_load(500.0, 8)).unwrap();
        let s = report.to_string();
        for key in
            ["serve report", "offered", "policy", "served", "throughput", "total", "p99", "fifo"]
        {
            assert!(s.contains(key), "missing {key} in:\n{s}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_spec_entry_point() {
        let rt = runtime();
        let backend = BackendKind::Pruned.build();
        let cfg = ServeConfig::at_load(1_500.0, 12);
        let via_spec = serve(&rt, &backend, &cfg).unwrap();
        assert_eq!(rt.run(&backend, &cfg).unwrap(), via_spec);
        let fleet = vec![Arc::clone(&backend)];
        let one = ServeConfig { shards: 1, ..cfg };
        assert_eq!(rt.run_fleet(&fleet, &one).unwrap(), serve_fleet(&rt, fleet, &one).unwrap());
    }

    #[test]
    fn legacy_reports_mirror_streaming_fields() {
        // Under the one-shot profile the streaming view degenerates:
        // every request is one iteration, TTFT is the total latency.
        let rt = runtime();
        let report =
            serve(&rt, &BackendKind::Accelerator.build(), &ServeConfig::at_load(2_000.0, 16))
                .unwrap();
        assert_eq!(report.iterations, report.completed);
        assert_eq!(report.evictions, 0);
        assert_eq!(report.ttft, report.total);
        assert_eq!(report.tbt.count(), 0);
        assert_eq!(report.ttft_violations, report.slo_violations);
        assert_eq!(report.tbt_violations, 0);
    }

    #[test]
    fn sessions_conserve_requests_and_count_iterations() {
        let rt = runtime();
        let cfg = chatty(&ServeConfig::at_load(1_000.0, 16));
        let report = serve(&rt, &BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.completed + report.dropped, 16);
        assert_eq!(report.outcomes.len(), 16);
        // Sessions, not iterations, are the unit of completion...
        assert_eq!(report.total.count(), report.completed);
        assert_eq!(report.ttft.count(), report.completed);
        // ...but every decode step is accounted: min_len 2 guarantees
        // strictly more iterations than sessions.
        assert!(report.iterations > report.completed);
        assert_eq!(report.tbt.count(), report.iterations - report.completed);
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn session_runs_are_byte_identical() {
        let rt = runtime();
        let cfg = chatty(&ServeConfig::at_load(2_000.0, 16));
        let backend = BackendKind::Pruned.build();
        let a = serve(&rt, &backend, &cfg).unwrap();
        let b = serve(&rt, &backend, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gang_and_continuous_agree_on_response_bits() {
        // Scheduling differs, bits do not: both engines fold the same
        // per-iteration digests, so at drop-free load the ledgers match.
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let cfg = chatty(&ServeConfig::at_load(400.0, 12));
        let cont = serve(&rt, &backend, &cfg).unwrap();
        let gang = serve(
            &rt,
            &backend,
            &ServeConfig {
                sessions: crate::config::SessionConfig { gang: true, ..cfg.sessions },
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_eq!(cont.dropped, 0);
        assert_eq!(gang.dropped, 0);
        assert_eq!(cont.digest, gang.digest);
        assert_eq!(cont.energy, gang.energy);
        assert_eq!(cont.iterations, gang.iterations);
        assert_eq!(gang.evictions, 0, "gang sessions never release state mid-flight");
    }

    #[test]
    fn state_budget_forces_deterministic_evictions() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let base =
            chatty(&ServeConfig { shards: 1, max_batch: 4, ..ServeConfig::at_load(8_000.0, 24) });
        let unconstrained = serve(&rt, &backend, &base).unwrap();
        assert_eq!(unconstrained.evictions, 0);
        let tight = ServeConfig {
            sessions: crate::config::SessionConfig { state_budget: 2, ..base.sessions },
            ..base.clone()
        };
        let constrained = serve(&rt, &backend, &tight).unwrap();
        assert!(
            constrained.evictions > 0,
            "a 2-session budget under 24 overlapping sessions must evict"
        );
        // Recompute is deterministic: response bits survive eviction,
        // while the re-run prefills cost extra energy and FLOPs.
        if constrained.dropped == unconstrained.dropped {
            assert_eq!(constrained.digest, unconstrained.digest);
        }
        assert!(constrained.energy.total_pj() >= unconstrained.energy.total_pj());
        let b = serve(&rt, &backend, &tight).unwrap();
        assert_eq!(constrained, b, "evictions are part of the deterministic schedule");
    }
}
