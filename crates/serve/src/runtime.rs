//! The serving runtime: the virtual-time event loop that composes the
//! policy layers.
//!
//! # Execution model
//!
//! The runtime separates *what* is computed from *when* it is deemed to
//! happen:
//!
//! * **Real execution** — every admitted request is materialized from the
//!   seeded [`RequestGenerator`] and evaluated by its shard's backend on a
//!   long-lived [`WorkerPool`] worker. Requests are independent, so
//!   per-request results are bit-identical regardless of batch
//!   composition, shard count or thread count. Pool workers are
//!   persistent threads, so the thread-local [`defa_tensor::Scratch`]
//!   arenas inside the GEMM kernels act as per-shard arenas: after the
//!   first batch warms the high-water mark, steady-state serving performs
//!   no packing allocations.
//!
//! * **Virtual-time accounting** — arrivals, queueing, batching triggers
//!   and service times are tracked on an integer virtual clock driven by
//!   the seeded load generator and the backends' deterministic cost
//!   models. Latency numbers therefore never observe wall-clock jitter:
//!   the full [`ServeReport`] — per-request outcomes, histogram buckets,
//!   quantiles — is byte-identical for any `RAYON_NUM_THREADS`, pinned by
//!   `tests/tests/serving.rs`.
//!
//! # The policy layers
//!
//! Each decision the loop takes is delegated to a layer behind a trait,
//! configured per [`ServeConfig`]:
//!
//! ```text
//!  ArrivalProcess ─> AdmissionQueue ─> Scheduler ─> Router ─> fleet ─> report
//!  (when requests    (who may wait;    (who rides   (which     (which
//!   arrive)           who is dropped)   the batch)   shard)     backend)
//! ```
//!
//! The loop itself owns only the *timing* rules, identical for every
//! policy: a batch launches when [`ServeConfig::max_batch`] requests are
//! waiting or the oldest waiting request has aged past
//! [`ServeConfig::batch_deadline_us`]; the chosen shard serves it
//! sequentially after a fixed dispatch overhead. With the default
//! policies (Poisson, tail drop, FIFO, round-robin) the loop replays the
//! PR 2 runtime decision-for-decision — the byte-compat test pins it.
//!
//! # The control loop
//!
//! On top of the per-batch policies sits the per-epoch control loop
//! ([`crate::control`]): virtual time is divided into
//! [`crate::config::ControlConfig::epoch_us`] epochs, and before each
//! routing decision the loop settles every boundary the decision time has
//! crossed — handing the [`Controller`] a [`FleetView`] of the epoch that
//! ended and applying its actions (activate a shard, drain a shard, step
//! the DVFS clock) before any further batch forms. Draining is
//! *drain-before-stop*: a drained shard takes no new batches but its
//! in-flight batch settles through the normal path, so conservation and
//! byte-determinism survive every resize. Batches carry the clock they
//! were dispatched at; settling re-prices their latency and energy
//! through [`Backend::reprice`], which is exactly the identity at the
//! nominal point — a [`crate::control::NoOpController`] run is
//! byte-identical to PR 4 (`tests/tests/control.rs` pins it against the
//! same digests as `tests/tests/serving.rs`).

use crate::admission::{Admission, AdmissionQueue, QueuedRequest};
use crate::backend::{Backend, BackendOutput};
use crate::config::ServeConfig;
use crate::control::{ControlAction, Controller, DvfsPoint, FleetView};
use crate::energy::EnergyBreakdown;
use crate::histogram::LatencyHistogram;
use crate::report::{EpochStat, RequestOutcome, ServeReport};
use crate::router::ShardView;
use crate::ServeError;
use defa_model::workload::{RequestGenerator, SloClass};
use defa_parallel::WorkerPool;
use std::fmt::Write as _;
use std::sync::{mpsc, Arc};

/// Salt applied to the generator seed for the arrival-time stream, so load
/// timing and request payloads draw from independent streams.
const ARRIVAL_SALT: u64 = 0x5E54_1A7E_57A6_0001;

/// Digest marker mixed in for dropped requests.
const DROP_MARK: u64 = 0xD20D_D20D_D20D_D20D;

/// A batch handed to a shard: its virtual start, the clock it dispatched
/// at, plus the channel its real results arrive on.
struct Inflight {
    start_ns: u64,
    batch: u64,
    clock: DvfsPoint,
    members: Vec<QueuedRequest>,
    rx: mpsc::Receiver<Vec<Result<BackendOutput, ServeError>>>,
}

/// Mutable accounting state of one `run` call.
struct SimState {
    outcomes: Vec<Option<RequestOutcome>>,
    queue: LatencyHistogram,
    compute: LatencyHistogram,
    total: LatencyHistogram,
    completed: u64,
    dropped: u64,
    slo_violations: u64,
    shard_free: Vec<u64>,
    makespan_ns: u64,
    energy: EnergyBreakdown,
    dense_flops: u128,
    /// Events processed since the last epoch boundary — the controller's
    /// metric window (see [`FleetView`]).
    ep_arrivals: u64,
    ep_dropped: u64,
    ep_completed: u64,
    ep_slo: u64,
}

impl SimState {
    /// Settles a shard's in-flight batch: blocks for its real results,
    /// re-prices them for the clock the batch dispatched at, and advances
    /// the shard's virtual clock through them in batch order.
    fn settle(
        &mut self,
        shard: usize,
        slot: &mut Option<Inflight>,
        overhead_ns: u64,
        backend: &dyn Backend,
    ) -> Result<(), ServeError> {
        let Some(inf) = slot.take() else { return Ok(()) };
        let results = inf.rx.recv().map_err(|_| {
            ServeError::WorkerLost(format!("shard {shard} dropped batch {}", inf.batch))
        })?;
        debug_assert_eq!(results.len(), inf.members.len());
        let mut t = inf.start_ns + overhead_ns;
        for (m, res) in inf.members.iter().zip(results) {
            // Re-pricing happens once, here, on the accounting thread:
            // the worker computed the response at whatever wall-clock
            // speed; the virtual cost and energy belong to the DVFS point
            // the batch dispatched at (identity at nominal).
            let out = backend.reprice(res?, inf.clock);
            t += out.cost_ns;
            let queue_ns = inf.start_ns - m.arrival_ns;
            let compute_ns = t - inf.start_ns;
            self.queue.record(queue_ns);
            self.compute.record(compute_ns);
            self.total.record(queue_ns + compute_ns);
            self.completed += 1;
            self.ep_completed += 1;
            // Fixed reduction order: settle() runs on the accounting
            // thread in batch order, and the energies are integers, so the
            // totals are byte-identical however the batches were executed.
            self.energy += out.energy;
            self.dense_flops += out.dense_flops as u128;
            let outcome = RequestOutcome::Completed {
                scenario: m.scenario,
                slo: m.slo,
                arrival_ns: m.arrival_ns,
                digest: out.digest,
                shard,
                batch: inf.batch,
                queue_ns,
                compute_ns,
                energy: out.energy,
            };
            if outcome.violated_slo() {
                self.slo_violations += 1;
                self.ep_slo += 1;
            }
            self.outcomes[m.id as usize] = Some(outcome);
        }
        self.shard_free[shard] = t;
        self.makespan_ns = self.makespan_ns.max(t);
        Ok(())
    }

    /// Records whatever the admission queue decided about one arrival.
    fn record_admission(&mut self, verdict: Admission) {
        self.ep_arrivals += 1;
        if let Admission::Dropped { id, arrival_ns } = verdict {
            self.dropped += 1;
            self.ep_dropped += 1;
            self.outcomes[id as usize] = Some(RequestOutcome::Dropped { arrival_ns });
        }
    }

    /// Drains the epoch-window counters, returning
    /// `(arrivals, dropped, completed, slo_violations)`.
    fn take_epoch_counters(&mut self) -> (u64, u64, u64, u64) {
        let c = (self.ep_arrivals, self.ep_dropped, self.ep_completed, self.ep_slo);
        self.ep_arrivals = 0;
        self.ep_dropped = 0;
        self.ep_completed = 0;
        self.ep_slo = 0;
        c
    }
}

/// Fleet state in effect during one epoch, recorded at each boundary for
/// the report timeline and the static-energy accounting.
#[derive(Debug, Clone, Copy)]
struct EpochFleetState {
    active_shards: usize,
    clock: DvfsPoint,
    /// Σ over active shards of the backend's idle power at `clock`.
    idle_mw: u64,
}

/// Total idle power of the active shards at the given clock.
fn fleet_idle_mw(fleet: &[Arc<dyn Backend>], active: &[bool], clock: DvfsPoint) -> u64 {
    fleet.iter().zip(active).filter(|(_, a)| **a).map(|(b, _)| b.idle_power_mw(clock)).sum()
}

/// Per-scenario and per-shard scheduling/routing estimates, computed once
/// per run from the backends' analytic models.
struct Estimates {
    /// Fleet-mean service-time estimate per scenario (what queued
    /// requests carry for SJF).
    scenario_cost_ns: Vec<u64>,
    /// Scenario-mean service-time estimate per shard (what routers see).
    shard_cost_ns: Vec<u64>,
    /// Scenario-mean energy estimate per shard (what routers see).
    shard_energy_pj: Vec<u128>,
}

impl Estimates {
    fn compute(gen: &RequestGenerator, fleet: &[Arc<dyn Backend>]) -> Result<Self, ServeError> {
        let n_scen = gen.scenarios().len();
        let mut per_shard_cost = vec![vec![0u64; n_scen]; fleet.len()];
        let mut per_shard_energy = vec![vec![0u128; n_scen]; fleet.len()];
        for s in 0..n_scen {
            let wl = gen.scenario(s)?;
            for (k, backend) in fleet.iter().enumerate() {
                per_shard_cost[k][s] = backend.estimate_cost_ns(wl);
                per_shard_energy[k][s] = backend.estimate_energy_pj(wl);
            }
        }
        let scenario_cost_ns = (0..n_scen)
            .map(|s| {
                let sum: u128 = per_shard_cost.iter().map(|c| c[s] as u128).sum();
                (sum / fleet.len() as u128) as u64
            })
            .collect();
        let shard_cost_ns = per_shard_cost
            .iter()
            .map(|c| (c.iter().map(|&v| v as u128).sum::<u128>() / n_scen as u128) as u64)
            .collect();
        let shard_energy_pj =
            per_shard_energy.iter().map(|e| e.iter().sum::<u128>() / n_scen as u128).collect();
        Ok(Estimates { scenario_cost_ns, shard_cost_ns, shard_energy_pj })
    }
}

/// Display name of a fleet: the single backend name, or the distinct
/// names joined with `+` in shard order.
fn fleet_label(fleet: &[Arc<dyn Backend>]) -> String {
    let mut label = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for b in fleet {
        if !seen.contains(&b.name()) {
            if !seen.is_empty() {
                let _ = write!(label, "+");
            }
            let _ = write!(label, "{}", b.name());
            seen.push(b.name());
        }
    }
    label
}

/// The batched inference runtime: one request generator, one worker pool,
/// any number of `run`/`run_fleet` calls across backends, fleets and
/// operating points.
///
/// The pool is created once and reused, so a sweep over backends × loads ×
/// batch sizes pays the thread-spawn cost a single time.
///
/// # Example
///
/// ```
/// use defa_model::workload::RequestGenerator;
/// use defa_model::MsdaConfig;
/// use defa_serve::{BackendKind, ServeConfig, ServeRuntime};
///
/// # fn main() -> Result<(), defa_serve::ServeError> {
/// let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 42)?;
/// let runtime = ServeRuntime::new(gen);
/// let report = runtime.run(
///     &BackendKind::Accelerator.build(),
///     &ServeConfig::at_load(500.0, 8),
/// )?;
/// assert_eq!(report.completed + report.dropped, 8);
/// # Ok(())
/// # }
/// ```
pub struct ServeRuntime {
    gen: Arc<RequestGenerator>,
    pool: WorkerPool,
}

impl ServeRuntime {
    /// A runtime over `gen` with one pool worker per configured thread
    /// ([`defa_parallel::current_num_threads`]).
    pub fn new(gen: RequestGenerator) -> Self {
        Self::with_pool_threads(gen, defa_parallel::current_num_threads())
    }

    /// A runtime with an explicit pool size.
    pub fn with_pool_threads(gen: RequestGenerator, threads: usize) -> Self {
        ServeRuntime { gen: Arc::new(gen), pool: WorkerPool::new(threads) }
    }

    /// The request generator backing this runtime.
    pub fn generator(&self) -> &RequestGenerator {
        &self.gen
    }

    /// Batch-effective modeled capacity of `shards` shards of `backend`
    /// in requests per virtual second: full `max_batch`-deep batches of
    /// mean-cost requests plus the `overhead_us` dispatch overhead.
    ///
    /// The mean cost is probed deterministically by *running* the first
    /// eight requests of the trace (analytic estimates undershoot the
    /// simulated cycle counts at small scales), so the result is a pure
    /// function of the generator seed — what the trace-driven bench bins
    /// calibrate their offered loads against.
    ///
    /// # Errors
    ///
    /// Propagates backend failures from the probe runs.
    pub fn modeled_capacity_rps(
        &self,
        backend: &Arc<dyn Backend>,
        shards: usize,
        max_batch: usize,
        overhead_us: u64,
    ) -> Result<f64, ServeError> {
        let probes = 8u64;
        let mut total_cost_ns = 0f64;
        for id in 0..probes {
            let req = self.gen.request(id);
            let wl = self.gen.scenario(req.scenario)?;
            total_cost_ns += backend.run(wl, &req)?.cost_ns as f64;
        }
        let mean_cost_ns = total_cost_ns / probes as f64;
        let batch_ns = overhead_us as f64 * 1e3 + max_batch.max(1) as f64 * mean_cost_ns;
        Ok(max_batch.max(1) as f64 / batch_ns * 1e9 * shards.max(1) as f64)
    }

    /// Serves one trace on a homogeneous fleet (the same backend on every
    /// shard — including any autoscaling headroom shards up to
    /// `cfg.control.max_shards`) and reports latency, energy and SLO
    /// accounting.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DegenerateConfig`] /
    /// [`ServeError::InvalidConfig`] for a bad configuration and
    /// propagates backend failures.
    pub fn run(
        &self,
        backend: &Arc<dyn Backend>,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        // run_fleet validates; a zero shard count yields an empty fleet,
        // which it also rejects.
        let fleet: Vec<Arc<dyn Backend>> =
            (0..cfg.control.fleet_size(cfg.shards)).map(|_| Arc::clone(backend)).collect();
        self.run_fleet(&fleet, cfg)
    }

    /// Serves one trace on an explicit fleet — one backend per shard,
    /// mixing backends freely (the heterogeneous mode latency- and
    /// energy-aware routers exist for). The fleet must cover the control
    /// ceiling: `fleet.len() == cfg.control.fleet_size(cfg.shards)`;
    /// shards beyond `cfg.shards` start inactive and only serve once a
    /// controller activates them.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FleetMismatch`] on a fleet/ceiling size
    /// mismatch, configuration errors as in [`Self::run`], and propagates
    /// backend failures.
    pub fn run_fleet(
        &self,
        fleet: &[Arc<dyn Backend>],
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        cfg.validate()?;
        let fleet_size = cfg.control.fleet_size(cfg.shards);
        if fleet.len() != fleet_size {
            return Err(ServeError::FleetMismatch { fleet: fleet.len(), shards: fleet_size });
        }
        let scheduler = cfg.scheduler.build();
        let router = cfg.router.build();
        let mut controller: Box<dyn Controller> = cfg.control.controller.build();
        let epoch_ns = cfg.control.epoch_us.saturating_mul(1_000).max(1);
        let arrivals =
            cfg.arrival.sample(cfg.n_requests, cfg.offered_load, self.gen.seed() ^ ARRIVAL_SALT);
        // Admission-time request metadata, precomputed cheaply (hashes and
        // analytic estimates) so batching never regenerates payloads.
        let scenarios: Vec<usize> =
            (0..cfg.n_requests as u64).map(|id| self.gen.request_scenario(id)).collect();
        let slos: Vec<SloClass> =
            (0..cfg.n_requests as u64).map(|id| self.gen.request_slo(id)).collect();
        let est = Estimates::compute(&self.gen, fleet)?;
        let deadline_ns = cfg.batch_deadline_us.saturating_mul(1_000);
        let overhead_ns = cfg.batch_overhead_us.saturating_mul(1_000);

        let mut state = SimState {
            outcomes: vec![None; cfg.n_requests],
            queue: LatencyHistogram::new(),
            compute: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            completed: 0,
            dropped: 0,
            slo_violations: 0,
            shard_free: vec![0; fleet_size],
            makespan_ns: 0,
            energy: EnergyBreakdown::ZERO,
            dense_flops: 0,
            ep_arrivals: 0,
            ep_dropped: 0,
            ep_completed: 0,
            ep_slo: 0,
        };
        let mut queue = AdmissionQueue::new(cfg.queue_capacity, cfg.drop);
        let mut inflight: Vec<Option<Inflight>> = (0..fleet_size).map(|_| None).collect();
        let mut arr_i = 0usize;
        let mut batches = 0u64;
        let mut batched_requests = 0u64;

        // Control-loop state: which shards take new batches, the clock
        // batches dispatch at, and the per-epoch fleet states for the
        // timeline. Shards beyond cfg.shards start inactive (autoscaling
        // headroom).
        let mut active: Vec<bool> = (0..fleet_size).map(|s| s < cfg.shards).collect();
        let mut clock = DvfsPoint::NOMINAL;
        let mut next_boundary = epoch_ns;
        let mut epoch_idx = 0u64;
        let mut epoch_states: Vec<EpochFleetState> = vec![EpochFleetState {
            active_shards: cfg.shards,
            clock,
            idle_mw: fleet_idle_mw(fleet, &active, clock),
        }];

        let queued = |id: usize, arrival_ns: u64| QueuedRequest {
            id: id as u64,
            arrival_ns,
            scenario: scenarios[id],
            slo: slos[id],
            est_cost_ns: est.scenario_cost_ns[scenarios[id]],
            deadline_ns: arrival_ns.saturating_add(slos[id].deadline_ns()),
        };
        // Per-shard static router ratings, computed once; the routable
        // view buffer is rebuilt per dispatch (the active set can change
        // at any boundary) into reused storage.
        let est_batch_ns: Vec<u64> = (0..fleet_size)
            .map(|shard| {
                overhead_ns
                    .saturating_add(est.shard_cost_ns[shard].saturating_mul(cfg.max_batch as u64))
            })
            .collect();
        let mut views: Vec<ShardView> = Vec::with_capacity(fleet_size);

        loop {
            if queue.is_empty() && arr_i == arrivals.len() {
                break;
            }
            // The earliest moment the next batch could start: no sooner
            // than the earliest *active* shard frees and no sooner than
            // work exists to serve. (Under the pipelined round-robin path
            // free times may be stale-low; the bound is still
            // deterministic, which is all the control loop needs.)
            let pending = queue
                .front()
                .map(|r| r.arrival_ns)
                .or_else(|| arrivals.get(arr_i).copied())
                .expect("loop not done: work exists");
            let min_free = state
                .shard_free
                .iter()
                .zip(&active)
                .filter(|(_, a)| **a)
                .map(|(&f, _)| f)
                .min()
                .expect("at least one active shard");
            let t_now = min_free.max(pending);

            // Settle every epoch boundary the decision time has crossed:
            // snapshot the ended epoch, let the controller act, apply its
            // actions before any further batch forms.
            while next_boundary <= t_now {
                let (arrivals_w, dropped_w, completed_w, slo_w) = state.take_epoch_counters();
                let view = FleetView {
                    epoch: epoch_idx,
                    start_ns: next_boundary - epoch_ns,
                    end_ns: next_boundary,
                    active_shards: active.iter().filter(|a| **a).count(),
                    max_shards: fleet_size,
                    queue_depth: queue.len(),
                    arrivals: arrivals_w,
                    dropped: dropped_w,
                    completed: completed_w,
                    slo_violations: slo_w,
                    clock,
                };
                for action in controller.decide(&view) {
                    match action {
                        ControlAction::AddShard => {
                            if let Some(s) = active.iter().position(|a| !a) {
                                active[s] = true;
                            }
                        }
                        ControlAction::DrainShard => {
                            let n_active = active.iter().filter(|a| **a).count();
                            if n_active > 1 {
                                if let Some(s) = active.iter().rposition(|a| *a) {
                                    // Drain-before-stop: the shard takes
                                    // no new batches; its in-flight batch
                                    // settles through the normal path.
                                    active[s] = false;
                                }
                            }
                        }
                        ControlAction::SetClock(p) => {
                            debug_assert!(p.freq_mhz > 0 && p.mv > 0, "degenerate clock {p:?}");
                            clock = p;
                        }
                    }
                }
                epoch_states.push(EpochFleetState {
                    active_shards: active.iter().filter(|a| **a).count(),
                    clock,
                    idle_mw: fleet_idle_mw(fleet, &active, clock),
                });
                epoch_idx += 1;
                next_boundary = next_boundary.saturating_add(epoch_ns);
            }

            // Routing over the *active* shards only. Routers that read
            // shard backlogs ask for fleet state: every in-flight batch is
            // settled first so free times are exact. Stateless routers
            // (round-robin) route on possibly stale views and settle only
            // the chosen shard, keeping up to one batch in flight per
            // shard — the PR 2 pipeline.
            let shard = if router.needs_fleet_state() {
                for (s, slot) in inflight.iter_mut().enumerate() {
                    state.settle(s, slot, overhead_ns, fleet[s].as_ref())?;
                }
                let min_free = state
                    .shard_free
                    .iter()
                    .zip(&active)
                    .filter(|(_, a)| **a)
                    .map(|(&f, _)| f)
                    .min()
                    .expect("at least one active shard");
                fill_views(&mut views, &active, &state.shard_free, &est_batch_ns, &est);
                let pos = router.route(batches, min_free.max(pending), &views);
                views[pos].shard
            } else {
                fill_views(&mut views, &active, &state.shard_free, &est_batch_ns, &est);
                let pos = router.route(batches, 0, &views);
                let s = views[pos].shard;
                state.settle(s, &mut inflight[s], overhead_ns, fleet[s].as_ref())?;
                s
            };
            debug_assert!(shard < fleet_size, "router returned shard {shard}");
            let t_free = state.shard_free[shard];

            // Admission: everything that arrived while this shard was
            // busy faces the bounded queue and its drop policy.
            while arr_i < arrivals.len() && arrivals[arr_i] <= t_free {
                state.record_admission(queue.offer(queued(arr_i, arrivals[arr_i])));
                arr_i += 1;
            }
            if queue.is_empty() {
                if arr_i == arrivals.len() {
                    continue; // other shards may still be in flight; loop exits above
                }
                // Idle shard: virtually wait for the next arrival (an
                // empty queue always admits).
                state.record_admission(queue.offer(queued(arr_i, arrivals[arr_i])));
                arr_i += 1;
            }
            // Batching window: wait for a full batch unless the oldest
            // waiting request's deadline fires first.
            let t_deadline = queue.front().expect("queue non-empty").arrival_ns + deadline_ns;
            while queue.len() < cfg.max_batch
                && arr_i < arrivals.len()
                && arrivals[arr_i] <= t_deadline
            {
                state.record_admission(queue.offer(queued(arr_i, arrivals[arr_i])));
                arr_i += 1;
            }
            // Scheduling: the policy picks who rides this batch.
            let members = scheduler.select(&mut queue, cfg.max_batch, t_free);
            debug_assert!(!members.is_empty(), "scheduler returned an empty batch");
            let last_arrival = members.iter().map(|m| m.arrival_ns).max().expect("batch non-empty");
            let ready_at = if members.len() >= cfg.max_batch {
                last_arrival // when the filling request arrived
            } else if arr_i < arrivals.len() {
                t_deadline
            } else {
                last_arrival // trace exhausted: flush
            };
            let start_ns = t_free.max(ready_at);
            batched_requests += members.len() as u64;

            // Real execution: materialize and evaluate the batch on this
            // shard's backend, pinned to the shard's pool worker. Results
            // come back over a per-batch channel; timing comes from the
            // cost model, never the wall clock.
            let (tx, rx) = mpsc::channel();
            let gen = Arc::clone(&self.gen);
            let backend = Arc::clone(&fleet[shard]);
            let ids: Vec<u64> = members.iter().map(|m| m.id).collect();
            self.pool.submit(shard, move || {
                let results = ids
                    .iter()
                    .map(|&id| {
                        let req = gen.request(id);
                        gen.scenario(req.scenario)
                            .map_err(ServeError::from)
                            .and_then(|wl| backend.run(wl, &req))
                    })
                    .collect();
                // The receiver disappears only if `run` already failed;
                // nothing to report to in that case.
                let _ = tx.send(results);
            });
            inflight[shard] = Some(Inflight { start_ns, batch: batches, clock, members, rx });
            batches += 1;
        }
        for (shard, slot) in inflight.iter_mut().enumerate() {
            state.settle(shard, slot, overhead_ns, fleet[shard].as_ref())?;
        }
        // Conservation: every observed arrival was either served or shed.
        // `drop_fraction` divides by this sum, so the invariant is what
        // keeps the reported rate meaningful for partial traces too.
        assert_eq!(
            state.completed + state.dropped,
            arrivals.len() as u64,
            "runtime lost requests: {} completed + {} dropped != {} arrivals",
            state.completed,
            state.dropped,
            arrivals.len()
        );

        let outcomes: Vec<RequestOutcome> = state
            .outcomes
            .into_iter()
            .map(|o| o.expect("every request settled or dropped"))
            .collect();
        let digest = outcomes.iter().fold(crate::backend::FNV_OFFSET, |h, outcome| {
            crate::backend::fnv_fold(
                h,
                match outcome {
                    RequestOutcome::Completed { digest, .. } => *digest,
                    RequestOutcome::Dropped { .. } => DROP_MARK,
                },
            )
        });
        let timeline = build_timeline(&outcomes, state.makespan_ns, epoch_ns, &epoch_states);
        let static_energy_pj = timeline.iter().map(|e| e.static_pj).sum();

        Ok(ServeReport {
            backend: fleet_label(fleet),
            config: cfg.clone(),
            completed: state.completed,
            dropped: state.dropped,
            slo_violations: state.slo_violations,
            batches,
            batched_requests,
            queue: state.queue,
            compute: state.compute,
            total: state.total,
            makespan_ns: state.makespan_ns,
            energy: state.energy,
            dense_flops: state.dense_flops,
            digest,
            outcomes,
            timeline,
            static_energy_pj,
        })
    }
}

/// Rebuilds the routable shard views — one per *active* shard, in shard
/// order — into the reused `views` buffer.
fn fill_views(
    views: &mut Vec<ShardView>,
    active: &[bool],
    shard_free: &[u64],
    est_batch_ns: &[u64],
    est: &Estimates,
) {
    views.clear();
    for (shard, _) in active.iter().enumerate().filter(|(_, a)| **a) {
        views.push(ShardView {
            shard,
            free_ns: shard_free[shard],
            est_batch_ns: est_batch_ns[shard],
            est_energy_pj: est.shard_energy_pj[shard],
        });
    }
}

/// Builds the per-epoch timeline from the settled outcomes.
///
/// Unlike the controller's processed-event windows, the timeline
/// attributes every request by its exact virtual timestamps: offered load
/// (and drops) by arrival time, completions (and their energy and SLO
/// misses) by completion time. The final epoch is truncated at the
/// makespan — possibly to zero length, which every [`EpochStat`] rate
/// method guards — and epochs the control loop never crossed inherit the
/// last recorded fleet state.
fn build_timeline(
    outcomes: &[RequestOutcome],
    makespan_ns: u64,
    epoch_ns: u64,
    epoch_states: &[EpochFleetState],
) -> Vec<EpochStat> {
    let n_epochs = if makespan_ns == 0 { 1 } else { makespan_ns.div_ceil(epoch_ns) } as usize;
    let last_state = epoch_states.last().expect("initial epoch state always recorded");
    let mut timeline: Vec<EpochStat> = (0..n_epochs)
        .map(|e| {
            let st = epoch_states.get(e).unwrap_or(last_state);
            let start_ns = e as u64 * epoch_ns;
            let end_ns = (start_ns.saturating_add(epoch_ns)).min(makespan_ns);
            EpochStat {
                epoch: e as u64,
                start_ns,
                end_ns,
                active_shards: st.active_shards,
                clock: st.clock,
                arrivals: 0,
                completed: 0,
                dropped: 0,
                slo_violations: 0,
                energy: EnergyBreakdown::ZERO,
                static_pj: st.idle_mw as u128 * end_ns.saturating_sub(start_ns) as u128,
            }
        })
        .collect();
    // Timestamps at the very edge of the trace (a drop offered past the
    // final completion, or a completion exactly at the makespan) clamp
    // into the last epoch.
    let ep_of = |t: u64| ((t / epoch_ns) as usize).min(n_epochs - 1);
    for o in outcomes {
        match o {
            RequestOutcome::Completed { arrival_ns, queue_ns, compute_ns, energy, .. } => {
                timeline[ep_of(*arrival_ns)].arrivals += 1;
                let done = ep_of(arrival_ns + queue_ns + compute_ns);
                timeline[done].completed += 1;
                timeline[done].energy += *energy;
                if o.violated_slo() {
                    timeline[done].slo_violations += 1;
                }
            }
            RequestOutcome::Dropped { arrival_ns } => {
                let e = ep_of(*arrival_ns);
                timeline[e].arrivals += 1;
                timeline[e].dropped += 1;
            }
        }
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DropPolicy;
    use crate::backend::BackendKind;
    use crate::loadgen::ArrivalProcess;
    use crate::router::RouterKind;
    use crate::scheduler::SchedulerKind;
    use defa_model::MsdaConfig;

    fn runtime() -> ServeRuntime {
        ServeRuntime::new(RequestGenerator::standard(&MsdaConfig::tiny(), 42).unwrap())
    }

    #[test]
    fn every_request_is_accounted_for() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(2_000.0, 24);
        let report = rt.run(&BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.completed + report.dropped, 24);
        assert_eq!(report.outcomes.len(), 24);
        assert_eq!(report.total.count(), report.completed);
        assert!(report.makespan_ns > 0);
        assert!(report.batches > 0);
        assert!(report.mean_batch_size() >= 1.0);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(1_000.0, 16);
        let backend = BackendKind::Pruned.build();
        let a = rt.run(&backend, &cfg).unwrap();
        let b = rt.run(&backend, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn overload_triggers_backpressure_drops() {
        let rt = runtime();
        // A tiny queue, one shard and a huge offered load must shed.
        let cfg = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let report = rt.run(&BackendKind::Dense.build(), &cfg).unwrap();
        assert!(report.dropped > 0, "expected drops under overload");
        assert_eq!(report.completed + report.dropped, 64);
        // Drops are outcomes too.
        let drops =
            report.outcomes.iter().filter(|o| matches!(o, RequestOutcome::Dropped { .. })).count()
                as u64;
        assert_eq!(drops, report.dropped);
    }

    #[test]
    fn evict_oldest_sheds_the_stalest_work() {
        let rt = runtime();
        let base = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let reject = rt.run(&BackendKind::Dense.build(), &base).unwrap();
        let evict = rt
            .run(
                &BackendKind::Dense.build(),
                &ServeConfig { drop: DropPolicy::EvictOldest, ..base.clone() },
            )
            .unwrap();
        assert!(evict.dropped > 0);
        assert_eq!(evict.completed + evict.dropped, 64);
        // Same load, same shedding volume — only *who* is shed differs:
        // eviction keeps later arrivals, so the set of completed ids skews
        // later than under tail drop.
        let mean_completed_id = |r: &ServeReport| {
            let ids: Vec<u64> = r
                .outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, RequestOutcome::Completed { .. }))
                .map(|(id, _)| id as u64)
                .collect();
            ids.iter().sum::<u64>() as f64 / ids.len() as f64
        };
        assert!(
            mean_completed_id(&evict) > mean_completed_id(&reject),
            "eviction must favour fresher requests ({} vs {})",
            mean_completed_id(&evict),
            mean_completed_id(&reject)
        );
    }

    #[test]
    fn low_load_produces_partial_deadline_batches() {
        let rt = runtime();
        // Offered load far below service rate: batches go out on the
        // deadline with few requests each.
        let cfg =
            ServeConfig { max_batch: 8, batch_deadline_us: 100, ..ServeConfig::at_load(50.0, 12) };
        let report = rt.run(&BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.dropped, 0);
        assert!(
            report.mean_batch_size() < 4.0,
            "deadline batching should stay small at low load, got {}",
            report.mean_batch_size()
        );
    }

    #[test]
    fn deeper_batches_amortize_dispatch_overhead() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let base = ServeConfig {
            shards: 1,
            batch_overhead_us: 500,
            batch_deadline_us: 10_000,
            queue_capacity: 256,
            ..ServeConfig::at_load(4_000.0, 32)
        };
        let singles = rt.run(&backend, &ServeConfig { max_batch: 1, ..base.clone() }).unwrap();
        let batched = rt.run(&backend, &ServeConfig { max_batch: 16, ..base.clone() }).unwrap();
        assert_eq!(singles.dropped, 0);
        assert_eq!(batched.dropped, 0);
        assert!(
            batched.makespan_ns < singles.makespan_ns,
            "batching must amortize overhead: {} vs {}",
            batched.makespan_ns,
            singles.makespan_ns
        );
    }

    #[test]
    fn energy_totals_equal_the_sum_of_per_request_attributions() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(2_000.0, 20);
        for kind in BackendKind::all() {
            let report = rt.run(&kind.build(), &cfg).unwrap();
            let mut sum = EnergyBreakdown::ZERO;
            for o in &report.outcomes {
                if let RequestOutcome::Completed { energy, .. } = o {
                    sum += *energy;
                }
            }
            assert_eq!(sum, report.energy, "{} energy totals disagree", kind.name());
            assert!(report.energy.total_pj() > 0);
            assert!(report.joules_per_request() > 0.0);
            assert!(report.requests_per_joule() > 0.0);
            assert!(report.average_power_w() > 0.0);
            assert!(report.gops_per_watt() > 0.0);
            assert!(report.dense_flops > 0);
        }
    }

    #[test]
    fn energy_per_request_is_load_invariant() {
        // Energy is a property of the request, not of the schedule: two
        // very different load points must attribute identical totals when
        // they serve the same (complete) trace.
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let low = rt.run(&backend, &ServeConfig::at_load(300.0, 12)).unwrap();
        let high = rt.run(&backend, &ServeConfig::at_load(30_000.0, 12)).unwrap();
        assert_eq!(low.dropped, 0);
        assert_eq!(high.dropped, 0);
        assert_eq!(low.energy, high.energy);
        assert_eq!(low.dense_flops, high.dense_flops);
    }

    #[test]
    fn drop_fraction_divides_by_observed_arrivals() {
        let rt = runtime();
        let cfg = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let report = rt.run(&BackendKind::Dense.build(), &cfg).unwrap();
        assert!(report.dropped > 0);
        let arrivals = report.completed + report.dropped;
        assert_eq!(arrivals, 64, "full trace: arrivals match the config");
        assert!((report.drop_fraction() - report.dropped as f64 / arrivals as f64).abs() < 1e-12);
        assert!(report.drop_fraction() > 0.0 && report.drop_fraction() < 1.0);
        // A drop-free run reports zero.
        let calm = rt.run(&BackendKind::Dense.build(), &ServeConfig::at_load(100.0, 4)).unwrap();
        assert_eq!(calm.dropped, 0);
        assert_eq!(calm.drop_fraction(), 0.0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let rt = runtime();
        let backend = BackendKind::Dense.build();
        for cfg in [
            ServeConfig { offered_load: 0.0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { n_requests: 0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { shards: 0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { batch_deadline_us: 0, ..ServeConfig::at_load(1.0, 1) },
        ] {
            assert!(matches!(rt.run(&backend, &cfg), Err(ServeError::DegenerateConfig { .. })));
        }
        let cross =
            ServeConfig { max_batch: 100, queue_capacity: 10, ..ServeConfig::at_load(1.0, 1) };
        assert!(matches!(rt.run(&backend, &cross), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn fleets_must_match_the_shard_count() {
        let rt = runtime();
        let fleet = BackendKind::build_fleet(&[BackendKind::Dense]);
        let cfg = ServeConfig { shards: 2, ..ServeConfig::at_load(500.0, 4) };
        assert!(matches!(
            rt.run_fleet(&fleet, &cfg),
            Err(ServeError::FleetMismatch { fleet: 1, shards: 2 })
        ));
    }

    #[test]
    fn heterogeneous_fleets_attribute_work_per_shard() {
        let rt = runtime();
        let fleet = BackendKind::build_fleet(&[BackendKind::Dense, BackendKind::Accelerator]);
        let cfg = ServeConfig {
            shards: 2,
            router: RouterKind::EnergyAware,
            ..ServeConfig::at_load(2_000.0, 16)
        };
        let report = rt.run_fleet(&fleet, &cfg).unwrap();
        assert_eq!(report.backend, "dense+defa-accel");
        assert_eq!(report.completed + report.dropped, 16);
        let per_shard = report.completed_per_shard();
        assert_eq!(per_shard.iter().sum::<u64>(), report.completed);
        // Energy-aware routing must drain most work through the
        // accelerator shard (index 1), whose energy rating is ~2000x
        // lower.
        assert!(
            per_shard[1] > per_shard[0],
            "energy-aware routing sent {per_shard:?} to [dense, accel]"
        );
    }

    #[test]
    fn policy_layers_compose_without_losing_requests() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        for arrival in
            [ArrivalProcess::Poisson, ArrivalProcess::bursty_default(), ArrivalProcess::Uniform]
        {
            for scheduler in SchedulerKind::all() {
                for router in RouterKind::all() {
                    let cfg = ServeConfig {
                        arrival: arrival.clone(),
                        scheduler,
                        router,
                        ..ServeConfig::at_load(4_000.0, 12)
                    };
                    let report = rt.run(&backend, &cfg).unwrap();
                    assert_eq!(
                        report.completed + report.dropped,
                        12,
                        "{}/{}/{} lost requests",
                        arrival.label(),
                        scheduler.name(),
                        router.name()
                    );
                }
            }
        }
    }

    #[test]
    fn display_covers_the_key_lines() {
        let rt = runtime();
        let report =
            rt.run(&BackendKind::Accelerator.build(), &ServeConfig::at_load(500.0, 8)).unwrap();
        let s = report.to_string();
        for key in
            ["serve report", "offered", "policy", "served", "throughput", "total", "p99", "fifo"]
        {
            assert!(s.contains(key), "missing {key} in:\n{s}");
        }
    }
}
