//! The serving runtime: admission queue → dynamic batcher → worker shards.
//!
//! # Execution model
//!
//! The runtime separates *what* is computed from *when* it is deemed to
//! happen:
//!
//! * **Real execution** — every admitted request is materialized from the
//!   seeded [`RequestGenerator`] and evaluated by the backend on a
//!   long-lived [`WorkerPool`] worker (one per shard, round-robin batch
//!   assignment, FIFO per shard). Requests are independent, so per-request
//!   results are bit-identical regardless of batch composition, shard
//!   count or thread count. Pool workers are persistent threads, so the
//!   thread-local [`defa_tensor::Scratch`] arenas inside the GEMM kernels
//!   act as per-shard arenas: after the first batch warms the high-water
//!   mark, steady-state serving performs no packing allocations.
//!
//! * **Virtual-time accounting** — arrivals, queueing, batching triggers
//!   and service times are tracked on an integer virtual clock driven by
//!   the seeded load generator and the backends' deterministic cost
//!   models. Latency numbers therefore never observe wall-clock jitter:
//!   the full [`ServeReport`] — per-request outcomes, histogram buckets,
//!   quantiles — is byte-identical for any `RAYON_NUM_THREADS`, pinned by
//!   `tests/tests/serving.rs`.
//!
//! # Queue → batcher → backend
//!
//! Requests are admitted, in arrival order, to a bounded FIFO; when the
//! queue is full the request is **dropped** (open-loop backpressure — the
//! report counts it). A batch launches on the next round-robin shard when
//! either [`ServeConfig::max_batch`] requests are waiting or the oldest
//! waiting request has aged past [`ServeConfig::batch_deadline_us`]
//! (size/deadline-triggered dynamic batching); the shard then serves the
//! batch sequentially after a fixed dispatch overhead, and per-request
//! queue/compute/total latencies land in fixed-bucket histograms.

use crate::backend::{Backend, BackendOutput};
use crate::energy::{fmt_joules, EnergyBreakdown};
use crate::histogram::{fmt_ns, LatencyHistogram};
use crate::loadgen::arrival_times;
use crate::ServeError;
use defa_model::workload::RequestGenerator;
use defa_parallel::WorkerPool;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{mpsc, Arc};

/// Salt applied to the generator seed for the arrival-time stream, so load
/// timing and request payloads draw from independent streams.
const ARRIVAL_SALT: u64 = 0x5E54_1A7E_57A6_0001;

/// Digest marker mixed in for dropped requests.
const DROP_MARK: u64 = 0xD20D_D20D_D20D_D20D;

/// One serving operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Offered load of the open-loop generator, requests per virtual
    /// second.
    pub offered_load: f64,
    /// Number of requests in the trace.
    pub n_requests: usize,
    /// Admission-queue capacity; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Oldest-request age (virtual µs) that forces a partial batch out.
    pub batch_deadline_us: u64,
    /// Fixed per-batch dispatch overhead (virtual µs) — the cost batching
    /// amortizes.
    pub batch_overhead_us: u64,
    /// Number of worker shards serving batches round-robin.
    pub shards: usize,
}

impl ServeConfig {
    /// A reasonable operating point at a given offered load: queue of 64,
    /// batches of up to 8 with a 2 ms deadline, 50 µs dispatch overhead,
    /// two shards.
    pub fn at_load(offered_load: f64, n_requests: usize) -> Self {
        ServeConfig {
            offered_load,
            n_requests,
            queue_capacity: 64,
            max_batch: 8,
            batch_deadline_us: 2_000,
            batch_overhead_us: 50,
            shards: 2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] on nonsensical values.
    pub fn validate(&self) -> Result<(), ServeError> {
        if !(self.offered_load.is_finite() && self.offered_load > 0.0) {
            return Err(ServeError::InvalidConfig(format!(
                "offered_load must be positive, got {}",
                self.offered_load
            )));
        }
        if self.n_requests == 0 {
            return Err(ServeError::InvalidConfig("n_requests must be at least 1".into()));
        }
        if self.queue_capacity == 0 || self.max_batch == 0 || self.shards == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity, max_batch and shards must all be at least 1".into(),
            ));
        }
        if self.max_batch > self.queue_capacity {
            return Err(ServeError::InvalidConfig(format!(
                "max_batch {} exceeds queue_capacity {} — full batches could never form",
                self.max_batch, self.queue_capacity
            )));
        }
        Ok(())
    }
}

/// What happened to one request, indexed by request id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served: response digest plus the virtual-time latency split.
    Completed {
        /// Scenario the request drew.
        scenario: usize,
        /// Digest of the response features.
        digest: u64,
        /// Shard that served it.
        shard: usize,
        /// Batch it rode in (global batch counter).
        batch: u64,
        /// Admission-queue wait (batch start − arrival).
        queue_ns: u64,
        /// Service time including dispatch overhead and in-batch
        /// serialization (completion − batch start).
        compute_ns: u64,
        /// Modeled energy this request cost its backend (integer
        /// picojoules; see [`crate::energy`]).
        energy: EnergyBreakdown,
    },
    /// Rejected at admission: the queue was full.
    Dropped {
        /// Virtual arrival time of the rejected request.
        arrival_ns: u64,
    },
}

/// The outcome of serving one trace at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Backend display name.
    pub backend: String,
    /// The operating point served.
    pub config: ServeConfig,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by backpressure.
    pub dropped: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Sum of batch sizes (for the mean).
    pub batched_requests: u64,
    /// Admission-queue wait per completed request.
    pub queue: LatencyHistogram,
    /// Service time per completed request.
    pub compute: LatencyHistogram,
    /// End-to-end latency per completed request.
    pub total: LatencyHistogram,
    /// Virtual time at which the last batch finished.
    pub makespan_ns: u64,
    /// Total energy of all completed requests, in integer picojoules
    /// (fixed-point: byte-identical across thread counts, shard counts and
    /// batch sizes — see [`crate::energy`]).
    pub energy: EnergyBreakdown,
    /// Dense-equivalent attention FLOPs completed (sum over completed
    /// requests) — the numerator of the effective GOPS/W metric.
    pub dense_flops: u128,
    /// FNV fold of all per-request digests in id order (drops included as
    /// markers) — one number that pins every response bit.
    pub digest: u64,
    /// Per-request outcomes, indexed by request id.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServeReport {
    /// Completed requests per virtual second.
    pub fn achieved_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.completed as f64 / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Fraction of *observed arrivals* rejected by backpressure.
    ///
    /// The denominator is what actually arrived (`completed + dropped`),
    /// not the configured trace length — for a full trace the two
    /// coincide, but a partial-trace run must not silently under-report
    /// its drop rate.
    pub fn drop_fraction(&self) -> f64 {
        let arrivals = self.completed + self.dropped;
        if arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / arrivals as f64
        }
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Mean energy per completed request in joules (0 when nothing
    /// completed).
    pub fn joules_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy.total_joules() / self.completed as f64
        }
    }

    /// Completed requests per joule (0 when no energy was spent).
    pub fn requests_per_joule(&self) -> f64 {
        let j = self.energy.total_joules();
        if j == 0.0 {
            0.0
        } else {
            self.completed as f64 / j
        }
    }

    /// Average power over the serving window in watts: total energy /
    /// makespan (0 for an empty run).
    pub fn average_power_w(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.energy.total_joules() / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Effective throughput in GOPS: dense-equivalent completed work /
    /// makespan (0 for an empty run).
    pub fn effective_gops(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.dense_flops as f64 / (self.makespan_ns as f64 * 1e-9) / 1e9
        }
    }

    /// Energy efficiency in GOPS/W — dense-equivalent work per energy,
    /// time cancelling out (0 when no energy was spent).
    pub fn gops_per_watt(&self) -> f64 {
        let j = self.energy.total_joules();
        if j == 0.0 {
            0.0
        } else {
            self.dense_flops as f64 / 1e9 / j
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serve report — {} backend", self.backend)?;
        writeln!(
            f,
            "  offered         : {:.1} req/s x {} requests ({} shards, batch <= {}, queue {})",
            self.config.offered_load,
            self.config.n_requests,
            self.config.shards,
            self.config.max_batch,
            self.config.queue_capacity,
        )?;
        writeln!(
            f,
            "  served          : {} completed / {} dropped in {} batches (mean size {:.1})",
            self.completed,
            self.dropped,
            self.batches,
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "  throughput      : {:.1} req/s over {} (virtual)",
            self.achieved_rps(),
            fmt_ns(self.makespan_ns)
        )?;
        for (name, h) in
            [("queue", &self.queue), ("compute", &self.compute), ("total", &self.total)]
        {
            writeln!(
                f,
                "  {name:<7} latency : p50 {:>9}  p95 {:>9}  p99 {:>9}  mean {:>9}",
                fmt_ns(h.p50_ns()),
                fmt_ns(h.p95_ns()),
                fmt_ns(h.p99_ns()),
                fmt_ns(h.mean_ns()),
            )?;
        }
        writeln!(
            f,
            "  energy          : {} total ({}/req, {:.1} req/J, {:.1} W avg, {:.0} GOPS/W)",
            fmt_joules(self.energy.total_joules()),
            fmt_joules(self.joules_per_request()),
            self.requests_per_joule(),
            self.average_power_w(),
            self.gops_per_watt(),
        )?;
        Ok(())
    }
}

/// A batch handed to a shard: its virtual start plus the channel its real
/// results arrive on.
struct Inflight {
    start_ns: u64,
    batch: u64,
    members: Vec<(u64, u64)>, // (request id, arrival ns)
    rx: mpsc::Receiver<Vec<Result<BackendOutput, ServeError>>>,
}

/// Mutable accounting state of one `run` call.
struct SimState {
    outcomes: Vec<Option<RequestOutcome>>,
    queue: LatencyHistogram,
    compute: LatencyHistogram,
    total: LatencyHistogram,
    completed: u64,
    dropped: u64,
    shard_free: Vec<u64>,
    makespan_ns: u64,
    scenarios: Vec<usize>,
    energy: EnergyBreakdown,
    dense_flops: u128,
}

impl SimState {
    /// Settles a shard's in-flight batch: blocks for its real results and
    /// advances the shard's virtual clock through them in batch order.
    fn settle(
        &mut self,
        shard: usize,
        slot: &mut Option<Inflight>,
        overhead_ns: u64,
    ) -> Result<(), ServeError> {
        let Some(inf) = slot.take() else { return Ok(()) };
        let results = inf.rx.recv().map_err(|_| {
            ServeError::WorkerLost(format!("shard {shard} dropped batch {}", inf.batch))
        })?;
        debug_assert_eq!(results.len(), inf.members.len());
        let mut t = inf.start_ns + overhead_ns;
        for (&(id, arrive), res) in inf.members.iter().zip(results) {
            let out = res?;
            t += out.cost_ns;
            let queue_ns = inf.start_ns - arrive;
            let compute_ns = t - inf.start_ns;
            self.queue.record(queue_ns);
            self.compute.record(compute_ns);
            self.total.record(queue_ns + compute_ns);
            self.completed += 1;
            // Fixed reduction order: settle() runs on the accounting
            // thread in batch order, and the energies are integers, so the
            // totals are byte-identical however the batches were executed.
            self.energy += out.energy;
            self.dense_flops += out.dense_flops as u128;
            self.outcomes[id as usize] = Some(RequestOutcome::Completed {
                scenario: self.scenarios[id as usize],
                digest: out.digest,
                shard,
                batch: inf.batch,
                queue_ns,
                compute_ns,
                energy: out.energy,
            });
        }
        self.shard_free[shard] = t;
        self.makespan_ns = self.makespan_ns.max(t);
        Ok(())
    }

    /// Admits one arrival against the bounded queue, dropping on overflow.
    fn admit(
        &mut self,
        queue: &mut VecDeque<(u64, u64)>,
        capacity: usize,
        id: u64,
        arrival_ns: u64,
    ) {
        if queue.len() >= capacity {
            self.dropped += 1;
            self.outcomes[id as usize] = Some(RequestOutcome::Dropped { arrival_ns });
        } else {
            queue.push_back((id, arrival_ns));
        }
    }
}

/// The batched inference runtime: one request generator, one worker pool,
/// any number of `run` calls across backends and operating points.
///
/// The pool is created once and reused, so a sweep over backends × loads ×
/// batch sizes pays the thread-spawn cost a single time.
///
/// # Example
///
/// ```
/// use defa_model::workload::RequestGenerator;
/// use defa_model::MsdaConfig;
/// use defa_serve::{BackendKind, ServeConfig, ServeRuntime};
///
/// # fn main() -> Result<(), defa_serve::ServeError> {
/// let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 42)?;
/// let runtime = ServeRuntime::new(gen);
/// let report = runtime.run(
///     &BackendKind::Accelerator.build(),
///     &ServeConfig::at_load(500.0, 8),
/// )?;
/// assert_eq!(report.completed + report.dropped, 8);
/// # Ok(())
/// # }
/// ```
pub struct ServeRuntime {
    gen: Arc<RequestGenerator>,
    pool: WorkerPool,
}

impl ServeRuntime {
    /// A runtime over `gen` with one pool worker per configured thread
    /// ([`defa_parallel::current_num_threads`]).
    pub fn new(gen: RequestGenerator) -> Self {
        Self::with_pool_threads(gen, defa_parallel::current_num_threads())
    }

    /// A runtime with an explicit pool size.
    pub fn with_pool_threads(gen: RequestGenerator, threads: usize) -> Self {
        ServeRuntime { gen: Arc::new(gen), pool: WorkerPool::new(threads) }
    }

    /// The request generator backing this runtime.
    pub fn generator(&self) -> &RequestGenerator {
        &self.gen
    }

    /// Serves one trace at one operating point and reports latency.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a bad configuration and
    /// propagates backend failures.
    pub fn run(
        &self,
        backend: &Arc<dyn Backend>,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        cfg.validate()?;
        let arrivals =
            arrival_times(cfg.n_requests, cfg.offered_load, self.gen.seed() ^ ARRIVAL_SALT);
        // Scenario of every request, precomputed cheaply (a hash) so
        // outcomes can name it without regenerating payloads.
        let scenarios: Vec<usize> =
            (0..cfg.n_requests as u64).map(|id| self.gen.request_scenario(id)).collect();
        let deadline_ns = cfg.batch_deadline_us.saturating_mul(1_000);
        let overhead_ns = cfg.batch_overhead_us.saturating_mul(1_000);

        let mut state = SimState {
            outcomes: vec![None; cfg.n_requests],
            queue: LatencyHistogram::new(),
            compute: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            completed: 0,
            dropped: 0,
            shard_free: vec![0; cfg.shards],
            makespan_ns: 0,
            scenarios,
            energy: EnergyBreakdown::ZERO,
            dense_flops: 0,
        };
        let mut queue: VecDeque<(u64, u64)> = VecDeque::new();
        let mut inflight: Vec<Option<Inflight>> = (0..cfg.shards).map(|_| None).collect();
        let mut arr_i = 0usize;
        let mut batches = 0u64;
        let mut batched_requests = 0u64;

        loop {
            if queue.is_empty() && arr_i == arrivals.len() {
                break;
            }
            // Round-robin shard choice keeps every shard's batch stream
            // FIFO and the schedule independent of real completion order.
            let shard = (batches % cfg.shards as u64) as usize;
            state.settle(shard, &mut inflight[shard], overhead_ns)?;
            let t_free = state.shard_free[shard];

            // Admit everything that arrived while this shard was busy.
            while arr_i < arrivals.len() && arrivals[arr_i] <= t_free {
                state.admit(&mut queue, cfg.queue_capacity, arr_i as u64, arrivals[arr_i]);
                arr_i += 1;
            }
            if queue.is_empty() {
                if arr_i == arrivals.len() {
                    continue; // other shards may still be in flight; loop exits above
                }
                // Idle shard: virtually wait for the next arrival (an
                // empty queue always admits).
                state.admit(&mut queue, cfg.queue_capacity, arr_i as u64, arrivals[arr_i]);
                arr_i += 1;
            }
            // Batching window: wait for a full batch unless the oldest
            // request's deadline fires first.
            let t_deadline = queue.front().expect("queue non-empty").1 + deadline_ns;
            while queue.len() < cfg.max_batch
                && arr_i < arrivals.len()
                && arrivals[arr_i] <= t_deadline
            {
                state.admit(&mut queue, cfg.queue_capacity, arr_i as u64, arrivals[arr_i]);
                arr_i += 1;
            }
            let ready_at = if queue.len() >= cfg.max_batch {
                queue[cfg.max_batch - 1].1 // when the filling request arrived
            } else if arr_i < arrivals.len() {
                t_deadline
            } else {
                queue.back().expect("queue non-empty").1 // trace exhausted: flush
            };
            let start_ns = t_free.max(ready_at);

            let take = queue.len().min(cfg.max_batch);
            let members: Vec<(u64, u64)> = queue.drain(..take).collect();
            batched_requests += take as u64;

            // Real execution: materialize and evaluate the batch on this
            // shard's pool worker. Results come back over a per-batch
            // channel; timing comes from the cost model, never the wall
            // clock.
            let (tx, rx) = mpsc::channel();
            let gen = Arc::clone(&self.gen);
            let backend = Arc::clone(backend);
            let ids: Vec<u64> = members.iter().map(|&(id, _)| id).collect();
            self.pool.submit(shard, move || {
                let results = ids
                    .iter()
                    .map(|&id| {
                        let req = gen.request(id);
                        gen.scenario(req.scenario)
                            .map_err(ServeError::from)
                            .and_then(|wl| backend.run(wl, &req))
                    })
                    .collect();
                // The receiver disappears only if `run` already failed;
                // nothing to report to in that case.
                let _ = tx.send(results);
            });
            inflight[shard] = Some(Inflight { start_ns, batch: batches, members, rx });
            batches += 1;
        }
        for (shard, slot) in inflight.iter_mut().enumerate() {
            state.settle(shard, slot, overhead_ns)?;
        }
        // Conservation: every observed arrival was either served or shed.
        // `drop_fraction` divides by this sum, so the invariant is what
        // keeps the reported rate meaningful for partial traces too.
        assert_eq!(
            state.completed + state.dropped,
            arrivals.len() as u64,
            "runtime lost requests: {} completed + {} dropped != {} arrivals",
            state.completed,
            state.dropped,
            arrivals.len()
        );

        let outcomes: Vec<RequestOutcome> = state
            .outcomes
            .into_iter()
            .map(|o| o.expect("every request settled or dropped"))
            .collect();
        let digest = outcomes.iter().fold(crate::backend::FNV_OFFSET, |h, outcome| {
            crate::backend::fnv_fold(
                h,
                match outcome {
                    RequestOutcome::Completed { digest, .. } => *digest,
                    RequestOutcome::Dropped { .. } => DROP_MARK,
                },
            )
        });

        Ok(ServeReport {
            backend: backend.name().to_string(),
            config: cfg.clone(),
            completed: state.completed,
            dropped: state.dropped,
            batches,
            batched_requests,
            queue: state.queue,
            compute: state.compute,
            total: state.total,
            makespan_ns: state.makespan_ns,
            energy: state.energy,
            dense_flops: state.dense_flops,
            digest,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use defa_model::MsdaConfig;

    fn runtime() -> ServeRuntime {
        ServeRuntime::new(RequestGenerator::standard(&MsdaConfig::tiny(), 42).unwrap())
    }

    #[test]
    fn every_request_is_accounted_for() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(2_000.0, 24);
        let report = rt.run(&BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.completed + report.dropped, 24);
        assert_eq!(report.outcomes.len(), 24);
        assert_eq!(report.total.count(), report.completed);
        assert!(report.makespan_ns > 0);
        assert!(report.batches > 0);
        assert!(report.mean_batch_size() >= 1.0);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(1_000.0, 16);
        let backend = BackendKind::Pruned.build();
        let a = rt.run(&backend, &cfg).unwrap();
        let b = rt.run(&backend, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn overload_triggers_backpressure_drops() {
        let rt = runtime();
        // A tiny queue, one shard and a huge offered load must shed.
        let cfg = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let report = rt.run(&BackendKind::Dense.build(), &cfg).unwrap();
        assert!(report.dropped > 0, "expected drops under overload");
        assert_eq!(report.completed + report.dropped, 64);
        // Drops are outcomes too.
        let drops = report
            .outcomes
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Dropped { .. }))
            .count() as u64;
        assert_eq!(drops, report.dropped);
    }

    #[test]
    fn low_load_produces_partial_deadline_batches() {
        let rt = runtime();
        // Offered load far below service rate: batches go out on the
        // deadline with few requests each.
        let cfg = ServeConfig {
            max_batch: 8,
            batch_deadline_us: 100,
            ..ServeConfig::at_load(50.0, 12)
        };
        let report = rt.run(&BackendKind::Accelerator.build(), &cfg).unwrap();
        assert_eq!(report.dropped, 0);
        assert!(
            report.mean_batch_size() < 4.0,
            "deadline batching should stay small at low load, got {}",
            report.mean_batch_size()
        );
    }

    #[test]
    fn deeper_batches_amortize_dispatch_overhead() {
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let base = ServeConfig {
            shards: 1,
            batch_overhead_us: 500,
            batch_deadline_us: 10_000,
            queue_capacity: 256,
            ..ServeConfig::at_load(4_000.0, 32)
        };
        let singles = rt.run(&backend, &ServeConfig { max_batch: 1, ..base.clone() }).unwrap();
        let batched = rt.run(&backend, &ServeConfig { max_batch: 16, ..base.clone() }).unwrap();
        assert_eq!(singles.dropped, 0);
        assert_eq!(batched.dropped, 0);
        assert!(
            batched.makespan_ns < singles.makespan_ns,
            "batching must amortize overhead: {} vs {}",
            batched.makespan_ns,
            singles.makespan_ns
        );
    }

    #[test]
    fn energy_totals_equal_the_sum_of_per_request_attributions() {
        let rt = runtime();
        let cfg = ServeConfig::at_load(2_000.0, 20);
        for kind in BackendKind::all() {
            let report = rt.run(&kind.build(), &cfg).unwrap();
            let mut sum = EnergyBreakdown::ZERO;
            for o in &report.outcomes {
                if let RequestOutcome::Completed { energy, .. } = o {
                    sum += *energy;
                }
            }
            assert_eq!(sum, report.energy, "{} energy totals disagree", kind.name());
            assert!(report.energy.total_pj() > 0);
            assert!(report.joules_per_request() > 0.0);
            assert!(report.requests_per_joule() > 0.0);
            assert!(report.average_power_w() > 0.0);
            assert!(report.gops_per_watt() > 0.0);
            assert!(report.dense_flops > 0);
        }
    }

    #[test]
    fn energy_per_request_is_load_invariant() {
        // Energy is a property of the request, not of the schedule: two
        // very different load points must attribute identical totals when
        // they serve the same (complete) trace.
        let rt = runtime();
        let backend = BackendKind::Accelerator.build();
        let low = rt.run(&backend, &ServeConfig::at_load(300.0, 12)).unwrap();
        let high = rt.run(&backend, &ServeConfig::at_load(30_000.0, 12)).unwrap();
        assert_eq!(low.dropped, 0);
        assert_eq!(high.dropped, 0);
        assert_eq!(low.energy, high.energy);
        assert_eq!(low.dense_flops, high.dense_flops);
    }

    #[test]
    fn drop_fraction_divides_by_observed_arrivals() {
        let rt = runtime();
        let cfg = ServeConfig {
            queue_capacity: 2,
            max_batch: 2,
            shards: 1,
            ..ServeConfig::at_load(5e6, 64)
        };
        let report = rt.run(&BackendKind::Dense.build(), &cfg).unwrap();
        assert!(report.dropped > 0);
        let arrivals = report.completed + report.dropped;
        assert_eq!(arrivals, 64, "full trace: arrivals match the config");
        assert!(
            (report.drop_fraction() - report.dropped as f64 / arrivals as f64).abs() < 1e-12
        );
        assert!(report.drop_fraction() > 0.0 && report.drop_fraction() < 1.0);
        // A drop-free run reports zero.
        let calm = rt.run(&BackendKind::Dense.build(), &ServeConfig::at_load(100.0, 4)).unwrap();
        assert_eq!(calm.dropped, 0);
        assert_eq!(calm.drop_fraction(), 0.0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let rt = runtime();
        let backend = BackendKind::Dense.build();
        for cfg in [
            ServeConfig { offered_load: 0.0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { n_requests: 0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { shards: 0, ..ServeConfig::at_load(1.0, 1) },
            ServeConfig { max_batch: 100, queue_capacity: 10, ..ServeConfig::at_load(1.0, 1) },
        ] {
            assert!(matches!(rt.run(&backend, &cfg), Err(ServeError::InvalidConfig(_))));
        }
    }

    #[test]
    fn display_covers_the_key_lines() {
        let rt = runtime();
        let report =
            rt.run(&BackendKind::Accelerator.build(), &ServeConfig::at_load(500.0, 8)).unwrap();
        let s = report.to_string();
        for key in ["serve report", "offered", "served", "throughput", "total", "p99"] {
            assert!(s.contains(key), "missing {key} in:\n{s}");
        }
    }
}
