//! Per-request energy attribution for the serving runtime.
//!
//! The paper's headline claim is *energy* efficiency, so the serving layer
//! accounts it per request, exactly like latency: every
//! [`crate::BackendOutput`] carries an [`EnergyBreakdown`] priced by the
//! backend's own deterministic model, and the runtime folds them into the
//! [`crate::ServeReport`] totals.
//!
//! # Which model prices which backend
//!
//! * **dense / pruned (GPU)** — the board-level TDP × activity model
//!   ([`GpuSpec::energy_picojoules`]) applied to the request's *modeled*
//!   compute time. The pruned backend's time is already scaled by the FLOP
//!   share the request's masks actually kept, so its energy inherits the
//!   per-request pruning win. A board model cannot split components, so
//!   the whole request lands in `compute_pj`.
//! * **defa-accel** — the event-priced 40 nm model
//!   ([`defa_arch::EnergyModel::price`]) over the request's own simulated
//!   [`defa_arch::EventCounters`], quantized once via
//!   [`defa_arch::EnergyBreakdown::quantize_pj`]. Compute (PE + softmax),
//!   SRAM and DRAM stay separate, as in the paper's Figure 8 breakdown.
//!
//! # Fixed-point accumulation
//!
//! Energies are held in **integer picojoules** (`u128`). Each backend
//! quantizes exactly once, per request; the runtime then only ever adds
//! integers, so totals are byte-identical for any summation order — and
//! therefore for any `RAYON_NUM_THREADS`, shard count or batch size, the
//! same contract the latency histograms already keep. Floating-point sums
//! would make report identity depend on reduction order; integer sums make
//! the question moot. `u128` headroom: the costliest modeled request is
//! ~1e13 pJ, so even trillion-request traces cannot overflow.

use defa_baseline::gpu::GpuSpec;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Energy attributed to one request (or summed over many), in integer
/// picojoules, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyBreakdown {
    /// Compute energy: the PE array + softmax unit for the accelerator;
    /// the whole board for the GPU backends (their model cannot split).
    pub compute_pj: u128,
    /// On-chip SRAM energy (accelerator only; 0 for the GPU backends).
    pub sram_pj: u128,
    /// External DRAM energy (accelerator only; 0 for the GPU backends).
    pub dram_pj: u128,
}

impl EnergyBreakdown {
    /// The zero energy, for accumulators.
    pub const ZERO: EnergyBreakdown = EnergyBreakdown { compute_pj: 0, sram_pj: 0, dram_pj: 0 };

    /// Board-level GPU energy for a modeled duration: TDP × activity ×
    /// time, quantized by [`GpuSpec::energy_picojoules`].
    pub fn from_gpu(gpu: &GpuSpec, cost_ns: u64) -> Self {
        EnergyBreakdown { compute_pj: gpu.energy_picojoules(cost_ns), sram_pj: 0, dram_pj: 0 }
    }

    /// Event-priced accelerator energy, quantized to integer picojoules
    /// (PE + softmax grouped as compute, exactly
    /// [`defa_arch::EnergyBreakdown::quantize_pj`]).
    pub fn from_accelerator(e: &defa_arch::EnergyBreakdown) -> Self {
        let (compute_pj, sram_pj, dram_pj) = e.quantize_pj();
        EnergyBreakdown { compute_pj, sram_pj, dram_pj }
    }

    /// A modeled single-figure estimate, carried as compute energy.
    /// Estimators return one total with no SRAM/DRAM split, so this is
    /// how [`crate::cost::CostTable`] feeds an estimate through a
    /// backend's repricer.
    pub fn from_estimate(pj: u128) -> Self {
        EnergyBreakdown { compute_pj: pj, sram_pj: 0, dram_pj: 0 }
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> u128 {
        self.compute_pj + self.sram_pj + self.dram_pj
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_pj() as f64 * 1e-12
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + rhs.compute_pj,
            sram_pj: self.sram_pj + rhs.sram_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_joules(self.total_joules()))
    }
}

/// Formats joules with an SI prefix (pJ up to J).
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.2} J")
    } else if j >= 1e-3 {
        format!("{:.2} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.2} µJ", j * 1e6)
    } else if j >= 1e-9 {
        format!("{:.2} nJ", j * 1e9)
    } else {
        format!("{:.0} pJ", j * 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_energy_is_board_level_compute_only() {
        let e = EnergyBreakdown::from_gpu(&GpuSpec::rtx_3090ti(), 1_000_000);
        assert_eq!(e.sram_pj, 0);
        assert_eq!(e.dram_pj, 0);
        assert_eq!(e.total_pj(), 225_000_000_000); // 225 W x 1 ms
        assert!((e.total_joules() - 0.225).abs() < 1e-12);
    }

    #[test]
    fn accelerator_energy_keeps_the_component_split() {
        let arch = defa_arch::EnergyBreakdown {
            pe_pj: 10.4,
            softmax_pj: 2.0,
            sram_pj: 100.6,
            dram_pj: 1000.0,
        };
        let e = EnergyBreakdown::from_accelerator(&arch);
        assert_eq!(e, EnergyBreakdown { compute_pj: 12, sram_pj: 101, dram_pj: 1000 });
        assert_eq!(e.total_pj(), 1113);
    }

    #[test]
    fn accumulation_is_exact_integer_addition() {
        let a = EnergyBreakdown { compute_pj: 1, sram_pj: 2, dram_pj: 3 };
        let b = EnergyBreakdown { compute_pj: 10, sram_pj: 20, dram_pj: 30 };
        let mut acc = EnergyBreakdown::ZERO;
        acc += a;
        acc += b;
        assert_eq!(acc, a + b);
        assert_eq!(acc.total_pj(), 66);
        // Order cannot matter: integers are associative and commutative.
        assert_eq!(a + b, b + a);
    }

    #[test]
    fn joule_formatting_scales() {
        assert!(fmt_joules(2.5).ends_with(" J"));
        assert!(fmt_joules(2.5e-3).ends_with("mJ"));
        assert!(fmt_joules(2.5e-6).ends_with("µJ"));
        assert!(fmt_joules(2.5e-9).ends_with("nJ"));
        assert!(fmt_joules(2.5e-12).ends_with("pJ"));
        assert_eq!(EnergyBreakdown::ZERO.to_string(), "0 pJ");
    }
}
