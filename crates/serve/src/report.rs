//! Serving outcomes and the per-run report.
//!
//! The report layer is deliberately passive: the runtime settles batches
//! in virtual-time order and pushes integers here — latencies into
//! fixed-bucket histograms, energies into fixed-point totals — so a
//! [`ServeReport`] is byte-identical whenever the virtual schedule is,
//! regardless of thread count, batch size or shard count. Every derived
//! metric (req/s, drop fraction, J/req, GOPS/W, SLO violation rate) is
//! computed from those integers on demand, never accumulated in floats.

use crate::config::ServeConfig;
use crate::energy::{fmt_joules, EnergyBreakdown};
use crate::histogram::{fmt_ns, LatencyHistogram};
use defa_model::workload::SloClass;
use std::fmt;

/// What happened to one request, indexed by request id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served: response digest plus the virtual-time latency split.
    Completed {
        /// Scenario the request drew.
        scenario: usize,
        /// SLO class the request was held to.
        slo: SloClass,
        /// Digest of the response features.
        digest: u64,
        /// Shard that served it.
        shard: usize,
        /// Batch it rode in (global batch counter).
        batch: u64,
        /// Admission-queue wait (batch start − arrival).
        queue_ns: u64,
        /// Service time including dispatch overhead and in-batch
        /// serialization (completion − batch start).
        compute_ns: u64,
        /// Modeled energy this request cost its backend (integer
        /// picojoules; see [`crate::energy`]).
        energy: EnergyBreakdown,
    },
    /// Rejected at admission: the queue was full.
    Dropped {
        /// Virtual arrival time of the rejected request.
        arrival_ns: u64,
    },
}

impl RequestOutcome {
    /// Whether a completed request blew its SLO budget (total latency
    /// above the class deadline). Drops never count here — they are
    /// accounted separately.
    pub fn violated_slo(&self) -> bool {
        match self {
            RequestOutcome::Completed { slo, queue_ns, compute_ns, .. } => {
                queue_ns + compute_ns > slo.deadline_ns()
            }
            RequestOutcome::Dropped { .. } => false,
        }
    }
}

/// The outcome of serving one trace at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Fleet display name: the backend's name, or the distinct backend
    /// names joined with `+` for a heterogeneous fleet.
    pub backend: String,
    /// The operating point served.
    pub config: ServeConfig,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by backpressure.
    pub dropped: u64,
    /// Completed requests whose total latency exceeded their SLO budget.
    pub slo_violations: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Sum of batch sizes (for the mean).
    pub batched_requests: u64,
    /// Admission-queue wait per completed request.
    pub queue: LatencyHistogram,
    /// Service time per completed request.
    pub compute: LatencyHistogram,
    /// End-to-end latency per completed request.
    pub total: LatencyHistogram,
    /// Virtual time at which the last batch finished.
    pub makespan_ns: u64,
    /// Total energy of all completed requests, in integer picojoules
    /// (fixed-point: byte-identical across thread counts, shard counts and
    /// batch sizes — see [`crate::energy`]).
    pub energy: EnergyBreakdown,
    /// Dense-equivalent attention FLOPs completed (sum over completed
    /// requests) — the numerator of the effective GOPS/W metric.
    pub dense_flops: u128,
    /// FNV fold of all per-request digests in id order (drops included as
    /// markers) — one number that pins every response bit.
    pub digest: u64,
    /// Per-request outcomes, indexed by request id.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServeReport {
    /// Completed requests per virtual second.
    pub fn achieved_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.completed as f64 / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Fraction of *observed arrivals* rejected by backpressure.
    ///
    /// The denominator is what actually arrived (`completed + dropped`),
    /// not the configured trace length — for a full trace the two
    /// coincide, but a partial-trace run must not silently under-report
    /// its drop rate.
    pub fn drop_fraction(&self) -> f64 {
        let arrivals = self.completed + self.dropped;
        if arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / arrivals as f64
        }
    }

    /// Fraction of completed requests that blew their SLO budget.
    pub fn slo_violation_fraction(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completed as f64
        }
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Mean energy per completed request in joules (0 when nothing
    /// completed).
    pub fn joules_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy.total_joules() / self.completed as f64
        }
    }

    /// Completed requests per joule (0 when no energy was spent).
    pub fn requests_per_joule(&self) -> f64 {
        let j = self.energy.total_joules();
        if j == 0.0 {
            0.0
        } else {
            self.completed as f64 / j
        }
    }

    /// Average power over the serving window in watts: total energy /
    /// makespan (0 for an empty run).
    pub fn average_power_w(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.energy.total_joules() / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Effective throughput in GOPS: dense-equivalent completed work /
    /// makespan (0 for an empty run).
    pub fn effective_gops(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.dense_flops as f64 / (self.makespan_ns as f64 * 1e-9) / 1e9
        }
    }

    /// Energy efficiency in GOPS/W — dense-equivalent work per energy,
    /// time cancelling out (0 when no energy was spent).
    pub fn gops_per_watt(&self) -> f64 {
        let j = self.energy.total_joules();
        if j == 0.0 {
            0.0
        } else {
            self.dense_flops as f64 / 1e9 / j
        }
    }

    /// Requests each shard completed, indexed by shard — the fleet-mix
    /// view routing policies are judged on.
    pub fn completed_per_shard(&self) -> Vec<u64> {
        let mut per = vec![0u64; self.config.shards];
        for o in &self.outcomes {
            if let RequestOutcome::Completed { shard, .. } = o {
                per[*shard] += 1;
            }
        }
        per
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serve report — {} backend", self.backend)?;
        writeln!(
            f,
            "  offered         : {:.1} req/s x {} requests ({} arrivals, {} shards, batch <= {}, queue {})",
            self.config.offered_load,
            self.config.n_requests,
            self.config.arrival.label(),
            self.config.shards,
            self.config.max_batch,
            self.config.queue_capacity,
        )?;
        writeln!(
            f,
            "  policy          : {} scheduler, {} router, {} drops",
            self.config.scheduler.name(),
            self.config.router.name(),
            self.config.drop.name(),
        )?;
        writeln!(
            f,
            "  served          : {} completed / {} dropped in {} batches (mean size {:.1}, {} SLO misses)",
            self.completed,
            self.dropped,
            self.batches,
            self.mean_batch_size(),
            self.slo_violations,
        )?;
        writeln!(
            f,
            "  throughput      : {:.1} req/s over {} (virtual)",
            self.achieved_rps(),
            fmt_ns(self.makespan_ns)
        )?;
        for (name, h) in
            [("queue", &self.queue), ("compute", &self.compute), ("total", &self.total)]
        {
            writeln!(
                f,
                "  {name:<7} latency : p50 {:>9}  p95 {:>9}  p99 {:>9}  mean {:>9}",
                fmt_ns(h.p50_ns()),
                fmt_ns(h.p95_ns()),
                fmt_ns(h.p99_ns()),
                fmt_ns(h.mean_ns()),
            )?;
        }
        writeln!(
            f,
            "  energy          : {} total ({}/req, {:.1} req/J, {:.1} W avg, {:.0} GOPS/W)",
            fmt_joules(self.energy.total_joules()),
            fmt_joules(self.joules_per_request()),
            self.requests_per_joule(),
            self.average_power_w(),
            self.gops_per_watt(),
        )?;
        Ok(())
    }
}
