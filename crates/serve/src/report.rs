//! Serving outcomes and the per-run report.
//!
//! The report layer is deliberately passive: the runtime settles batches
//! in virtual-time order and pushes integers here — latencies into
//! fixed-bucket histograms, energies into fixed-point totals — so a
//! [`ServeReport`] is byte-identical whenever the virtual schedule is,
//! regardless of thread count, batch size or shard count. Every derived
//! metric (req/s, drop fraction, J/req, GOPS/W, SLO violation rate) is
//! computed from those integers on demand, never accumulated in floats.

use crate::config::ServeConfig;
use crate::control::DvfsPoint;
use crate::energy::{fmt_joules, EnergyBreakdown};
use crate::histogram::{fmt_ns, LatencyHistogram};
use crate::obs::ObsReport;
use defa_model::workload::SloClass;
use std::fmt;

/// What happened to one request, indexed by request id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served: response digest plus the virtual-time latency split.
    Completed {
        /// Scenario the request drew.
        scenario: usize,
        /// SLO class the request was held to.
        slo: SloClass,
        /// Virtual arrival time (what the timeline attributes offered
        /// load by).
        arrival_ns: u64,
        /// Digest of the response features.
        digest: u64,
        /// Shard that served it.
        shard: usize,
        /// Batch it rode in (global batch counter).
        batch: u64,
        /// Admission-queue wait (batch start − arrival).
        queue_ns: u64,
        /// Service time including dispatch overhead and in-batch
        /// serialization (completion − batch start).
        compute_ns: u64,
        /// Modeled energy this request cost its backend (integer
        /// picojoules; see [`crate::energy`]).
        energy: EnergyBreakdown,
    },
    /// Rejected at admission: the queue was full.
    Dropped {
        /// Virtual arrival time of the rejected request.
        arrival_ns: u64,
    },
}

impl RequestOutcome {
    /// Whether a completed request blew its SLO budget (total latency
    /// above the class deadline). Drops never count here — they are
    /// accounted separately.
    pub fn violated_slo(&self) -> bool {
        match self {
            RequestOutcome::Completed { slo, queue_ns, compute_ns, .. } => {
                queue_ns + compute_ns > slo.deadline_ns()
            }
            RequestOutcome::Dropped { .. } => false,
        }
    }
}

/// Peak live-state accounting of the event loop — exact integers, so
/// the "memory is bounded by in-flight work, not trace length" contract
/// is asserted by tests and benches rather than assumed.
///
/// All counts are high-water marks over one run. They are *outputs* of
/// the same deterministic virtual schedule that pins the digests, so
/// they too are byte-identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Max requests alive at once: queued + riding an in-flight batch.
    pub peak_inflight: u64,
    /// Max pending events in the event list (all classes: the epoch
    /// boundary, the arrival cursor, and per-shard free events).
    pub peak_events: u64,
    /// Max depth of the settle-order reorder window that folds
    /// per-request digests back into id order.
    pub peak_reorder: u64,
    /// Epoch boundaries the control loop actually stepped (controller
    /// observed).
    pub epochs_stepped: u64,
    /// Epoch boundaries fast-forwarded over idle gaps with a quiescent
    /// controller (skip-ahead; see `Controller::quiescent`).
    pub epochs_skipped: u64,
}

/// One control epoch of a run: fleet state plus exact by-timestamp
/// accounting of the load that fell into its window.
///
/// Epochs are half-open windows `[start_ns, end_ns)` of the virtual
/// clock; the final epoch is truncated at the makespan and may therefore
/// be **zero-length** (makespan on a boundary). Every rate/mean method
/// guards that case and returns 0 instead of dividing by zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStat {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Window start (inclusive), virtual ns.
    pub start_ns: u64,
    /// Window end (exclusive), virtual ns; truncated to the makespan.
    pub end_ns: u64,
    /// Shards accepting new batches during the epoch.
    pub active_shards: usize,
    /// Clock the fleet dispatched at during the epoch.
    pub clock: DvfsPoint,
    /// Arrivals whose (virtual) arrival time fell in the window.
    pub arrivals: u64,
    /// Requests whose completion time fell in the window.
    pub completed: u64,
    /// Dropped arrivals whose arrival time fell in the window.
    pub dropped: u64,
    /// Completions in the window that blew their SLO budget.
    pub slo_violations: u64,
    /// Per-request energy of the window's completions (repriced for the
    /// clock their batch dispatched at).
    pub energy: EnergyBreakdown,
    /// Idle (static) energy of the window: Σ active shards' idle power ×
    /// window duration, in integer picojoules.
    pub static_pj: u128,
}

impl EpochStat {
    /// Window length in nanoseconds (0 for a boundary-aligned final
    /// epoch).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Offered rate over the window in requests per virtual second (0
    /// for a zero-length window).
    pub fn offered_rps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            0.0
        } else {
            self.arrivals as f64 / (d as f64 * 1e-9)
        }
    }

    /// Served rate over the window in requests per virtual second (0 for
    /// a zero-length window).
    pub fn served_rps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            0.0
        } else {
            self.completed as f64 / (d as f64 * 1e-9)
        }
    }

    /// Mean per-request energy of the window's completions in joules (0
    /// when nothing completed).
    pub fn joules_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy.total_joules() / self.completed as f64
        }
    }

    /// Average power over the window in watts — request energy plus
    /// static energy over the duration (0 for a zero-length window).
    pub fn average_power_w(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            0.0
        } else {
            (self.energy.total_pj() + self.static_pj) as f64 * 1e-12 / (d as f64 * 1e-9)
        }
    }
}

/// The outcome of serving one trace at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Fleet display name: the backend's name, or the distinct backend
    /// names joined with `+` for a heterogeneous fleet.
    pub backend: String,
    /// The operating point served.
    pub config: ServeConfig,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by backpressure.
    pub dropped: u64,
    /// Completed requests whose total latency exceeded their SLO budget.
    /// Under the session engine a session violates when its TTFT or any
    /// TBT blows the class streaming budget.
    pub slo_violations: u64,
    /// Iterations settled (prefill + decode steps). Equals `completed`
    /// under the legacy one-shot engine, where every request is a
    /// single-iteration session.
    pub iterations: u64,
    /// Session evictions forced by the per-shard state budget (each
    /// eviction prices a prefill recompute into the session's next
    /// decode step). Always 0 under the legacy one-shot engine.
    pub evictions: u64,
    /// Completed sessions whose time-to-first-token exceeded the class
    /// streaming budget ([`SloClass::streaming_budgets`]).
    pub ttft_violations: u64,
    /// Decode iterations whose time-between-tokens exceeded the class
    /// streaming budget. Always 0 under the legacy one-shot engine.
    pub tbt_violations: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Sum of batch sizes (for the mean).
    pub batched_requests: u64,
    /// Admission-queue wait per completed request.
    pub queue: LatencyHistogram,
    /// Service time per completed request.
    pub compute: LatencyHistogram,
    /// End-to-end latency per completed request. For a multi-iteration
    /// session this spans arrival to final-iteration settle, think times
    /// included.
    pub total: LatencyHistogram,
    /// Time to first token per completed session: first-iteration settle
    /// minus arrival. Under the legacy one-shot engine every request is
    /// a single-iteration session, so this equals `total`.
    pub ttft: LatencyHistogram,
    /// Time between tokens per decode iteration: settle minus the
    /// instant the iteration became ready (think time elapsed). Empty
    /// under the legacy one-shot engine.
    pub tbt: LatencyHistogram,
    /// Virtual time at which the last batch finished.
    pub makespan_ns: u64,
    /// Total energy of all completed requests, in integer picojoules
    /// (fixed-point: byte-identical across thread counts, shard counts and
    /// batch sizes — see [`crate::energy`]).
    pub energy: EnergyBreakdown,
    /// Dense-equivalent attention FLOPs completed (sum over completed
    /// requests) — the numerator of the effective GOPS/W metric.
    pub dense_flops: u128,
    /// FNV fold of all per-request digests in id order (drops included as
    /// markers) — one number that pins every response bit.
    pub digest: u64,
    /// Per-request outcomes for the *first*
    /// [`ServeConfig::outcome_capture`] request ids — a debug capture,
    /// indexed by request id within its (possibly truncated) prefix.
    /// Every aggregate field of the report covers all requests
    /// regardless of this cap; see the config field for the memory
    /// contract.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests each shard completed, indexed by shard — streamed at
    /// settle time, so it covers all requests even beyond the outcome
    /// capture cap.
    pub per_shard_completed: Vec<u64>,
    /// Peak live-state accounting of the event loop (exact integers).
    pub live: LiveStats,
    /// The control-epoch timeline covering `[0, makespan_ns)` — fleet
    /// state plus exact by-timestamp load/energy accounting per epoch.
    pub timeline: Vec<EpochStat>,
    /// Total idle (static) energy over the run in integer picojoules —
    /// the Σ of the timeline's `static_pj`. Kept separate from `energy`
    /// so per-request attribution (and its byte-compat pins) is
    /// untouched.
    pub static_energy_pj: u128,
    /// The observability section: recorded spans, the metrics registry
    /// and the wall-clock self-profile. Empty (and equal to
    /// [`ObsReport::disabled`]) unless [`ServeConfig::obs`] enabled a
    /// pillar; its `PartialEq` ignores the wall-clock profile, so
    /// report equality stays a virtual-schedule statement.
    pub obs: ObsReport,
}

impl ServeReport {
    /// Completed requests per virtual second.
    pub fn achieved_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.completed as f64 / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Fraction of *observed arrivals* rejected by backpressure.
    ///
    /// The denominator is what actually arrived (`completed + dropped`),
    /// not the configured trace length — for a full trace the two
    /// coincide, but a partial-trace run must not silently under-report
    /// its drop rate.
    pub fn drop_fraction(&self) -> f64 {
        let arrivals = self.completed + self.dropped;
        if arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / arrivals as f64
        }
    }

    /// Fraction of completed requests that blew their SLO budget.
    pub fn slo_violation_fraction(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completed as f64
        }
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Mean energy per completed request in joules (0 when nothing
    /// completed).
    pub fn joules_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy.total_joules() / self.completed as f64
        }
    }

    /// Completed requests per joule (0 when no energy was spent).
    pub fn requests_per_joule(&self) -> f64 {
        let j = self.energy.total_joules();
        if j == 0.0 {
            0.0
        } else {
            self.completed as f64 / j
        }
    }

    /// Average power over the serving window in watts: total energy /
    /// makespan (0 for an empty run).
    pub fn average_power_w(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.energy.total_joules() / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Effective throughput in GOPS: dense-equivalent completed work /
    /// makespan (0 for an empty run).
    pub fn effective_gops(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.dense_flops as f64 / (self.makespan_ns as f64 * 1e-9) / 1e9
        }
    }

    /// Energy efficiency in GOPS/W — dense-equivalent work per energy,
    /// time cancelling out (0 when no energy was spent).
    pub fn gops_per_watt(&self) -> f64 {
        let j = self.energy.total_joules();
        if j == 0.0 {
            0.0
        } else {
            self.dense_flops as f64 / 1e9 / j
        }
    }

    /// Average power including idle (static) energy, in watts: (request
    /// energy + static energy) / makespan. This is the number the DVFS
    /// governor is judged on — [`Self::average_power_w`] stays
    /// request-energy-only for backward comparability.
    pub fn average_power_with_static_w(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            (self.energy.total_pj() + self.static_energy_pj) as f64 * 1e-12
                / (self.makespan_ns as f64 * 1e-9)
        }
    }

    /// Smallest and largest active-shard counts over the timeline (the
    /// configured count twice for an empty timeline).
    pub fn shard_range(&self) -> (usize, usize) {
        let (mut lo, mut hi) = (usize::MAX, 0);
        for e in &self.timeline {
            lo = lo.min(e.active_shards);
            hi = hi.max(e.active_shards);
        }
        if self.timeline.is_empty() {
            (self.config.shards, self.config.shards)
        } else {
            (lo, hi)
        }
    }

    /// Slowest and fastest clocks over the timeline (nominal twice for an
    /// empty timeline).
    pub fn clock_range(&self) -> (DvfsPoint, DvfsPoint) {
        let mut lo = DvfsPoint::NOMINAL;
        let mut hi = DvfsPoint::NOMINAL;
        for (i, e) in self.timeline.iter().enumerate() {
            if i == 0 {
                lo = e.clock;
                hi = e.clock;
            }
            if e.clock.freq_mhz < lo.freq_mhz {
                lo = e.clock;
            }
            if e.clock.freq_mhz > hi.freq_mhz {
                hi = e.clock;
            }
        }
        (lo, hi)
    }

    /// Requests each shard completed, indexed by shard — the fleet-mix
    /// view routing policies are judged on.
    pub fn completed_per_shard(&self) -> Vec<u64> {
        self.per_shard_completed.clone()
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serve report — {} backend", self.backend)?;
        writeln!(
            f,
            "  offered         : {:.1} req/s x {} requests ({} arrivals, {} shards, batch <= {}, queue {})",
            self.config.offered_load,
            self.config.n_requests,
            self.config.arrival.label(),
            self.config.shards,
            self.config.max_batch,
            self.config.queue_capacity,
        )?;
        writeln!(
            f,
            "  policy          : {} scheduler, {} router, {} drops",
            self.config.scheduler.name(),
            self.config.router.name(),
            self.config.drop.name(),
        )?;
        writeln!(
            f,
            "  served          : {} completed / {} dropped in {} batches (mean size {:.1}, {} SLO misses)",
            self.completed,
            self.dropped,
            self.batches,
            self.mean_batch_size(),
            self.slo_violations,
        )?;
        writeln!(
            f,
            "  throughput      : {:.1} req/s over {} (virtual)",
            self.achieved_rps(),
            fmt_ns(self.makespan_ns)
        )?;
        for (name, h) in
            [("queue", &self.queue), ("compute", &self.compute), ("total", &self.total)]
        {
            writeln!(
                f,
                "  {name:<7} latency : p50 {:>9}  p95 {:>9}  p99 {:>9}  mean {:>9}",
                fmt_ns(h.p50_ns()),
                fmt_ns(h.p95_ns()),
                fmt_ns(h.p99_ns()),
                fmt_ns(h.mean_ns()),
            )?;
        }
        writeln!(
            f,
            "  streaming       : TTFT p99 {} ({} over budget), TBT p99 {} ({} over budget), \
             {} iterations, {} evictions",
            fmt_ns(self.ttft.p99_ns()),
            self.ttft_violations,
            fmt_ns(self.tbt.p99_ns()),
            self.tbt_violations,
            self.iterations,
            self.evictions,
        )?;
        writeln!(
            f,
            "  energy          : {} total ({}/req, {:.1} req/J, {:.1} W avg, {:.0} GOPS/W)",
            fmt_joules(self.energy.total_joules()),
            fmt_joules(self.joules_per_request()),
            self.requests_per_joule(),
            self.average_power_w(),
            self.gops_per_watt(),
        )?;
        let (lo_shards, hi_shards) = self.shard_range();
        let (lo_clock, hi_clock) = self.clock_range();
        writeln!(
            f,
            "  control         : {} over {} epochs of {} (shards {lo_shards}..{hi_shards}, \
             clock {}MHz..{}MHz, {} static, {:.1} W avg incl. static)",
            self.config.control.controller.name(),
            self.timeline.len(),
            fmt_ns(self.config.control.epoch_us.saturating_mul(1_000)),
            lo_clock.freq_mhz,
            hi_clock.freq_mhz,
            fmt_joules(self.static_energy_pj as f64 * 1e-12),
            self.average_power_with_static_w(),
        )?;
        writeln!(
            f,
            "  engine          : peak {} in-flight / {} events / {} reorder; {} epochs stepped, \
             {} skipped",
            self.live.peak_inflight,
            self.live.peak_events,
            self.live.peak_reorder,
            self.live.epochs_stepped,
            self.live.epochs_skipped,
        )?;
        if self.obs.enabled() {
            let snaps = self.obs.metrics.as_ref().map_or(0, |m| m.snapshots().len());
            writeln!(
                f,
                "  observability   : {} spans ({} sampled requests, {} overflow), {} metric \
                 snapshots, {} profiled wall",
                self.obs.events.len(),
                self.obs.sampled_requests,
                self.obs.events_dropped,
                snaps,
                fmt_ns(self.obs.profile.total_wall_ns()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(start_ns: u64, end_ns: u64) -> EpochStat {
        EpochStat {
            epoch: 0,
            start_ns,
            end_ns,
            active_shards: 2,
            clock: DvfsPoint::NOMINAL,
            arrivals: 10,
            completed: 8,
            dropped: 2,
            slo_violations: 1,
            energy: EnergyBreakdown { compute_pj: 1_000, sram_pj: 0, dram_pj: 0 },
            static_pj: 500,
        }
    }

    #[test]
    fn epoch_rates_divide_by_the_window() {
        let e = stat(0, 1_000_000); // 1 ms
        assert!((e.offered_rps() - 10_000.0).abs() < 1e-6);
        assert!((e.served_rps() - 8_000.0).abs() < 1e-6);
        assert!(e.average_power_w() > 0.0);
        assert!(e.joules_per_request() > 0.0);
    }

    #[test]
    fn zero_length_epochs_report_zero_not_nan() {
        // A makespan landing exactly on a boundary truncates the final
        // epoch to zero length; every rate must come back 0, not ±inf.
        let e = stat(5_000, 5_000);
        assert_eq!(e.duration_ns(), 0);
        assert_eq!(e.offered_rps(), 0.0);
        assert_eq!(e.served_rps(), 0.0);
        assert_eq!(e.average_power_w(), 0.0);
        // J/req is a per-completion mean, defined even for a zero window.
        assert!(e.joules_per_request() > 0.0);
        let empty = EpochStat { completed: 0, ..stat(5_000, 5_000) };
        assert_eq!(empty.joules_per_request(), 0.0);
    }
}
