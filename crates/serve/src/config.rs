//! Serving operating points: load, batching, and the three policy knobs.

use crate::admission::DropPolicy;
use crate::loadgen::ArrivalProcess;
use crate::router::RouterKind;
use crate::scheduler::SchedulerKind;
use crate::ServeError;

/// One serving operating point.
///
/// The first seven fields shape the load and the batching window; the
/// last four pick the policy at each layer (arrival process → admission
/// drop policy → scheduler → router). The defaults — Poisson, tail drop,
/// FIFO, round-robin — reproduce the PR 2/PR 3 runtime byte-for-byte,
/// pinned by `tests/tests/serving.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Offered load of the open-loop generator, requests per virtual
    /// second.
    pub offered_load: f64,
    /// Number of requests in the trace.
    pub n_requests: usize,
    /// Admission-queue capacity; arrivals beyond it invoke `drop`.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Oldest-request age (virtual µs) that forces a partial batch out.
    pub batch_deadline_us: u64,
    /// Fixed per-batch dispatch overhead (virtual µs) — the cost batching
    /// amortizes.
    pub batch_overhead_us: u64,
    /// Number of worker shards serving batches.
    pub shards: usize,
    /// How arrivals are spaced at the offered rate.
    pub arrival: ArrivalProcess,
    /// What happens to an arrival that finds the queue full.
    pub drop: DropPolicy,
    /// Which queued requests form the next batch.
    pub scheduler: SchedulerKind,
    /// Which shard a formed batch runs on.
    pub router: RouterKind,
}

impl ServeConfig {
    /// A reasonable operating point at a given offered load: queue of 64,
    /// batches of up to 8 with a 2 ms deadline, 50 µs dispatch overhead,
    /// two shards, and the default Poisson/FIFO/round-robin policies.
    pub fn at_load(offered_load: f64, n_requests: usize) -> Self {
        ServeConfig {
            offered_load,
            n_requests,
            queue_capacity: 64,
            max_batch: 8,
            batch_deadline_us: 2_000,
            batch_overhead_us: 50,
            shards: 2,
            arrival: ArrivalProcess::Poisson,
            drop: DropPolicy::RejectNewest,
            scheduler: SchedulerKind::Fifo,
            router: RouterKind::RoundRobin,
        }
    }

    /// Validates the configuration.
    ///
    /// Degenerate scalars (zero counts, zero deadline, non-finite or
    /// non-positive load) are rejected with
    /// [`ServeError::DegenerateConfig`] naming the offending field;
    /// cross-field inconsistencies with [`ServeError::InvalidConfig`].
    ///
    /// # Errors
    ///
    /// Returns the error variants above; never panics.
    pub fn validate(&self) -> Result<(), ServeError> {
        let degenerate =
            |field: &'static str, got: String| Err(ServeError::DegenerateConfig { field, got });
        if !(self.offered_load.is_finite() && self.offered_load > 0.0) {
            return degenerate(
                "offered_load",
                format!("{} (must be finite and positive)", self.offered_load),
            );
        }
        if self.n_requests == 0 {
            return degenerate("n_requests", "0 (must be at least 1)".into());
        }
        if self.queue_capacity == 0 {
            return degenerate("queue_capacity", "0 (must be at least 1)".into());
        }
        if self.max_batch == 0 {
            return degenerate("max_batch", "0 (must be at least 1)".into());
        }
        if self.batch_deadline_us == 0 {
            return degenerate(
                "batch_deadline_us",
                "0 (a zero batching window can never coalesce; use max_batch = 1 instead)".into(),
            );
        }
        if self.shards == 0 {
            return degenerate("shards", "0 (must be at least 1)".into());
        }
        if let ArrivalProcess::Bursty { burst } = self.arrival {
            if !(burst.is_finite() && burst > 1.0) {
                return degenerate(
                    "arrival.burst",
                    format!("{burst} (must be finite and exceed 1)"),
                );
            }
        }
        if self.max_batch > self.queue_capacity {
            return Err(ServeError::InvalidConfig(format!(
                "max_batch {} exceeds queue_capacity {} — full batches could never form",
                self.max_batch, self.queue_capacity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies_are_the_pr2_configuration() {
        let cfg = ServeConfig::at_load(1_000.0, 8);
        assert_eq!(cfg.arrival, ArrivalProcess::Poisson);
        assert_eq!(cfg.drop, DropPolicy::RejectNewest);
        assert_eq!(cfg.scheduler, SchedulerKind::Fifo);
        assert_eq!(cfg.router, RouterKind::RoundRobin);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn degenerate_scalars_name_their_field() {
        let base = ServeConfig::at_load(1_000.0, 8);
        for (cfg, field) in [
            (ServeConfig { offered_load: 0.0, ..base.clone() }, "offered_load"),
            (ServeConfig { offered_load: -3.0, ..base.clone() }, "offered_load"),
            (ServeConfig { offered_load: f64::NAN, ..base.clone() }, "offered_load"),
            (ServeConfig { offered_load: f64::INFINITY, ..base.clone() }, "offered_load"),
            (ServeConfig { n_requests: 0, ..base.clone() }, "n_requests"),
            (ServeConfig { queue_capacity: 0, ..base.clone() }, "queue_capacity"),
            (ServeConfig { max_batch: 0, ..base.clone() }, "max_batch"),
            (ServeConfig { batch_deadline_us: 0, ..base.clone() }, "batch_deadline_us"),
            (ServeConfig { shards: 0, ..base.clone() }, "shards"),
            (
                ServeConfig { arrival: ArrivalProcess::Bursty { burst: 1.0 }, ..base.clone() },
                "arrival.burst",
            ),
            (
                ServeConfig { arrival: ArrivalProcess::Bursty { burst: f64::NAN }, ..base.clone() },
                "arrival.burst",
            ),
        ] {
            match cfg.validate() {
                Err(ServeError::DegenerateConfig { field: f, .. }) => {
                    assert_eq!(f, field, "wrong field blamed");
                }
                other => panic!("{field}: expected DegenerateConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn cross_field_nonsense_stays_invalid_config() {
        let cfg =
            ServeConfig { max_batch: 100, queue_capacity: 10, ..ServeConfig::at_load(1.0, 1) };
        assert!(matches!(cfg.validate(), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn degenerate_errors_display_the_field() {
        let err =
            ServeConfig { max_batch: 0, ..ServeConfig::at_load(1.0, 1) }.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("max_batch"), "{msg}");
    }
}
