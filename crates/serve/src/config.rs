//! Serving operating points: load, batching, the three policy knobs,
//! and the epoch-stepped control loop.

use crate::admission::DropPolicy;
use crate::control::ControllerKind;
use crate::loadgen::ArrivalProcess;
use crate::obs::ObsConfig;
use crate::router::RouterKind;
use crate::scheduler::SchedulerKind;
use crate::ServeError;
use defa_model::workload::SessionProfile;

/// The epoch-stepped fleet-control configuration.
///
/// The runtime always divides virtual time into `epoch_us` epochs — the
/// per-epoch timeline in [`crate::ServeReport`] exists for every run —
/// but only a non-[`ControllerKind::NoOp`] controller actually *acts* on
/// the boundaries. `max_shards` is the fleet ceiling an autoscaler may
/// grow into; the fleet passed to `run_fleet` (or cloned by `run`) must
/// cover it, and shards beyond [`ServeConfig::shards`] start inactive.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlConfig {
    /// Control-epoch length in virtual microseconds.
    pub epoch_us: u64,
    /// Fleet-size ceiling; 0 means "exactly [`ServeConfig::shards`]" (no
    /// growth headroom).
    pub max_shards: usize,
    /// The controller observed/actuated at epoch boundaries.
    pub controller: ControllerKind,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig { epoch_us: 1_000, max_shards: 0, controller: ControllerKind::NoOp }
    }
}

impl ControlConfig {
    /// The number of shards that must exist (active or not) for a run
    /// with `shards` initially active.
    pub fn fleet_size(&self, shards: usize) -> usize {
        if self.max_shards == 0 {
            shards
        } else {
            self.max_shards.max(shards)
        }
    }
}

/// The session-serving configuration: session shapes, the per-shard
/// state budget (the KV-cache analogue) and the batching discipline.
///
/// The default — [`SessionProfile::ONE_SHOT`], unlimited budget,
/// continuous batching — keeps every request a single-iteration session
/// and routes the run through the legacy one-shot engine, byte-identical
/// to every pre-session pin. Only a multi-iteration profile
/// ([`SessionConfig::enabled`]) engages the iteration-level session
/// engine; `state_budget` and `gang` are inert for one-shot profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Seeded session-length / think-time distributions. Request `id`
    /// becomes the prefill of session `id`.
    pub profile: SessionProfile,
    /// Maximum sessions whose state may be resident on one shard at once
    /// (the modeled KV-cache capacity); 0 means unlimited. Admitting a
    /// prefill beyond the budget deterministically evicts the
    /// least-recently-settled resident session, whose next iteration must
    /// then *recompute* (pay a prefill plus its decode).
    pub state_budget: usize,
    /// Gang scheduling: a session, once admitted, occupies its shard for
    /// *all* its iterations (think times block the shard). The baseline
    /// continuous batching (`false`) releases the shard between
    /// iterations so new sessions join the batch between steps.
    pub gang: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { profile: SessionProfile::ONE_SHOT, state_budget: 0, gang: false }
    }
}

impl SessionConfig {
    /// Whether this configuration engages the session engine: only a
    /// multi-iteration profile does. One-shot profiles always run the
    /// legacy engine regardless of `state_budget`/`gang` (a session of
    /// length 1 holds no state between iterations, so both knobs are
    /// vacuous), which is what pins `session_len = 1` byte-identical to
    /// the pre-session runtime.
    pub fn enabled(&self) -> bool {
        !self.profile.is_one_shot()
    }
}

/// One serving operating point.
///
/// The first seven fields shape the load and the batching window; the
/// next four pick the policy at each layer (arrival process → admission
/// drop policy → scheduler → router); `control` closes the loop at epoch
/// granularity. The defaults — Poisson, tail drop, FIFO, round-robin, a
/// static fleet — reproduce the PR 2/PR 3 runtime byte-for-byte, pinned
/// by `tests/tests/serving.rs` and `tests/tests/control.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Offered load of the open-loop generator, requests per virtual
    /// second.
    pub offered_load: f64,
    /// Number of requests in the trace.
    pub n_requests: usize,
    /// Admission-queue capacity; arrivals beyond it invoke `drop`.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Oldest-request age (virtual µs) that forces a partial batch out.
    pub batch_deadline_us: u64,
    /// Fixed per-batch dispatch overhead (virtual µs) — the cost batching
    /// amortizes.
    pub batch_overhead_us: u64,
    /// Number of worker shards serving batches.
    pub shards: usize,
    /// How arrivals are spaced at the offered rate.
    pub arrival: ArrivalProcess,
    /// What happens to an arrival that finds the queue full.
    pub drop: DropPolicy,
    /// Which queued requests form the next batch.
    pub scheduler: SchedulerKind,
    /// Which shard a formed batch runs on.
    pub router: RouterKind,
    /// The epoch-stepped fleet-control loop (epoch length, shard
    /// ceiling, controller).
    pub control: ControlConfig,
    /// Per-request outcome capture cap: the runtime keeps full
    /// [`crate::RequestOutcome`] records only for request ids below this
    /// bound ([`ServeReport::outcomes`](crate::ServeReport::outcomes) is
    /// a *prefix capture*, not the whole trace). Every aggregate —
    /// digests, histograms, energy, the timeline — is streamed exactly
    /// for **all** requests regardless; the cap only bounds the debug
    /// records, which is what keeps a 10M-request run in constant
    /// memory. Set 0 to capture nothing, `usize::MAX` to capture
    /// everything.
    pub outcome_capture: usize,
    /// The observability layer: span tracing, the metrics registry and
    /// wall-clock self-profiling. Defaults to fully disabled — the
    /// zero-overhead path every pre-observability pin runs on.
    pub obs: ObsConfig,
    /// Session shapes, per-shard state budget and batching discipline.
    /// Defaults to one-shot sessions — the legacy engine path.
    pub sessions: SessionConfig,
}

/// Default [`ServeConfig::outcome_capture`]: large enough that every
/// toy/test scale keeps full per-request outcomes (all existing pins
/// predate the cap), small enough that million-request runs stay
/// bounded.
pub const DEFAULT_OUTCOME_CAPTURE: usize = 4_096;

impl ServeConfig {
    /// A reasonable operating point at a given offered load: queue of 64,
    /// batches of up to 8 with a 2 ms deadline, 50 µs dispatch overhead,
    /// two shards, and the default Poisson/FIFO/round-robin policies.
    pub fn at_load(offered_load: f64, n_requests: usize) -> Self {
        ServeConfig {
            offered_load,
            n_requests,
            queue_capacity: 64,
            max_batch: 8,
            batch_deadline_us: 2_000,
            batch_overhead_us: 50,
            shards: 2,
            arrival: ArrivalProcess::Poisson,
            drop: DropPolicy::RejectNewest,
            scheduler: SchedulerKind::Fifo,
            router: RouterKind::RoundRobin,
            control: ControlConfig::default(),
            outcome_capture: DEFAULT_OUTCOME_CAPTURE,
            obs: ObsConfig::default(),
            sessions: SessionConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// Degenerate scalars (zero counts, zero deadline, non-finite or
    /// non-positive load) are rejected with
    /// [`ServeError::DegenerateConfig`] naming the offending field;
    /// cross-field inconsistencies with [`ServeError::InvalidConfig`].
    ///
    /// # Errors
    ///
    /// Returns the error variants above; never panics.
    pub fn validate(&self) -> Result<(), ServeError> {
        let degenerate =
            |field: &'static str, got: String| Err(ServeError::DegenerateConfig { field, got });
        if !(self.offered_load.is_finite() && self.offered_load > 0.0) {
            return degenerate(
                "offered_load",
                format!("{} (must be finite and positive)", self.offered_load),
            );
        }
        if self.n_requests == 0 {
            return degenerate("n_requests", "0 (must be at least 1)".into());
        }
        if self.queue_capacity == 0 {
            return degenerate("queue_capacity", "0 (must be at least 1)".into());
        }
        if self.max_batch == 0 {
            return degenerate("max_batch", "0 (must be at least 1)".into());
        }
        if self.batch_deadline_us == 0 {
            return degenerate(
                "batch_deadline_us",
                "0 (a zero batching window can never coalesce; use max_batch = 1 instead)".into(),
            );
        }
        if self.shards == 0 {
            return degenerate("shards", "0 (must be at least 1)".into());
        }
        match &self.arrival {
            ArrivalProcess::Bursty { burst } => {
                if !(burst.is_finite() && *burst > 1.0) {
                    return degenerate(
                        "arrival.burst",
                        format!("{burst} (must be finite and exceed 1)"),
                    );
                }
            }
            ArrivalProcess::Trace(schedule) => {
                if schedule.segments.is_empty() {
                    return degenerate("arrival.trace", "no segments".into());
                }
                for (i, seg) in schedule.segments.iter().enumerate() {
                    if !(seg.rate_mult.is_finite() && seg.rate_mult >= 0.0) {
                        return degenerate(
                            "arrival.trace",
                            format!(
                                "segment {i} rate_mult {} (must be finite and >= 0)",
                                seg.rate_mult
                            ),
                        );
                    }
                    if let crate::loadgen::SegmentProcess::Bursty { burst } = seg.process {
                        if !(burst.is_finite() && burst > 1.0) {
                            return degenerate(
                                "arrival.trace",
                                format!("segment {i} burst {burst} (must exceed 1)"),
                            );
                        }
                    }
                }
                if !schedule.can_arrive() {
                    return degenerate(
                        "arrival.trace",
                        "no segment with positive duration and positive rate — the schedule \
                         could never produce an arrival"
                            .into(),
                    );
                }
                // offered_load is already known positive (checked first).
                if !schedule.productive_at(self.offered_load) {
                    return degenerate(
                        "arrival.trace",
                        format!(
                            "no segment can fire at offered_load {} — every productive window \
                             is uniform-paced with a gap longer than the window itself",
                            self.offered_load
                        ),
                    );
                }
            }
            ArrivalProcess::Poisson | ArrivalProcess::Uniform => {}
        }
        if self.control.epoch_us == 0 {
            return degenerate("control.epoch_us", "0 (must be at least 1)".into());
        }
        if !(self.obs.trace_sample.is_finite() && (0.0..=1.0).contains(&self.obs.trace_sample)) {
            return degenerate(
                "obs.trace_sample",
                format!("{} (must be a finite fraction in [0, 1])", self.obs.trace_sample),
            );
        }
        if self.obs.tracing && self.obs.trace_buffer == 0 {
            return degenerate(
                "obs.trace_buffer",
                "0 (tracing is enabled; the span buffer needs capacity)".into(),
            );
        }
        if self.obs.metrics && self.obs.metrics_buffer == 0 {
            return degenerate(
                "obs.metrics_buffer",
                "0 (metrics are enabled; the snapshot series needs capacity)".into(),
            );
        }
        if self.sessions.profile.min_len == 0 {
            return degenerate(
                "sessions.profile.min_len",
                "0 (a session runs at least one iteration)".into(),
            );
        }
        if self.sessions.profile.max_len < self.sessions.profile.min_len {
            return degenerate(
                "sessions.profile.max_len",
                format!(
                    "{} (below min_len {})",
                    self.sessions.profile.max_len, self.sessions.profile.min_len
                ),
            );
        }
        if self.sessions.enabled() && !matches!(self.control.controller, ControllerKind::NoOp) {
            return Err(ServeError::InvalidConfig(format!(
                "session serving does not yet support fleet controllers (controller {:?} with a \
                 multi-iteration session profile); use ControllerKind::NoOp",
                self.control.controller
            )));
        }
        if self.control.max_shards != 0 && self.control.max_shards < self.shards {
            return Err(ServeError::InvalidConfig(format!(
                "control.max_shards {} below shards {} — the initial fleet would not fit its \
                 own ceiling",
                self.control.max_shards, self.shards
            )));
        }
        if self.max_batch > self.queue_capacity {
            return Err(ServeError::InvalidConfig(format!(
                "max_batch {} exceeds queue_capacity {} — full batches could never form",
                self.max_batch, self.queue_capacity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies_are_the_pr2_configuration() {
        let cfg = ServeConfig::at_load(1_000.0, 8);
        assert_eq!(cfg.arrival, ArrivalProcess::Poisson);
        assert_eq!(cfg.drop, DropPolicy::RejectNewest);
        assert_eq!(cfg.scheduler, SchedulerKind::Fifo);
        assert_eq!(cfg.router, RouterKind::RoundRobin);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn degenerate_scalars_name_their_field() {
        let base = ServeConfig::at_load(1_000.0, 8);
        for (cfg, field) in [
            (ServeConfig { offered_load: 0.0, ..base.clone() }, "offered_load"),
            (ServeConfig { offered_load: -3.0, ..base.clone() }, "offered_load"),
            (ServeConfig { offered_load: f64::NAN, ..base.clone() }, "offered_load"),
            (ServeConfig { offered_load: f64::INFINITY, ..base.clone() }, "offered_load"),
            (ServeConfig { n_requests: 0, ..base.clone() }, "n_requests"),
            (ServeConfig { queue_capacity: 0, ..base.clone() }, "queue_capacity"),
            (ServeConfig { max_batch: 0, ..base.clone() }, "max_batch"),
            (ServeConfig { batch_deadline_us: 0, ..base.clone() }, "batch_deadline_us"),
            (ServeConfig { shards: 0, ..base.clone() }, "shards"),
            (
                ServeConfig { arrival: ArrivalProcess::Bursty { burst: 1.0 }, ..base.clone() },
                "arrival.burst",
            ),
            (
                ServeConfig { arrival: ArrivalProcess::Bursty { burst: f64::NAN }, ..base.clone() },
                "arrival.burst",
            ),
            (
                ServeConfig {
                    arrival: ArrivalProcess::Trace(crate::loadgen::TraceSchedule::new(
                        "dead",
                        vec![crate::loadgen::RateSegment::poisson(1_000, 0.0)],
                    )),
                    ..base.clone()
                },
                "arrival.trace",
            ),
            (
                ServeConfig {
                    arrival: ArrivalProcess::Trace(crate::loadgen::TraceSchedule::new(
                        "nan",
                        vec![crate::loadgen::RateSegment::poisson(1_000, f64::NAN)],
                    )),
                    ..base.clone()
                },
                "arrival.trace",
            ),
            (
                // Uniform window shorter than its own gap at this load:
                // deterministically silent, must be rejected up front.
                ServeConfig {
                    offered_load: 100.0,
                    arrival: ArrivalProcess::Trace(crate::loadgen::TraceSchedule::new(
                        "stuck",
                        vec![crate::loadgen::RateSegment {
                            duration_us: 1_000,
                            rate_mult: 1.0,
                            process: crate::loadgen::SegmentProcess::Uniform,
                        }],
                    )),
                    ..base.clone()
                },
                "arrival.trace",
            ),
            (
                ServeConfig {
                    control: ControlConfig { epoch_us: 0, ..ControlConfig::default() },
                    ..base.clone()
                },
                "control.epoch_us",
            ),
            (
                ServeConfig { obs: crate::obs::ObsConfig::tracing_at(1.5), ..base.clone() },
                "obs.trace_sample",
            ),
            (
                ServeConfig { obs: crate::obs::ObsConfig::tracing_at(-0.1), ..base.clone() },
                "obs.trace_sample",
            ),
            (
                ServeConfig { obs: crate::obs::ObsConfig::tracing_at(f64::NAN), ..base.clone() },
                "obs.trace_sample",
            ),
            (
                ServeConfig {
                    obs: crate::obs::ObsConfig {
                        trace_buffer: 0,
                        ..crate::obs::ObsConfig::tracing_at(1.0)
                    },
                    ..base.clone()
                },
                "obs.trace_buffer",
            ),
            (
                ServeConfig {
                    obs: crate::obs::ObsConfig {
                        metrics_buffer: 0,
                        ..crate::obs::ObsConfig::disabled().with_metrics()
                    },
                    ..base.clone()
                },
                "obs.metrics_buffer",
            ),
            (
                ServeConfig {
                    sessions: SessionConfig {
                        profile: SessionProfile { min_len: 0, max_len: 1, think_mean_us: 0 },
                        ..SessionConfig::default()
                    },
                    ..base.clone()
                },
                "sessions.profile.min_len",
            ),
            (
                ServeConfig {
                    sessions: SessionConfig {
                        profile: SessionProfile { min_len: 4, max_len: 2, think_mean_us: 0 },
                        ..SessionConfig::default()
                    },
                    ..base.clone()
                },
                "sessions.profile.max_len",
            ),
        ] {
            match cfg.validate() {
                Err(ServeError::DegenerateConfig { field: f, .. }) => {
                    assert_eq!(f, field, "wrong field blamed");
                }
                other => panic!("{field}: expected DegenerateConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn cross_field_nonsense_stays_invalid_config() {
        let cfg =
            ServeConfig { max_batch: 100, queue_capacity: 10, ..ServeConfig::at_load(1.0, 1) };
        assert!(matches!(cfg.validate(), Err(ServeError::InvalidConfig(_))));
        let ceiling = ServeConfig {
            shards: 4,
            control: ControlConfig { max_shards: 2, ..ControlConfig::default() },
            ..ServeConfig::at_load(1.0, 1)
        };
        assert!(matches!(ceiling.validate(), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn session_configs_gate_the_engine_and_reject_controllers() {
        // The default is one-shot: the legacy engine, knobs inert.
        let base = ServeConfig::at_load(1.0, 1);
        assert!(!base.sessions.enabled());
        assert!(base.validate().is_ok());
        // state_budget / gang on a one-shot profile stay on the legacy
        // path (and validate — they are vacuous, not wrong).
        let inert = ServeConfig {
            sessions: SessionConfig { state_budget: 2, gang: true, ..SessionConfig::default() },
            ..base.clone()
        };
        assert!(!inert.sessions.enabled());
        assert!(inert.validate().is_ok());
        // A multi-iteration profile engages the session engine…
        let multi = SessionConfig {
            profile: SessionProfile { min_len: 1, max_len: 4, think_mean_us: 100 },
            ..SessionConfig::default()
        };
        assert!(multi.enabled());
        assert!(ServeConfig { sessions: multi.clone(), ..base.clone() }.validate().is_ok());
        // …and refuses non-NoOp fleet controllers for now.
        let controlled = ServeConfig {
            sessions: multi,
            control: ControlConfig {
                max_shards: 4,
                controller: ControllerKind::Autoscaler(Default::default()),
                ..ControlConfig::default()
            },
            ..base
        };
        assert!(matches!(controlled.validate(), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn fleet_size_defaults_to_shards_and_respects_the_ceiling() {
        assert_eq!(ControlConfig::default().fleet_size(3), 3);
        let ctl = ControlConfig { max_shards: 8, ..ControlConfig::default() };
        assert_eq!(ctl.fleet_size(2), 8);
        assert_eq!(ctl.fleet_size(8), 8);
    }

    #[test]
    fn degenerate_errors_display_the_field() {
        let err =
            ServeConfig { max_batch: 0, ..ServeConfig::at_load(1.0, 1) }.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("max_batch"), "{msg}");
    }
}
