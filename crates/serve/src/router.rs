//! Shard-selection policy: which shard the next batch runs on.
//!
//! A shard is one backend instance pinned to one worker; a *fleet* is the
//! full set of shards, and nothing requires them to wrap the same
//! backend — a heterogeneous fleet mixes, say, GPU-modeled dense shards
//! with simulated-accelerator shards, and the router is where the mix
//! becomes a policy question: send work wherever it finishes soonest
//! ([`LatencyAwareRouter`]), wherever it costs the least energy
//! ([`EnergyAwareRouter`]), wherever the backlog is shortest
//! ([`LeastOutstandingRouter`]), or just deal batches out in turn
//! ([`RoundRobinRouter`], the PR 2 behaviour).
//!
//! # Determinism contract
//!
//! Routing sees only virtual-time state ([`ShardView`]): settled free
//! times and per-shard scenario-mean cost/energy ratings, all pure
//! functions of the seed and the cost models. A router must be a pure
//! function of `(batch index, shard views)` with deterministic
//! tie-breaks (lowest shard index), so the schedule — and therefore the
//! whole `ServeReport` — never observes thread timing.
//!
//! Routers that read `free_ns` must return `true` from
//! [`Router::needs_fleet_state`]; the runtime then settles every
//! in-flight batch before routing, trading pipelining for an exact view.
//! [`RoundRobinRouter`] opts out, which is what lets the default
//! configuration keep up to one batch in flight per shard — exactly the
//! PR 2 execution and its byte-identical reports.

/// What a router may know about one shard when placing a batch.
///
/// The estimate fields are folded once per run from the fleet's memoized
/// [`crate::cost::CostTable`]s (nominal rows — exactly the backends'
/// live analytic estimators); routing never re-runs an estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// Shard index.
    pub shard: usize,
    /// Virtual time at which the shard is (last known to be) free. Exact
    /// for routers that request fleet state, possibly stale otherwise.
    pub free_ns: u64,
    /// Estimated wall of one *full* batch on this shard: dispatch
    /// overhead plus `max_batch` scenario-mean requests — the natural
    /// unit for both finish-time and backlog comparisons, since a shard's
    /// clock advances a batch at a time.
    pub est_batch_ns: u64,
    /// Scenario-mean modeled energy of one request on this shard's
    /// backend, in picojoules (routing estimate, not accounting).
    pub est_energy_pj: u128,
    /// Scenario-mean estimated *prefill* time of one session iteration 0
    /// on this shard ([`crate::Backend::estimate_prefill_ns`]). Equal to
    /// the per-request estimate behind `est_batch_ns` on phase-agnostic
    /// backends; diverges on xLLM-style prefill-/decode-optimized fleets,
    /// which is what makes phase-aware routing expressible.
    pub est_prefill_ns: u64,
    /// Scenario-mean estimated *decode* iteration time on this shard
    /// ([`crate::Backend::estimate_decode_ns`]).
    pub est_decode_ns: u64,
}

/// Chooses the shard the next batch runs on.
pub trait Router: Send + Sync {
    /// Short display name for tables and reports.
    fn name(&self) -> &'static str;

    /// Whether [`Self::route`] reads `free_ns` and therefore needs every
    /// in-flight batch settled first. Defaults to `true` (exact view);
    /// stateless routers override to keep the execution pipelined.
    fn needs_fleet_state(&self) -> bool {
        true
    }

    /// Picks a shard for global batch number `batch` given one view per
    /// *routable* shard (always non-empty, ordered by shard index —
    /// shards drained by the control loop are filtered out, so
    /// [`ShardView::shard`] may skip indices). Returns the **position in
    /// `shards`** of the chosen view; the runtime maps it back to the
    /// physical shard. `now_ns` is the virtual decision time — the
    /// earliest moment the batch could start — so backlog-bounded
    /// policies can measure a shard's lead against *now* rather than
    /// against an idle shard's frozen clock.
    fn route(&self, batch: u64, now_ns: u64, shards: &[ShardView]) -> usize;
}

/// Deals batches out in turn: batch `b` runs on shard `b mod n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinRouter;

impl Router for RoundRobinRouter {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn needs_fleet_state(&self) -> bool {
        false
    }

    fn route(&self, batch: u64, _now_ns: u64, shards: &[ShardView]) -> usize {
        (batch % shards.len() as u64) as usize
    }
}

/// Sends the batch to the shard that frees up earliest (join the shortest
/// virtual backlog); ties go to the lowest shard index.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastOutstandingRouter;

impl Router for LeastOutstandingRouter {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn route(&self, _batch: u64, _now_ns: u64, shards: &[ShardView]) -> usize {
        shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| (s.free_ns, s.shard))
            .expect("fleet non-empty")
            .0
    }
}

/// Minimizes the batch's estimated *finish* time: the shard's free time
/// (no earlier than the decision time) plus its estimated batch wall
/// ([`ShardView::est_batch_ns`] — dispatch overhead and a full batch of
/// mean requests). On a homogeneous fleet this is
/// [`LeastOutstandingRouter`]; on a mixed fleet it weighs a fast busy
/// shard against a slow idle one.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyAwareRouter;

impl Router for LatencyAwareRouter {
    fn name(&self) -> &'static str {
        "latency-aware"
    }

    fn route(&self, _batch: u64, now_ns: u64, shards: &[ShardView]) -> usize {
        shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| (s.free_ns.max(now_ns).saturating_add(s.est_batch_ns), s.shard))
            .expect("fleet non-empty")
            .0
    }
}

/// How many fleet-max batch walls of backlog an energy-preferred shard
/// may accumulate past the decision time before [`EnergyAwareRouter`]
/// spills work to the next-cheapest shard.
const ENERGY_BACKLOG_SLACK: u64 = 4;

/// Greedy energy-first routing with a backlog bound: place the batch on
/// the lowest-energy shard whose backlog has not run more than
/// [`ENERGY_BACKLOG_SLACK`] × the fleet's largest estimated batch wall
/// past the decision time; if every efficient shard is saturated, fall
/// back to the earliest-free one. On a dense+accelerator fleet with
/// headroom this drains everything through the accelerator; under
/// sustained overload the bound spills the excess so tail latency cannot
/// grow without limit.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAwareRouter;

impl Router for EnergyAwareRouter {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn route(&self, _batch: u64, now_ns: u64, shards: &[ShardView]) -> usize {
        let max_batch_ns = shards.iter().map(|s| s.est_batch_ns).max().expect("fleet non-empty");
        shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.free_ns.saturating_sub(now_ns)
                    <= ENERGY_BACKLOG_SLACK.saturating_mul(max_batch_ns)
            })
            .min_by_key(|(_, s)| (s.est_energy_pj, s.free_ns, s.shard))
            .or_else(|| shards.iter().enumerate().min_by_key(|(_, s)| (s.free_ns, s.shard)))
            .expect("fleet non-empty")
            .0
    }
}

/// The shipped routing policies, for config, sweeps and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// [`RoundRobinRouter`] (the default — byte-compatible with PR 2/PR 3).
    #[default]
    RoundRobin,
    /// [`LeastOutstandingRouter`].
    LeastOutstanding,
    /// [`LatencyAwareRouter`].
    LatencyAware,
    /// [`EnergyAwareRouter`].
    EnergyAware,
}

impl RouterKind {
    /// All policies in presentation order.
    pub fn all() -> [RouterKind; 4] {
        [
            RouterKind::RoundRobin,
            RouterKind::LeastOutstanding,
            RouterKind::LatencyAware,
            RouterKind::EnergyAware,
        ]
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::LatencyAware => "latency-aware",
            RouterKind::EnergyAware => "energy-aware",
        }
    }

    /// Builds the router.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobinRouter),
            RouterKind::LeastOutstanding => Box::new(LeastOutstandingRouter),
            RouterKind::LatencyAware => Box::new(LatencyAwareRouter),
            RouterKind::EnergyAware => Box::new(EnergyAwareRouter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(specs: &[(u64, u64, u128)]) -> Vec<ShardView> {
        specs
            .iter()
            .enumerate()
            .map(|(shard, &(free_ns, est_cost_ns, est_energy_pj))| ShardView {
                shard,
                free_ns,
                est_batch_ns: 4 * est_cost_ns, // a 4-deep batch, no overhead
                est_energy_pj,
                est_prefill_ns: est_cost_ns,
                est_decode_ns: (est_cost_ns / 8).max(1),
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_without_fleet_state() {
        let v = views(&[(0, 100, 10), (0, 100, 10), (0, 100, 10)]);
        let r = RoundRobinRouter;
        assert!(!r.needs_fleet_state());
        assert_eq!((0..6).map(|b| r.route(b, 0, &v)).collect::<Vec<_>>(), [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_joins_the_shortest_backlog() {
        let v = views(&[(500, 100, 10), (200, 100, 10), (200, 100, 10)]);
        // Shard 1 and 2 tie on free time; lowest index wins.
        assert_eq!(LeastOutstandingRouter.route(0, 0, &v), 1);
    }

    #[test]
    fn latency_aware_weighs_speed_against_backlog() {
        // Shard 0: free at 100 but slow (4000 ns batch wall) -> ~4100.
        // Shard 1: free at 500 but fast (400 ns batch wall)  -> ~900.
        let v = views(&[(100, 1_000, 10), (500, 100, 10)]);
        assert_eq!(LatencyAwareRouter.route(0, 0, &v), 1);
        // A decision time past both free times erases the backlog
        // difference: only the batch wall is left, so the fast shard wins.
        assert_eq!(LatencyAwareRouter.route(0, 10_000, &v), 1);
        // The batch wall (not one request's cost) is what is minimized:
        // a slow shard free now loses to a fast shard busy for a while.
        let batchy = views(&[(0, 1_000, 10), (3_000, 100, 10)]);
        assert_eq!(LatencyAwareRouter.route(0, 0, &batchy), 1, "4000 vs 3400 finish");
        // On a homogeneous fleet it degenerates to least-outstanding.
        let homo = views(&[(500, 100, 10), (200, 100, 10)]);
        assert_eq!(LatencyAwareRouter.route(0, 0, &homo), 1);
    }

    #[test]
    fn energy_aware_prefers_the_efficient_shard_until_saturated() {
        // Fleet-max batch wall is 400 ns, so the backlog bound is 1600 ns
        // past the decision time. Shard 1 is 1000x cheaper on energy: it
        // takes the batch while its lead stays inside the bound…
        let fresh = views(&[(0, 100, 10_000), (1_500, 100, 10)]);
        assert_eq!(EnergyAwareRouter.route(0, 0, &fresh), 1);
        // …but spills to the inefficient shard once it has run too far
        // past the decision time.
        let saturated = views(&[(0, 100, 10_000), (5_000, 100, 10)]);
        assert_eq!(EnergyAwareRouter.route(0, 0, &saturated), 0);
        // A later decision time forgives the same absolute backlog: the
        // efficient shard's *lead over now* is what is bounded.
        assert_eq!(EnergyAwareRouter.route(0, 4_000, &saturated), 1);
    }

    #[test]
    fn routers_return_positions_when_shard_indices_have_gaps() {
        // A control-drained fleet: shards 0 and 3 were drained, so the
        // router sees views for physical shards 1 and 2 only. Routers
        // must return the *position* (0 or 1), not the physical index.
        let v = vec![
            ShardView {
                shard: 1,
                free_ns: 900,
                est_batch_ns: 400,
                est_energy_pj: 10,
                est_prefill_ns: 100,
                est_decode_ns: 12,
            },
            ShardView {
                shard: 2,
                free_ns: 100,
                est_batch_ns: 400,
                est_energy_pj: 10_000,
                est_prefill_ns: 100,
                est_decode_ns: 12,
            },
        ];
        assert_eq!(LeastOutstandingRouter.route(0, 0, &v), 1, "shard 2 is at position 1");
        assert_eq!(LatencyAwareRouter.route(0, 0, &v), 1);
        assert_eq!(EnergyAwareRouter.route(0, 0, &v), 0, "cheapest shard 1 is at position 0");
        assert_eq!(RoundRobinRouter.route(3, 0, &v), 1, "modulo over the routable count");
    }

    #[test]
    fn kinds_build_what_they_name() {
        for kind in RouterKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!(!RouterKind::RoundRobin.build().needs_fleet_state());
        assert!(RouterKind::EnergyAware.build().needs_fleet_state());
    }
}
