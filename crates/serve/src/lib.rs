//! `defa-serve`: a batched multi-backend inference runtime for the DEFA
//! reproduction.
//!
//! The paper's accelerator argument is about *throughput under a stream of
//! detection queries*; this crate supplies the serving layer that turns
//! the workspace's single-run pipelines into a service:
//!
//! ```text
//!  load generator ──> bounded queue ──> dynamic batcher ──> shard 0 ──┐
//!  (seeded, open       (backpressure:    (size- or deadline- shard 1 ──┤──> latency
//!   loop, multi-        overflow drops)   triggered)          ...      │    histograms,
//!   scenario)                                                shard S ──┘    ServeReport
//! ```
//!
//! * [`loadgen`] derives a Poisson arrival trace from a seed;
//!   [`defa_model::workload::RequestGenerator`] materializes each request
//!   (scenario pick + fresh feature pyramid) purely from `(seed, id)`.
//! * [`runtime`] admits arrivals into a bounded FIFO, coalesces them into
//!   dynamic batches and round-robins the batches over worker shards on a
//!   persistent [`defa_parallel::WorkerPool`].
//! * [`backend`] hides the three execution engines behind one trait:
//!   the dense reference encoder, the DEFA pruned pipeline, and the
//!   cycle-simulated accelerator.
//! * [`histogram`] accounts queue/compute/total latency per request in
//!   fixed log2 buckets with deterministic p50/p95/p99.
//! * [`energy`] attributes a deterministic per-request energy to every
//!   backend (GPU TDP × activity model for dense/pruned, event-priced
//!   40 nm model for the accelerator), accumulated in integer picojoules —
//!   the paper's headline metric, reported as J/req, req/J, average W and
//!   GOPS/W.
//!
//! **Determinism contract.** With a fixed generator seed and
//! [`ServeConfig`], per-request responses are bit-identical regardless of
//! batch size, shard count or `RAYON_NUM_THREADS`, and the full
//! [`ServeReport`] (outcomes, bucket counts, quantiles, fixed-point energy
//! totals) is byte-identical across thread counts — time is virtual,
//! driven by the load trace and the backends' deterministic cost models,
//! never by the wall clock. `tests/tests/serving.rs` pins all of this.
//!
//! # Example
//!
//! ```
//! use defa_model::workload::RequestGenerator;
//! use defa_model::MsdaConfig;
//! use defa_serve::{BackendKind, ServeConfig, ServeRuntime};
//!
//! # fn main() -> Result<(), defa_serve::ServeError> {
//! let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 42)?;
//! let runtime = ServeRuntime::new(gen);
//! let report = runtime.run(&BackendKind::Pruned.build(), &ServeConfig::at_load(800.0, 12))?;
//! println!("{report}");
//! assert_eq!(report.completed + report.dropped, 12);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod energy;
pub mod error;
pub mod histogram;
pub mod loadgen;
pub mod runtime;

pub use backend::{Backend, BackendKind, BackendOutput};
pub use energy::EnergyBreakdown;
pub use error::ServeError;
pub use histogram::LatencyHistogram;
pub use runtime::{RequestOutcome, ServeConfig, ServeReport, ServeRuntime};
