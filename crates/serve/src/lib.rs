//! `defa-serve`: a session-oriented multi-backend inference runtime for
//! the DEFA reproduction.
//!
//! The paper's accelerator argument is about *throughput under a stream of
//! detection queries*; this crate supplies the serving layer that turns
//! the workspace's single-run pipelines into a service. Its unit of
//! serving is the **session**: a seeded sequence of iterations — one
//! *prefill* (the full detection query) followed by cheaper *decode*
//! steps separated by seeded think times
//! ([`defa_model::workload::SessionProfile`]). A legacy one-shot request
//! is exactly a session of length 1, and the default configuration
//! ([`config::SessionConfig`] at `SessionProfile::ONE_SHOT`) runs the
//! pre-session engine byte-for-byte.
//!
//! ```text
//!  ArrivalProcess ──> AdmissionQueue ──> Scheduler ──> Router ──> shard 0 ──┐
//!  (poisson /          (bounded; drop    (fifo / sjf   (rr / low  shard 1 ──┤─> report
//!   bursty MMPP /       policy on         / edf over    / latency- ...      │   (latency,
//!   uniform)            overflow)         SLO classes)  / energy-  shard S ──┘   TTFT/TBT,
//!                                             ▲          aware)      │  │        energy,
//!                                             │   decode steps ready │  │        SLO)
//!                                             └──── after think time ┘  │
//!                                                 (continuous batching,  │
//!                                                  per-shard state budget)
//! ```
//!
//! With sessions enabled the engine batches at **iteration level**
//! (continuous batching): each settled iteration immediately frees its
//! batch slot, due decode steps rejoin their resident shard's next batch
//! ahead of new prefills, and a per-shard *state budget*
//! ([`config::SessionConfig::state_budget`] — the KV-cache analogue)
//! bounds resident sessions, forcing deterministic least-recently-settled
//! eviction and priced prefill recompute. [`Backend`] pricing splits into
//! prefill vs decode phases ([`Backend::estimate_prefill_ns`],
//! [`Backend::estimate_decode_ns`], [`Backend::decode_output`]) so
//! routers see both; the report grows streaming SLOs — time-to-first-token
//! and time-between-tokens histograms against per-class
//! [`defa_model::workload::StreamingBudget`]s. Setting
//! `SessionConfig::gang` schedules each session as one gang instead — the
//! baseline continuous batching is measured against.
//!
//! Every layer is a policy behind a trait, configured per [`ServeConfig`]
//! and driven through one typed entry point,
//! [`ServeSpec`] → [`ServeRuntime::serve`]:
//!
//! * [`loadgen`] — pluggable [`loadgen::ArrivalProcess`] (Poisson, bursty
//!   on/off MMPP, uniform pacing) derives the arrival trace from a seed;
//!   [`defa_model::workload::RequestGenerator`] materializes each request
//!   (scenario pick + SLO class + fresh feature pyramid) purely from
//!   `(seed, id)`.
//! * [`admission`] — a bounded arrival-order queue with a
//!   [`admission::DropPolicy`] (tail drop or evict-oldest) deciding who is
//!   shed on overflow.
//! * [`scheduler`] — a [`scheduler::Scheduler`] picks which queued
//!   prefills form the next batch: FIFO, shortest-job-first over the
//!   backends' cost estimates, or earliest-deadline-first over per-request
//!   [`defa_model::workload::SloClass`] budgets. Iteration-level admission
//!   goes through [`scheduler::Scheduler::admit_into`], which fills only
//!   the slots left after a shard's due decode steps.
//! * [`router`] — a [`router::Router`] places each batch on a shard:
//!   round-robin, least-outstanding-work, or latency-/energy-aware over
//!   heterogeneous fleets where shards wrap *different* backends
//!   ([`ServeSpec::fleet`]); [`router::ShardView`] carries phase-split
//!   prefill/decode estimates for phase-aware placement.
//! * [`backend`] — the three execution engines behind one trait: the dense
//!   reference encoder, the DEFA pruned pipeline, and the cycle-simulated
//!   accelerator — plus the analytic cost/energy estimates the cost-aware
//!   policies steer by, now split into prefill and decode phases.
//! * [`cost`] — memoized [`cost::CostTable`]s: every backend's estimate
//!   surface (cost, energy, idle power per scenario × DVFS point) is
//!   priced once at fleet construction, so the hot loops index integers
//!   instead of re-running analytic estimators; the tables are pinned
//!   exactly equal to the live estimators by property test.
//! * [`control`] — the closed loop above the per-batch layers: virtual
//!   time is split into epochs, and a [`control::Controller`] observes a
//!   [`control::FleetView`] at every boundary and actuates the fleet —
//!   [`control::ShardAutoscaler`] grows/drains shards (drain-before-stop)
//!   and [`control::DvfsGovernor`] steps the accelerator clock down a
//!   frequency/voltage ladder, re-pricing latency and energy through
//!   [`Backend::reprice`]. [`loadgen::TraceSchedule`] supplies the
//!   time-varying traces (diurnal / surge / sawtooth / random-walk) the
//!   controllers are exercised against.
//! * [`obs`] — the deterministic observability layer: seeded-sampled
//!   span tracing of every request lifecycle (exported as Chrome
//!   `trace_event` JSON), an integer metrics registry snapshotted at
//!   epoch boundaries, and flag-gated wall-clock self-profiling of the
//!   engine hot paths. Disabled by default at zero overhead; when on,
//!   every deterministic surface is byte-identical across thread counts
//!   like the rest of the report.
//! * [`histogram`] accounts queue/compute/total latency per request in
//!   fixed log2 buckets with deterministic p50/p95/p99; [`energy`]
//!   attributes deterministic per-request energy in integer picojoules;
//!   [`report`] folds both into the [`ServeReport`] together with drop,
//!   SLO-violation and per-epoch timeline accounting
//!   ([`report::EpochStat`], including idle/static energy).
//!
//! **Determinism contract.** With a fixed generator seed and
//! [`ServeConfig`] — *including* the policy selection — per-request
//! responses are bit-identical regardless of batch size, shard count or
//! `RAYON_NUM_THREADS`, and the full [`ServeReport`] (outcomes, bucket
//! counts, quantiles, fixed-point energy totals) is byte-identical across
//! thread counts — time is virtual, driven by the load trace and the
//! backends' deterministic cost models, never by the wall clock. The
//! default Poisson + FIFO + round-robin configuration reproduces the
//! PR 2/PR 3 runtime byte-for-byte. `tests/tests/serving.rs` pins all of
//! this.
//!
//! # Example
//!
//! ```
//! use defa_model::workload::RequestGenerator;
//! use defa_model::MsdaConfig;
//! use defa_serve::{BackendKind, ServeConfig, ServeRuntime, ServeSpec};
//!
//! # fn main() -> Result<(), defa_serve::ServeError> {
//! let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 42)?;
//! let runtime = ServeRuntime::new(gen);
//! let spec = ServeSpec::homogeneous(&BackendKind::Pruned.build(), &ServeConfig::at_load(800.0, 12));
//! let report = runtime.serve(&spec)?;
//! println!("{report}");
//! assert_eq!(report.completed + report.dropped, 12);
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod backend;
pub mod config;
pub mod control;
pub mod cost;
pub mod energy;
pub mod error;
pub mod events;
pub mod histogram;
pub mod loadgen;
pub mod obs;
pub mod report;
pub mod router;
pub mod runtime;
pub mod scheduler;

pub use admission::{Admission, AdmissionQueue, DropPolicy, QueuedRequest};
pub use backend::{Backend, BackendKind, BackendOutput, ReplayBackend, DECODE_COST_DIV};
pub use config::{ControlConfig, ServeConfig, SessionConfig, DEFAULT_OUTCOME_CAPTURE};
pub use control::{
    AutoscalerConfig, ControlAction, Controller, ControllerKind, DvfsConfig, DvfsGovernor,
    DvfsPoint, FleetView, NoOpController, ShardAutoscaler, DVFS_LADDER,
};
pub use cost::CostTable;
pub use energy::EnergyBreakdown;
pub use error::ServeError;
pub use events::{EventClass, EventList};
pub use histogram::LatencyHistogram;
pub use loadgen::{ArrivalIter, ArrivalProcess, RateSegment, SegmentProcess, TraceSchedule};
pub use obs::{
    Log2Histogram, MetricsRegistry, ObsConfig, ObsReport, ProfSection, SelfProfile, SpanEvent,
    SpanSampler,
};
pub use report::{EpochStat, LiveStats, RequestOutcome, ServeReport};
pub use router::{Router, RouterKind, ShardView};
pub use runtime::{ServeRuntime, ServeSpec};
pub use scheduler::{Scheduler, SchedulerKind};

// Session workload surfaces, re-exported so serving callers need not
// depend on `defa_model` directly.
pub use defa_model::workload::{SessionProfile, StreamingBudget};
