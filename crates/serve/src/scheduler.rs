//! Batch-formation policy: which queued requests ride the next batch.
//!
//! The scheduler is consulted once per dispatch with the admission queue
//! and a batch budget; it removes up to `max_batch` requests and appends
//! them in service order. Policies differ in *selection*, never in
//! timing — the runtime alone decides when a batch launches
//! (size/deadline triggers) and where it runs ([`crate::router`]), so
//! policies compose freely with routers and arrival processes.
//!
//! # Determinism and fairness contract
//!
//! Every implementation must be a pure function of the queue contents and
//! `now_ns` (no wall clock, no interior mutability), must serve each
//! selected request exactly once, and must break ties by
//! `(arrival_ns, id)` so that two requests of the same SLO class and
//! scenario are always served in arrival order — the starvation bound
//! `tests/tests/serving.rs` pins for every policy:
//!
//! * [`FifoScheduler`] — strict arrival order (the PR 2 behaviour, and
//!   the reference every byte-compat test is pinned against);
//! * [`SjfScheduler`] — shortest job first on the fleet-mean cost
//!   estimate, with an aging guard: requests whose SLO deadline has
//!   already passed jump to the front in arrival order, bounding how long
//!   a long job can starve;
//! * [`EdfScheduler`] — earliest absolute SLO deadline first, the
//!   classic deadline scheduler over [`defa_model::workload::SloClass`].
//!
//! # `O(log n)` selection
//!
//! SJF and EDF used to sort the whole queue on every dispatch —
//! `O(n log n)` per batch, the dominant scheduler cost once queues run
//! deep. Selection now delegates to the [`AdmissionQueue`]'s
//! generation-checked policy heaps (`select_sjf_into` /
//! `select_edf_into`), which pop each request in `O(log n)` under
//! exactly the same total order. The old linear scans survive verbatim
//! in [`reference`] as the oracle the property tests compare pop
//! sequences against — on randomized queues with duplicate costs,
//! deadlines and arrival times, the heaps must reproduce the scans'
//! output byte for byte.

use crate::admission::{AdmissionQueue, QueuedRequest};

/// Chooses which queued requests form the next batch.
pub trait Scheduler: Send + Sync {
    /// Short display name for tables and reports.
    fn name(&self) -> &'static str;

    /// Removes up to `max_batch` requests from `queue` and appends them
    /// to `out` in service order. `now_ns` is the virtual time of the
    /// dispatching shard (its free time), for age-aware policies. The
    /// `out` buffer lets the runtime recycle batch allocations across
    /// dispatches; implementations append without clearing.
    fn select_into(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        now_ns: u64,
        out: &mut Vec<QueuedRequest>,
    );

    /// [`Scheduler::select_into`] into a fresh buffer.
    fn select(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        now_ns: u64,
    ) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(queue.len().min(max_batch));
        self.select_into(queue, max_batch, now_ns, &mut out);
        out
    }

    /// Iteration-level admission: fills up to `slots` free positions of a
    /// batch that is *already forming* — the continuous-batching hook the
    /// session engine calls between iterations, after due decode steps
    /// have claimed their places, so new sessions join a shard's batch
    /// between steps instead of waiting for the shard to drain.
    ///
    /// Appends to `out` without clearing (the buffer already holds the
    /// decode members). The default admits in exactly the policy's
    /// service order ([`Scheduler::select_into`] with a `slots` budget);
    /// policies that want different admission and formation orders
    /// override. The purity/fairness contract is the same as
    /// `select_into`'s.
    fn admit_into(
        &self,
        queue: &mut AdmissionQueue,
        slots: usize,
        now_ns: u64,
        out: &mut Vec<QueuedRequest>,
    ) {
        self.select_into(queue, slots, now_ns, out);
    }
}

/// Strict arrival order (first in, first out).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select_into(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        _now_ns: u64,
        out: &mut Vec<QueuedRequest>,
    ) {
        queue.select_fifo_into(max_batch, out);
    }
}

/// Shortest job first on the per-scenario cost estimate, with deadline
/// aging so expensive requests cannot starve: any request already past
/// its SLO deadline at `now_ns` is served first, in arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SjfScheduler;

impl Scheduler for SjfScheduler {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn select_into(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        now_ns: u64,
        out: &mut Vec<QueuedRequest>,
    ) {
        queue.select_sjf_into(max_batch, now_ns, out);
    }
}

/// Earliest absolute SLO deadline first.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfScheduler;

impl Scheduler for EdfScheduler {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn select_into(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        _now_ns: u64,
        out: &mut Vec<QueuedRequest>,
    ) {
        queue.select_edf_into(max_batch, out);
    }
}

/// The linear-scan selection policies the heaps are verified against.
///
/// These are the pre-optimization implementations, operating on a plain
/// snapshot of the queue: sort every waiter by the policy's full key,
/// truncate to the batch. They are `O(n log n)` per call and exist so
/// the property tests (and anyone auditing the heap code) have an
/// independently-simple statement of the required service order.
pub mod reference {
    use super::QueuedRequest;

    /// SJF-with-aging order: sorts by `(fresh, cost-if-fresh-else-0,
    /// arrival_ns, id)` where `fresh = deadline_ns > now_ns`, takes the
    /// first `max_batch`.
    pub fn sjf(items: &[QueuedRequest], max_batch: usize, now_ns: u64) -> Vec<QueuedRequest> {
        let mut order: Vec<&QueuedRequest> = items.iter().collect();
        order.sort_by_key(|r| {
            let fresh = r.deadline_ns > now_ns; // overdue (false) sorts first…
            let cost = if fresh { r.est_cost_ns } else { 0 }; // …in arrival order
            (fresh, cost, r.arrival_ns, r.id)
        });
        order.truncate(items.len().min(max_batch));
        order.into_iter().copied().collect()
    }

    /// EDF order: sorts by `(deadline_ns, arrival_ns, id)`, takes the
    /// first `max_batch`.
    pub fn edf(items: &[QueuedRequest], max_batch: usize) -> Vec<QueuedRequest> {
        let mut order: Vec<&QueuedRequest> = items.iter().collect();
        order.sort_by_key(|r| (r.deadline_ns, r.arrival_ns, r.id));
        order.truncate(items.len().min(max_batch));
        order.into_iter().copied().collect()
    }
}

/// The shipped scheduling policies, for config, sweeps and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// [`FifoScheduler`] (the default — byte-compatible with PR 2/PR 3).
    #[default]
    Fifo,
    /// [`SjfScheduler`].
    Sjf,
    /// [`EdfScheduler`].
    Edf,
}

impl SchedulerKind {
    /// All policies in presentation order.
    pub fn all() -> [SchedulerKind; 3] {
        [SchedulerKind::Fifo, SchedulerKind::Sjf, SchedulerKind::Edf]
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Sjf => "sjf",
            SchedulerKind::Edf => "edf",
        }
    }

    /// Builds the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler),
            SchedulerKind::Sjf => Box::new(SjfScheduler),
            SchedulerKind::Edf => Box::new(EdfScheduler),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DropPolicy;
    use defa_model::workload::SloClass;

    fn queue_of(reqs: &[(u64, u64, SloClass, u64)]) -> AdmissionQueue {
        // (id, arrival, slo, est_cost)
        let mut q = AdmissionQueue::new(64, DropPolicy::RejectNewest);
        for &(id, arrival_ns, slo, est_cost_ns) in reqs {
            q.offer(QueuedRequest {
                id,
                arrival_ns,
                scenario: 0,
                slo,
                est_cost_ns,
                deadline_ns: arrival_ns + slo.deadline_ns(),
            });
        }
        q
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Batch, 900),
            (1, 20, SloClass::Interactive, 100),
            (2, 30, SloClass::Standard, 500),
        ]);
        let batch = FifoScheduler.select(&mut q, 2, 1_000);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.front().unwrap().id, 2);
    }

    #[test]
    fn sjf_orders_by_estimate_with_arrival_tiebreak() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Standard, 900),
            (1, 20, SloClass::Standard, 100),
            (2, 30, SloClass::Standard, 100),
            (3, 40, SloClass::Standard, 500),
        ]);
        let batch = SjfScheduler.select(&mut q, 3, 50);
        // 100 ns jobs first (ids 1 then 2: equal cost, arrival breaks the
        // tie), then the 500 ns job; the 900 ns job waits.
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        assert_eq!(q.front().unwrap().id, 0);
    }

    #[test]
    fn sjf_ages_overdue_requests_to_the_front() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Interactive, 900), // deadline 2_000_010
            (1, 20, SloClass::Batch, 100),
        ]);
        // Far past the interactive deadline: the expensive overdue request
        // must preempt the cheap fresh one.
        let batch = SjfScheduler.select(&mut q, 1, 5_000_000);
        assert_eq!(batch[0].id, 0);
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Batch, 100),       // deadline 100_000_010
            (1, 20, SloClass::Interactive, 900), // deadline  2_000_020
            (2, 30, SloClass::Standard, 500),    // deadline 10_000_030
        ]);
        let batch = EdfScheduler.select(&mut q, 2, 50);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.front().unwrap().id, 0);
    }

    #[test]
    fn admit_into_fills_partial_batches_in_policy_order() {
        for kind in SchedulerKind::all() {
            let sched = kind.build();
            let mut q = queue_of(&[
                (0, 10, SloClass::Batch, 300),
                (1, 20, SloClass::Interactive, 100),
                (2, 30, SloClass::Standard, 200),
            ]);
            // A batch mid-formation already holds one (decode) member;
            // admission must append after it, never clear it.
            let sentinel = QueuedRequest {
                id: 99,
                arrival_ns: 0,
                scenario: 0,
                slo: SloClass::Standard,
                est_cost_ns: 1,
                deadline_ns: 1,
            };
            let mut batch = vec![sentinel];
            sched.admit_into(&mut q, 2, 50, &mut batch);
            assert_eq!(batch.len(), 3, "{}: 1 held + 2 admitted", kind.name());
            assert_eq!(batch[0].id, 99, "{}: held member survives", kind.name());
            // The admitted tail is the policy's own service order.
            let mut q2 = queue_of(&[
                (0, 10, SloClass::Batch, 300),
                (1, 20, SloClass::Interactive, 100),
                (2, 30, SloClass::Standard, 200),
            ]);
            let want = sched.select(&mut q2, 2, 50);
            assert_eq!(&batch[1..], &want[..], "{} admission order", kind.name());
        }
    }

    #[test]
    fn every_kind_serves_each_request_exactly_once() {
        for kind in SchedulerKind::all() {
            let sched = kind.build();
            let mut q = queue_of(&[
                (0, 10, SloClass::Batch, 300),
                (1, 20, SloClass::Interactive, 100),
                (2, 30, SloClass::Standard, 200),
                (3, 40, SloClass::Interactive, 400),
                (4, 50, SloClass::Batch, 100),
            ]);
            let mut served = Vec::new();
            while !q.is_empty() {
                served.extend(sched.select(&mut q, 2, 1_000).into_iter().map(|r| r.id));
            }
            let mut sorted = served.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3, 4], "{}: {served:?}", kind.name());
        }
    }

    // ---- heap vs linear-reference property tests ------------------------

    /// splitmix64: the repo's standard test PRNG.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A randomized request with deliberately *small* key ranges so that
    /// duplicate costs, arrivals and deadlines are common — the regime
    /// where only the full `(key, arrival, id)` order disambiguates.
    fn rand_req(id: u64, rng: &mut u64) -> QueuedRequest {
        let arrival_ns = mix(rng) % 8; // heavy arrival collisions
        let est_cost_ns = 1 + mix(rng) % 4; // heavy cost collisions
        let deadline_ns = arrival_ns + 1 + mix(rng) % 16;
        QueuedRequest {
            id,
            arrival_ns,
            scenario: (mix(rng) % 9) as usize,
            slo: SloClass::Standard,
            est_cost_ns,
            deadline_ns,
        }
    }

    /// Drains `q` through the heap-backed scheduler in batches, checking
    /// each batch against the linear reference computed from the queue's
    /// arrival-order snapshot *before* the selection.
    fn drain_against_reference(kind: SchedulerKind, q: &mut AdmissionQueue, rng: &mut u64) {
        let sched = kind.build();
        let mut round = 0u32;
        while !q.is_empty() {
            let snapshot: Vec<QueuedRequest> = q.iter().copied().collect();
            let max_batch = 1 + (mix(rng) % 7) as usize;
            // Non-monotone now_ns across rounds: shard free times jump
            // both ways, so fresh/overdue migration runs in both
            // directions.
            let now_ns = mix(rng) % 32;
            let want = match kind {
                SchedulerKind::Sjf => reference::sjf(&snapshot, max_batch, now_ns),
                SchedulerKind::Edf => reference::edf(&snapshot, max_batch),
                SchedulerKind::Fifo => {
                    snapshot.iter().take(max_batch.min(snapshot.len())).copied().collect()
                }
            };
            let got = sched.select(q, max_batch, now_ns);
            assert_eq!(
                got,
                want,
                "{} diverged from linear reference (round {round}, now {now_ns}, \
                 batch {max_batch})",
                kind.name()
            );
            round += 1;
        }
    }

    #[test]
    fn heap_pop_order_matches_linear_reference_on_random_queues() {
        for kind in SchedulerKind::all() {
            let mut rng = 0xDEFA_0000_0000_0A11 ^ kind.name().len() as u64;
            for case in 0..40u64 {
                let mut q = AdmissionQueue::new(512, DropPolicy::RejectNewest);
                let n = 1 + mix(&mut rng) % 80;
                for id in 0..n {
                    q.offer(rand_req(id, &mut rng));
                }
                // Interleave refills to exercise slot recycling + gen
                // invalidation, not just one monotone drain.
                let refill_at = mix(&mut rng) % n.max(2);
                let mut extra = n;
                let sched = kind.build();
                let mut drained = 0u64;
                while drained < refill_at && !q.is_empty() {
                    let snapshot: Vec<QueuedRequest> = q.iter().copied().collect();
                    let now_ns = mix(&mut rng) % 32;
                    let want = match kind {
                        SchedulerKind::Sjf => reference::sjf(&snapshot, 3, now_ns),
                        SchedulerKind::Edf => reference::edf(&snapshot, 3),
                        SchedulerKind::Fifo => {
                            snapshot.iter().take(3.min(snapshot.len())).copied().collect()
                        }
                    };
                    let got = sched.select(&mut q, 3, now_ns);
                    assert_eq!(got, want, "{} case {case} pre-refill", kind.name());
                    drained += got.len() as u64;
                }
                for _ in 0..mix(&mut rng) % 20 {
                    q.offer(rand_req(extra, &mut rng));
                    extra += 1;
                }
                drain_against_reference(kind, &mut q, &mut rng);
            }
        }
    }

    #[test]
    fn heap_sjf_migrates_both_directions_as_now_regresses() {
        // Pin the two-way migration explicitly: a request promoted to
        // overdue at a late now_ns must be treated as fresh again when a
        // different shard dispatches at an earlier free time.
        let mut q = queue_of(&[
            (0, 10, SloClass::Interactive, 900), // deadline 2_000_010
            (1, 20, SloClass::Interactive, 100), // deadline 2_000_020
        ]);
        // First select at now far past both deadlines: overdue order is
        // arrival order, so the expensive id 0 comes first.
        let batch = SjfScheduler.select(&mut q, 1, 5_000_000);
        assert_eq!(batch[0].id, 0);
        // Second select at now *before* the remaining deadline: id 1 is
        // fresh again (cost order — trivially first as the only waiter),
        // and crucially the selection must not panic or misorder after
        // the set migration back.
        let batch = SjfScheduler.select(&mut q, 1, 1_000);
        assert_eq!(batch[0].id, 1);
        assert!(q.is_empty());
    }
}
