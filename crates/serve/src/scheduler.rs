//! Batch-formation policy: which queued requests ride the next batch.
//!
//! The scheduler is consulted once per dispatch with the admission queue
//! and a batch budget; it removes up to `max_batch` requests and returns
//! them in service order. Policies differ in *selection*, never in
//! timing — the runtime alone decides when a batch launches
//! (size/deadline triggers) and where it runs ([`crate::router`]), so
//! policies compose freely with routers and arrival processes.
//!
//! # Determinism and fairness contract
//!
//! Every implementation must be a pure function of the queue contents and
//! `now_ns` (no wall clock, no interior mutability), must serve each
//! selected request exactly once, and must break ties by
//! `(arrival_ns, id)` so that two requests of the same SLO class and
//! scenario are always served in arrival order — the starvation bound
//! `tests/tests/serving.rs` pins for every policy:
//!
//! * [`FifoScheduler`] — strict arrival order (the PR 2 behaviour, and
//!   the reference every byte-compat test is pinned against);
//! * [`SjfScheduler`] — shortest job first on the fleet-mean cost
//!   estimate, with an aging guard: requests whose SLO deadline has
//!   already passed jump to the front in arrival order, bounding how long
//!   a long job can starve;
//! * [`EdfScheduler`] — earliest absolute SLO deadline first, the
//!   classic deadline scheduler over [`defa_model::workload::SloClass`].

use crate::admission::{AdmissionQueue, QueuedRequest};

/// Chooses which queued requests form the next batch.
pub trait Scheduler: Send + Sync {
    /// Short display name for tables and reports.
    fn name(&self) -> &'static str;

    /// Removes up to `max_batch` requests from `queue` and returns them in
    /// service order. `now_ns` is the virtual time of the dispatching
    /// shard (its free time), for age-aware policies.
    fn select(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        now_ns: u64,
    ) -> Vec<QueuedRequest>;
}

/// Removes the requests at `picked` positions (any order) from the queue,
/// returning them in the order given.
fn take_indices(queue: &mut AdmissionQueue, picked: &[usize]) -> Vec<QueuedRequest> {
    let items = queue.items_mut();
    let out: Vec<QueuedRequest> = picked.iter().map(|&i| items[i]).collect();
    let mut remove: Vec<usize> = picked.to_vec();
    remove.sort_unstable_by(|a, b| b.cmp(a)); // back-to-front keeps indices valid
    for i in remove {
        items.remove(i);
    }
    out
}

/// Strict arrival order (first in, first out).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        _now_ns: u64,
    ) -> Vec<QueuedRequest> {
        let take = queue.len().min(max_batch);
        queue.items_mut().drain(..take).collect()
    }
}

/// Shortest job first on the per-scenario cost estimate, with deadline
/// aging so expensive requests cannot starve: any request already past
/// its SLO deadline at `now_ns` is served first, in arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SjfScheduler;

impl Scheduler for SjfScheduler {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn select(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        now_ns: u64,
    ) -> Vec<QueuedRequest> {
        let take = queue.len().min(max_batch);
        let mut order: Vec<usize> = (0..queue.len()).collect();
        let items = queue.items();
        order.sort_by_key(|&i| {
            let r = &items[i];
            let fresh = r.deadline_ns > now_ns; // overdue (false) sorts first…
            let cost = if fresh { r.est_cost_ns } else { 0 }; // …in arrival order
            (fresh, cost, r.arrival_ns, r.id)
        });
        order.truncate(take);
        take_indices(queue, &order)
    }
}

/// Earliest absolute SLO deadline first.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfScheduler;

impl Scheduler for EdfScheduler {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn select(
        &self,
        queue: &mut AdmissionQueue,
        max_batch: usize,
        _now_ns: u64,
    ) -> Vec<QueuedRequest> {
        let take = queue.len().min(max_batch);
        let mut order: Vec<usize> = (0..queue.len()).collect();
        let items = queue.items();
        order.sort_by_key(|&i| {
            let r = &items[i];
            (r.deadline_ns, r.arrival_ns, r.id)
        });
        order.truncate(take);
        take_indices(queue, &order)
    }
}

/// The shipped scheduling policies, for config, sweeps and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// [`FifoScheduler`] (the default — byte-compatible with PR 2/PR 3).
    #[default]
    Fifo,
    /// [`SjfScheduler`].
    Sjf,
    /// [`EdfScheduler`].
    Edf,
}

impl SchedulerKind {
    /// All policies in presentation order.
    pub fn all() -> [SchedulerKind; 3] {
        [SchedulerKind::Fifo, SchedulerKind::Sjf, SchedulerKind::Edf]
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Sjf => "sjf",
            SchedulerKind::Edf => "edf",
        }
    }

    /// Builds the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler),
            SchedulerKind::Sjf => Box::new(SjfScheduler),
            SchedulerKind::Edf => Box::new(EdfScheduler),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DropPolicy;
    use defa_model::workload::SloClass;

    fn queue_of(reqs: &[(u64, u64, SloClass, u64)]) -> AdmissionQueue {
        // (id, arrival, slo, est_cost)
        let mut q = AdmissionQueue::new(64, DropPolicy::RejectNewest);
        for &(id, arrival_ns, slo, est_cost_ns) in reqs {
            q.offer(QueuedRequest {
                id,
                arrival_ns,
                scenario: 0,
                slo,
                est_cost_ns,
                deadline_ns: arrival_ns + slo.deadline_ns(),
            });
        }
        q
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Batch, 900),
            (1, 20, SloClass::Interactive, 100),
            (2, 30, SloClass::Standard, 500),
        ]);
        let batch = FifoScheduler.select(&mut q, 2, 1_000);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.front().unwrap().id, 2);
    }

    #[test]
    fn sjf_orders_by_estimate_with_arrival_tiebreak() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Standard, 900),
            (1, 20, SloClass::Standard, 100),
            (2, 30, SloClass::Standard, 100),
            (3, 40, SloClass::Standard, 500),
        ]);
        let batch = SjfScheduler.select(&mut q, 3, 50);
        // 100 ns jobs first (ids 1 then 2: equal cost, arrival breaks the
        // tie), then the 500 ns job; the 900 ns job waits.
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        assert_eq!(q.front().unwrap().id, 0);
    }

    #[test]
    fn sjf_ages_overdue_requests_to_the_front() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Interactive, 900), // deadline 2_000_010
            (1, 20, SloClass::Batch, 100),
        ]);
        // Far past the interactive deadline: the expensive overdue request
        // must preempt the cheap fresh one.
        let batch = SjfScheduler.select(&mut q, 1, 5_000_000);
        assert_eq!(batch[0].id, 0);
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        let mut q = queue_of(&[
            (0, 10, SloClass::Batch, 100),       // deadline 100_000_010
            (1, 20, SloClass::Interactive, 900), // deadline  2_000_020
            (2, 30, SloClass::Standard, 500),    // deadline 10_000_030
        ]);
        let batch = EdfScheduler.select(&mut q, 2, 50);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.front().unwrap().id, 0);
    }

    #[test]
    fn every_kind_serves_each_request_exactly_once() {
        for kind in SchedulerKind::all() {
            let sched = kind.build();
            let mut q = queue_of(&[
                (0, 10, SloClass::Batch, 300),
                (1, 20, SloClass::Interactive, 100),
                (2, 30, SloClass::Standard, 200),
                (3, 40, SloClass::Interactive, 400),
                (4, 50, SloClass::Batch, 100),
            ]);
            let mut served = Vec::new();
            while !q.is_empty() {
                served.extend(sched.select(&mut q, 2, 1_000).into_iter().map(|r| r.id));
            }
            let mut sorted = served.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3, 4], "{}: {served:?}", kind.name());
        }
    }
}
