//! The typed discrete-event list driving the serving engine.
//!
//! One `run_fleet` call owns exactly one [`EventList`] holding every
//! *pending* virtual-time event, in three classes ([`EventClass`]):
//!
//! * **Epoch boundary** — the next control-loop boundary. Exactly one is
//!   pending at any time; crossing it schedules the next (or, across an
//!   idle gap with a quiescent controller, fast-forwards many boundaries
//!   in O(1) — the skip-ahead that replaced the O(idle-epochs) walk).
//! * **Arrival** — the head of the lazy
//!   [`crate::loadgen::ArrivalIter`] trace: the single next arrival,
//!   tagged with its request id. Consuming it pulls the next arrival
//!   from the iterator, so the trace never materializes.
//! * **Shard free** — one entry per *active* shard: the virtual time its
//!   current batch settles (its free time). These live in a binary heap
//!   keyed `(free_ns, shard)`; re-dispatching a shard supersedes its
//!   entry.
//!
//! # Ordering and tie-breaks
//!
//! Events settle in `(at_ns, class, key)` order. At equal timestamps the
//! class order is boundary < arrival < shard-free — i.e. control acts
//! first, then admission, then capacity — which is exactly the
//! processing order of the pre-event-loop runtime (boundaries were
//! walked before routing, admission before dispatch), so the rewrite is
//! byte-identical to it. Shard-free ties break on the lower shard
//! index, matching the linear `min()` scan it replaced.
//!
//! # Lazy invalidation
//!
//! Superseded and deactivated shard-free entries stay in the heap until
//! they surface, carrying a per-shard generation number; a stale top is
//! popped on sight, and the heap is compacted outright once stale
//! entries outnumber live ones. Both cleanups are pure functions of the
//! event sequence, so determinism is unaffected.
//!
//! # Peak accounting
//!
//! The list tracks its own high-water mark ([`EventList::peak_depth`]);
//! the runtime surfaces it through `ServeReport::live` so the "live
//! state is bounded by in-flight work" contract is asserted by tests
//! and the `serve_scale` bench, not assumed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Event classes of the serving engine, in settle order at equal
/// virtual timestamps (see the module docs for why this order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventClass {
    /// An epoch boundary: the controller observes the ended epoch and
    /// acts before any admission or dispatch at the same instant.
    EpochBoundary,
    /// The arrival cursor: the next request of the lazy trace.
    Arrival,
    /// A shard's in-flight batch settles, freeing the shard.
    ShardFree,
    /// A session iteration's think time elapses: a decode step becomes
    /// ready on its resident shard. Settles after the shard-free event at
    /// the same instant (the freeing batch is what made the iteration
    /// ready), so a decode never jumps ahead of the settle that produced
    /// its previous token. Used by the session engine's per-shard ready
    /// sets; the legacy one-shot engine never emits it.
    SessionReady,
}

/// The pending-event state of one serving run: two single-slot cursors
/// (boundary, arrival) and a lazily-invalidated binary heap of per-shard
/// free events.
#[derive(Debug)]
pub struct EventList {
    /// `(free_ns, shard, generation)` min-heap over active shards.
    frees: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Current generation per shard; heap entries with an older
    /// generation are stale.
    generation: Vec<u64>,
    /// Live (non-stale) heap entries — one per active shard.
    live: usize,
    /// The next epoch boundary as `(at_ns, epoch index)`.
    boundary: Option<(u64, u64)>,
    /// The next arrival as `(at_ns, request id)`.
    arrival: Option<(u64, u64)>,
    peak: usize,
}

impl EventList {
    /// An empty list for a fleet of `fleet_size` shards.
    pub fn new(fleet_size: usize) -> Self {
        EventList {
            frees: BinaryHeap::with_capacity(fleet_size.saturating_mul(2).max(4)),
            generation: vec![0; fleet_size],
            live: 0,
            boundary: None,
            arrival: None,
            peak: 0,
        }
    }

    /// Pending events right now (all classes, stale entries excluded).
    pub fn depth(&self) -> usize {
        self.live + usize::from(self.boundary.is_some()) + usize::from(self.arrival.is_some())
    }

    /// High-water mark of [`Self::depth`] over the run.
    pub fn peak_depth(&self) -> usize {
        self.peak
    }

    /// Live shard-free events right now (one per active shard) — the
    /// `events.shard_free` observability gauge.
    pub fn live_shard_events(&self) -> usize {
        self.live
    }

    fn note_peak(&mut self) {
        self.peak = self.peak.max(self.depth());
    }

    /// Adds a shard to the active set with its current free time.
    pub fn activate_shard(&mut self, shard: usize, free_ns: u64) {
        self.generation[shard] += 1;
        self.frees.push(Reverse((free_ns, shard, self.generation[shard])));
        self.live += 1;
        self.note_peak();
    }

    /// Removes a shard from the active set (its heap entry goes stale).
    pub fn deactivate_shard(&mut self, shard: usize) {
        self.generation[shard] += 1;
        self.live -= 1;
        self.maybe_compact();
    }

    /// Moves an active shard's free event to `free_ns` (the old entry
    /// goes stale).
    pub fn reschedule_shard(&mut self, shard: usize, free_ns: u64) {
        self.generation[shard] += 1;
        self.frees.push(Reverse((free_ns, shard, self.generation[shard])));
        self.note_peak();
        self.maybe_compact();
    }

    /// Earliest free time over the active shards — the same value as a
    /// linear scan of per-shard free times, in O(log fleet) amortized.
    pub fn min_active_free(&mut self) -> Option<u64> {
        while let Some(&Reverse((_, shard, entry_gen))) = self.frees.peek() {
            if self.generation[shard] == entry_gen {
                break;
            }
            self.frees.pop();
        }
        self.frees.peek().map(|&Reverse((free_ns, _, _))| free_ns)
    }

    /// Rebuilds the heap once stale entries outnumber live ones (plus
    /// slack so tiny fleets never compact).
    fn maybe_compact(&mut self) {
        if self.frees.len() > self.live.saturating_mul(2) + 8 {
            let generation = &self.generation;
            let keep: Vec<_> = self
                .frees
                .drain()
                .filter(|&Reverse((_, shard, entry_gen))| generation[shard] == entry_gen)
                .collect();
            self.frees.extend(keep);
        }
    }

    /// Schedules the next epoch boundary (replacing any pending one).
    pub fn set_boundary(&mut self, at_ns: u64, epoch: u64) {
        self.boundary = Some((at_ns, epoch));
        self.note_peak();
    }

    /// Pops the pending boundary if it is due at `t_now`, returning
    /// `(at_ns, epoch index)`.
    pub fn boundary_due(&mut self, t_now: u64) -> Option<(u64, u64)> {
        match self.boundary {
            Some((at, _)) if at <= t_now => self.boundary.take(),
            _ => None,
        }
    }

    /// Sets the arrival cursor (replacing any pending arrival).
    pub fn set_arrival(&mut self, at_ns: u64, id: u64) {
        self.arrival = Some((at_ns, id));
        self.note_peak();
    }

    /// The pending arrival, if any, as `(at_ns, request id)`.
    pub fn arrival(&self) -> Option<(u64, u64)> {
        self.arrival
    }

    /// Consumes the pending arrival.
    pub fn take_arrival(&mut self) -> Option<(u64, u64)> {
        self.arrival.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_active_free_matches_a_linear_scan() {
        let mut ev = EventList::new(4);
        let mut free = [0u64; 4];
        for s in 0..4 {
            ev.activate_shard(s, 0);
        }
        // Drive a deterministic little schedule and compare against the
        // scan at every step.
        let mut active = [true; 4];
        let steps: &[(usize, u64)] = &[(0, 10), (2, 7), (1, 10), (3, 25), (2, 14), (0, 14)];
        for &(shard, t) in steps {
            free[shard] = t;
            ev.reschedule_shard(shard, t);
            let scan = free.iter().zip(active).filter(|(_, a)| *a).map(|(&f, _)| f).min();
            assert_eq!(ev.min_active_free(), scan);
        }
        ev.deactivate_shard(2);
        active[2] = false;
        let scan = free.iter().zip(active).filter(|(_, a)| *a).map(|(&f, _)| f).min();
        assert_eq!(ev.min_active_free(), scan);
        ev.activate_shard(2, free[2]);
        active[2] = true;
        let scan = free.iter().zip(active).filter(|(_, a)| *a).map(|(&f, _)| f).min();
        assert_eq!(ev.min_active_free(), scan);
    }

    #[test]
    fn equal_times_resolve_to_the_lowest_shard_value() {
        let mut ev = EventList::new(3);
        for s in 0..3 {
            ev.activate_shard(s, 42);
        }
        assert_eq!(ev.min_active_free(), Some(42));
    }

    #[test]
    fn stale_entries_are_invisible_and_compacted() {
        let mut ev = EventList::new(2);
        ev.activate_shard(0, 0);
        ev.activate_shard(1, 0);
        for t in 1..100u64 {
            ev.reschedule_shard(0, t);
            ev.reschedule_shard(1, t + 1);
            assert_eq!(ev.min_active_free(), Some(t));
        }
        // Compaction keeps the heap near the live count rather than the
        // full reschedule history.
        assert!(ev.frees.len() <= 2 * 2 + 8 + 2, "heap grew: {}", ev.frees.len());
    }

    #[test]
    fn cursors_pop_only_when_due() {
        let mut ev = EventList::new(1);
        ev.activate_shard(0, 0);
        ev.set_boundary(1_000, 0);
        assert_eq!(ev.boundary_due(999), None);
        assert_eq!(ev.boundary_due(1_000), Some((1_000, 0)));
        assert_eq!(ev.boundary_due(u64::MAX), None, "boundary consumed");
        ev.set_arrival(500, 7);
        assert_eq!(ev.arrival(), Some((500, 7)));
        assert_eq!(ev.take_arrival(), Some((500, 7)));
        assert_eq!(ev.arrival(), None);
    }

    #[test]
    fn depth_counts_all_classes_and_tracks_the_peak() {
        let mut ev = EventList::new(2);
        assert_eq!(ev.depth(), 0);
        ev.activate_shard(0, 0);
        ev.activate_shard(1, 0);
        ev.set_boundary(100, 0);
        ev.set_arrival(50, 0);
        assert_eq!(ev.depth(), 4);
        assert_eq!(ev.peak_depth(), 4);
        ev.take_arrival();
        ev.deactivate_shard(1);
        assert_eq!(ev.depth(), 2);
        assert_eq!(ev.peak_depth(), 4, "peak is a high-water mark");
    }

    #[test]
    fn class_order_settles_control_before_admission_before_capacity() {
        assert!(EventClass::EpochBoundary < EventClass::Arrival);
        assert!(EventClass::Arrival < EventClass::ShardFree);
        assert!(EventClass::ShardFree < EventClass::SessionReady);
    }
}
