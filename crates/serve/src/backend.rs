//! Pluggable inference backends behind one [`Backend`] trait.
//!
//! A backend turns one [`InferenceRequest`] into a response digest plus a
//! *modeled* compute cost in virtual nanoseconds:
//!
//! * [`DenseBackend`] — the exact encoder ([`defa_model::encoder`]) served
//!   by a GPU-class device (calibrated [`GpuSpec`] latency model);
//! * [`PrunedBackend`] — the DEFA pruned pipeline
//!   ([`defa_prune::pipeline`]) on the same device, with the cost scaled
//!   by the FLOP reduction that *this request* actually achieved;
//! * [`AcceleratorBackend`] — the MSGS-simulated DEFA accelerator
//!   ([`defa_core`]), costed by its own simulated cycle count.
//!
//! Costs — time *and* energy (see [`crate::energy`]) — are pure functions
//! of the request and configuration — no wall-clock measurement — which is
//! what lets the runtime's accounting stay bit-deterministic across thread
//! counts (see [`crate::runtime`]).

use crate::control::DvfsPoint;
use crate::energy::EnergyBreakdown;
use crate::ServeError;
use defa_arch::CLOCK_HZ;
use defa_baseline::gpu::GpuSpec;
use defa_core::runner::DefaAccelerator;
use defa_model::encoder::run_encoder_from;
use defa_model::flops::BlockFlops;
use defa_model::workload::{InferenceRequest, SyntheticWorkload};
use defa_prune::pipeline::{run_pruned_encoder_from, PruneSettings};
use defa_tensor::Tensor;

/// FNV-1a offset basis — the starting accumulator for [`fnv_fold`].
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one 64-bit word into an FNV-1a accumulator.
pub fn fnv_fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// FNV-1a digest of a tensor's exact bit pattern.
///
/// Responses are compared across runs by digest (bit-identical features ⇔
/// equal digests up to hash collisions), so determinism tests don't need
/// to hold every output tensor in memory.
pub fn tensor_digest(t: &Tensor) -> u64 {
    t.as_slice().iter().fold(FNV_OFFSET, |h, &v| fnv_fold(h, u64::from(v.to_bits())))
}

/// One request's outcome: response identity plus modeled compute cost and
/// energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendOutput {
    /// Digest of the final feature tensor (the response payload).
    pub digest: u64,
    /// Modeled service time of this request in virtual nanoseconds.
    pub cost_ns: u64,
    /// Modeled energy of this request, in integer picojoules (see
    /// [`crate::energy`] for which model prices which backend).
    pub energy: EnergyBreakdown,
    /// Dense-equivalent attention FLOPs of this request — the numerator of
    /// effective-throughput metrics (GOPS, GOPS/W), as sparse accelerators
    /// report them; identical across backends for the same request.
    pub dense_flops: u64,
}

/// Dense-equivalent attention FLOPs of one request of a scenario: the full
/// (unpruned) MSDeformAttn work over all encoder layers.
///
/// This is the single definition behind every backend's
/// [`BackendOutput::dense_flops`] and the efficiency tables' GOPS/W
/// numerators — change it here and they all move together.
pub fn scenario_dense_flops(scenario: &SyntheticWorkload) -> u64 {
    let cfg = scenario.config();
    BlockFlops::for_config(cfg).attention_only() * cfg.n_layers as u64
}

/// Nominal FLOP share the DEFA pruning operating point keeps, used only
/// by the scheduling/routing *estimates* (Fig. 6(b) reports ~55 %
/// reduction; accounting always uses the per-request measured share).
const NOMINAL_PRUNE_KEEP: f64 = 0.45;

/// Effective fraction of the accelerator's peak MAC throughput reached on
/// the pruned workload — an estimate-only constant, calibrated so the
/// routing estimate lands in the measured latency-parity ballpark of the
/// ROADMAP serve table.
const ACCEL_EFFECTIVE_UTILIZATION: f64 = 0.5;

/// Nominal accelerator board power in watts for the energy *estimate*
/// (the ROADMAP table measures ~0.12 W average at the paper design
/// point; accounting always uses the event-priced model).
const ACCEL_NOMINAL_W: f64 = 0.12;

/// Accelerator idle (static/leakage) power at the nominal DVFS point, in
/// milliwatts — roughly a quarter of the ~0.12 W loaded average, scaled
/// with `f · V²` as the clock steps down the ladder. Static power is
/// accounted per control epoch (`ServeReport::static_energy_pj`), never
/// per request, so per-request energy pins are untouched.
const ACCEL_IDLE_MW_NOMINAL: u64 = 30;

/// GPU-class board idle power in milliwatts (display-off idle of a
/// high-end card). The GPU model has no DVFS ladder here, so this is
/// clock-independent.
const GPU_IDLE_MW: u64 = 30_000;

/// Idle power of an `f·V²`-scaled device: `base_mw` at the nominal point,
/// scaled by `(f/f_nom) · (V/V_nom)²` in exact integer arithmetic.
fn scaled_idle_mw(base_mw: u64, clock: DvfsPoint) -> u64 {
    let num = base_mw as u128 * clock.freq_mhz as u128 * (clock.mv as u128) * (clock.mv as u128);
    let den = DvfsPoint::NOMINAL.freq_mhz as u128
        * (DvfsPoint::NOMINAL.mv as u128)
        * (DvfsPoint::NOMINAL.mv as u128);
    (num / den) as u64
}

/// Integer rounding division (`num / den` to nearest, ties up).
fn div_round(num: u128, den: u128) -> u128 {
    (num + den / 2) / den
}

/// A pluggable inference engine the serving runtime dispatches batches to.
///
/// Implementations must be deterministic: the same `(scenario, request)`
/// pair must produce the same [`BackendOutput`] bits on every call,
/// independent of threads, batch composition or call order — the runtime's
/// determinism contract is only as strong as its backends'.
///
/// Beyond execution, a backend quotes cheap *estimates* of what one
/// request of a scenario will cost it — the signals cost-aware schedulers
/// (SJF) and latency-/energy-aware routers steer by. Estimates never feed
/// accounting (reports always use the per-request modeled cost and
/// energy); they only have to be deterministic and sanely ordered across
/// backends.
pub trait Backend: Send + Sync {
    /// Short display name for tables and reports.
    fn name(&self) -> &'static str;

    /// Executes one request against its scenario's workload.
    ///
    /// # Errors
    ///
    /// Propagates model/pruning/simulation failures.
    fn run(
        &self,
        scenario: &SyntheticWorkload,
        req: &InferenceRequest,
    ) -> Result<BackendOutput, ServeError>;

    /// Cheap deterministic estimate of one request's service time on this
    /// backend, in virtual nanoseconds — analytic only, never runs the
    /// model.
    fn estimate_cost_ns(&self, scenario: &SyntheticWorkload) -> u64;

    /// Cheap deterministic estimate of one request's energy on this
    /// backend, in picojoules — analytic only, never runs the model.
    fn estimate_energy_pj(&self, scenario: &SyntheticWorkload) -> u128;

    /// Re-prices an output for the DVFS operating point the batch was
    /// dispatched at: latency stretches with `f_nom / f`, dynamic energy
    /// shrinks with `(V / V_nom)²`.
    ///
    /// The default is the identity — GPU-modeled backends are not on the
    /// accelerator's clock domain. Implementations must be exact at
    /// [`DvfsPoint::NOMINAL`] (the runtime relies on it to keep
    /// `NoOp`-controlled runs byte-identical to uncontrolled ones) and
    /// pure in `(out, clock)`.
    fn reprice(&self, out: BackendOutput, clock: DvfsPoint) -> BackendOutput {
        let _ = clock;
        out
    }

    /// Modeled idle (static) power of one shard of this backend at the
    /// given clock, in milliwatts. Accounted per control epoch into
    /// [`crate::ServeReport::static_energy_pj`] — never into the
    /// per-request energy attribution.
    fn idle_power_mw(&self, clock: DvfsPoint) -> u64 {
        let _ = clock;
        0
    }

    /// Whether this backend serves requests without materialized feature
    /// payloads ([`Self::run_modeled`]). When every shard of a fleet is
    /// payload-free, the runtime skips pyramid generation *and* the
    /// worker-pool round-trip entirely — the fast path that makes
    /// 10M-request traces feasible. Model-executing backends keep the
    /// default `false`.
    fn payload_free(&self) -> bool {
        false
    }

    /// Serves request `id` of scenario `scenario_idx` without its
    /// payload. Only meaningful when [`Self::payload_free`] is `true`;
    /// the default refuses (a model-executing backend cannot produce a
    /// response from thin air). Must obey the same determinism contract
    /// as [`Self::run`].
    ///
    /// # Errors
    ///
    /// The default returns [`ServeError::InvalidConfig`]; implementations
    /// propagate their own failures.
    fn run_modeled(
        &self,
        scenario_idx: usize,
        scenario: &SyntheticWorkload,
        id: u64,
    ) -> Result<BackendOutput, ServeError> {
        let _ = (scenario_idx, scenario, id);
        Err(ServeError::InvalidConfig(format!(
            "backend '{}' requires materialized request payloads (payload_free() is false)",
            self.name()
        )))
    }

    /// Cheap deterministic estimate of a session's *prefill* iteration on
    /// this backend, in virtual nanoseconds. Prefill is the full-context
    /// pass, so the default is the whole-request estimate; phase-split
    /// backends (xLLM-style prefill/decode fleets) override to quote their
    /// prefill-optimized rate.
    fn estimate_prefill_ns(&self, scenario: &SyntheticWorkload) -> u64 {
        self.estimate_cost_ns(scenario)
    }

    /// Cheap deterministic estimate of one *decode* iteration on this
    /// backend, in virtual nanoseconds. A decode step reuses the resident
    /// session state instead of re-running the full context, so the
    /// default models it at `1/DECODE_COST_DIV` of a prefill (floored at
    /// 1 ns); decode-optimized backends override.
    fn estimate_decode_ns(&self, scenario: &SyntheticWorkload) -> u64 {
        (self.estimate_cost_ns(scenario) / DECODE_COST_DIV).max(1)
    }

    /// Derives iteration `iter ≥ 1` of a session from its settled prefill
    /// output: the decode digest chains deterministically off the prefill
    /// digest and the iteration index, while cost, energy and FLOPs scale
    /// by the same `1/DECODE_COST_DIV` phase ratio as
    /// [`Self::estimate_decode_ns`]. Pure in `(prefill, iter)`, so any
    /// shard can derive any iteration without coordination — the session
    /// analogue of the request-level determinism contract.
    fn decode_output(&self, prefill: &BackendOutput, iter: u64) -> BackendOutput {
        let div = DECODE_COST_DIV as u128;
        BackendOutput {
            digest: splitmix64(prefill.digest ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            cost_ns: (prefill.cost_ns / DECODE_COST_DIV).max(1),
            energy: EnergyBreakdown {
                compute_pj: prefill.energy.compute_pj / div,
                sram_pj: prefill.energy.sram_pj / div,
                dram_pj: prefill.energy.dram_pj / div,
            },
            dense_flops: prefill.dense_flops / DECODE_COST_DIV,
        }
    }
}

/// Modeled cost ratio between a prefill and one decode iteration: a
/// decode step runs `1/8` of the prefill's work (it touches only the new
/// query against resident state, not the full context). One shared
/// constant keeps estimates ([`Backend::estimate_decode_ns`]) and
/// accounting ([`Backend::decode_output`]) on the same phase model.
pub const DECODE_COST_DIV: u64 = 8;

/// Converts modeled seconds to clamped virtual nanoseconds.
fn secs_to_ns(s: f64) -> u64 {
    (s * 1e9).round().max(1.0) as u64
}

/// The exact dense encoder on a GPU-class device.
#[derive(Debug, Clone)]
pub struct DenseBackend {
    gpu: GpuSpec,
}

impl DenseBackend {
    /// Dense serving on the paper's RTX 3090Ti latency model.
    pub fn new() -> Self {
        DenseBackend { gpu: GpuSpec::rtx_3090ti() }
    }

    /// Dense serving on an explicit device model.
    pub fn on_gpu(gpu: GpuSpec) -> Self {
        DenseBackend { gpu }
    }
}

impl Default for DenseBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn run(
        &self,
        scenario: &SyntheticWorkload,
        req: &InferenceRequest,
    ) -> Result<BackendOutput, ServeError> {
        let trace = run_encoder_from(scenario, &req.fmap)?;
        let cost = self.gpu.msda_latency(scenario.config()).total_s();
        let cost_ns = secs_to_ns(cost);
        Ok(BackendOutput {
            digest: tensor_digest(&trace.final_features),
            cost_ns,
            energy: EnergyBreakdown::from_gpu(&self.gpu, cost_ns),
            dense_flops: scenario_dense_flops(scenario),
        })
    }

    fn estimate_cost_ns(&self, scenario: &SyntheticWorkload) -> u64 {
        // The dense cost model is itself analytic, so the estimate is
        // exact.
        secs_to_ns(self.gpu.msda_latency(scenario.config()).total_s())
    }

    fn estimate_energy_pj(&self, scenario: &SyntheticWorkload) -> u128 {
        self.gpu.energy_picojoules(self.estimate_cost_ns(scenario))
    }

    fn idle_power_mw(&self, _clock: DvfsPoint) -> u64 {
        GPU_IDLE_MW
    }
}

/// The DEFA pruned pipeline on a GPU-class device.
#[derive(Debug, Clone)]
pub struct PrunedBackend {
    gpu: GpuSpec,
    settings: PruneSettings,
}

impl PrunedBackend {
    /// Pruned serving at the paper's operating point on the RTX 3090Ti
    /// model.
    pub fn new(settings: PruneSettings) -> Self {
        PrunedBackend { gpu: GpuSpec::rtx_3090ti(), settings }
    }

    /// The pruning configuration this backend serves with.
    pub fn settings(&self) -> &PruneSettings {
        &self.settings
    }
}

impl Backend for PrunedBackend {
    fn name(&self) -> &'static str {
        "pruned"
    }

    fn run(
        &self,
        scenario: &SyntheticWorkload,
        req: &InferenceRequest,
    ) -> Result<BackendOutput, ServeError> {
        let run = run_pruned_encoder_from(scenario, &self.settings, &req.fmap)?;
        // Cost model: the dense device latency scaled by the FLOP share
        // this request's masks actually kept. Irregular sparsity rarely
        // reaches its arithmetic speedup on real GPUs, so this is the
        // backend's *optimistic* bound — the accelerator's win over it in
        // the serve tables is therefore conservative.
        let keep = (1.0 - run.stats.flop_reduction()).clamp(0.0, 1.0);
        let cost = self.gpu.msda_latency(scenario.config()).total_s() * keep;
        let cost_ns = secs_to_ns(cost);
        // Energy rides the keep-scaled time, so each request's energy
        // reflects the FLOP share its own masks kept.
        Ok(BackendOutput {
            digest: tensor_digest(&run.final_features),
            cost_ns,
            energy: EnergyBreakdown::from_gpu(&self.gpu, cost_ns),
            dense_flops: scenario_dense_flops(scenario),
        })
    }

    fn estimate_cost_ns(&self, scenario: &SyntheticWorkload) -> u64 {
        // Dense device latency scaled by the *nominal* paper keep — the
        // real per-request keep needs the pruning pipeline, which an
        // estimate must not run.
        let dense = self.gpu.msda_latency(scenario.config()).total_s();
        secs_to_ns(dense * NOMINAL_PRUNE_KEEP)
    }

    fn estimate_energy_pj(&self, scenario: &SyntheticWorkload) -> u128 {
        self.gpu.energy_picojoules(self.estimate_cost_ns(scenario))
    }

    fn idle_power_mw(&self, _clock: DvfsPoint) -> u64 {
        GPU_IDLE_MW
    }
}

/// The cycle-simulated DEFA accelerator.
#[derive(Debug, Clone)]
pub struct AcceleratorBackend {
    accel: DefaAccelerator,
    settings: PruneSettings,
}

impl AcceleratorBackend {
    /// The paper's design point serving the paper's pruning operating
    /// point. Fidelity measurement is disabled — serving doesn't re-run
    /// the exact encoder per request.
    pub fn new() -> Self {
        AcceleratorBackend {
            accel: DefaAccelerator { measure_fidelity: false, ..DefaAccelerator::paper_default() },
            settings: PruneSettings::paper_defaults(),
        }
    }

    /// An explicit accelerator instance and pruning configuration.
    pub fn with(accel: DefaAccelerator, settings: PruneSettings) -> Self {
        AcceleratorBackend { accel: DefaAccelerator { measure_fidelity: false, ..accel }, settings }
    }
}

impl Default for AcceleratorBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for AcceleratorBackend {
    fn name(&self) -> &'static str {
        "defa-accel"
    }

    fn run(
        &self,
        scenario: &SyntheticWorkload,
        req: &InferenceRequest,
    ) -> Result<BackendOutput, ServeError> {
        let run = self.accel.run_workload_from(scenario, &req.fmap, &self.settings)?;
        // Exact integer conversion: cycles · 1e9 / f_clk.
        let cycles = run.report.counters.total_cycles() as u128;
        let cost_ns = ((cycles * 1_000_000_000) / CLOCK_HZ as u128).max(1) as u64;
        Ok(BackendOutput {
            digest: tensor_digest(&run.final_features),
            cost_ns,
            energy: EnergyBreakdown::from_accelerator(&run.report.energy),
            dense_flops: run.report.dense_flops,
        })
    }

    fn estimate_cost_ns(&self, scenario: &SyntheticWorkload) -> u64 {
        // Kept FLOPs over the PE array's effective throughput at the
        // design clock — the cycle-accurate number needs the MSGS
        // simulation, which an estimate must not run.
        let kept_flops = scenario_dense_flops(scenario) as f64 * NOMINAL_PRUNE_KEEP;
        let ops_per_s =
            self.accel.pe.peak_ops_per_sec(CLOCK_HZ) as f64 * ACCEL_EFFECTIVE_UTILIZATION;
        ((kept_flops / ops_per_s) * 1e9).round().max(1.0) as u64
    }

    fn estimate_energy_pj(&self, scenario: &SyntheticWorkload) -> u128 {
        // Nominal board power over the estimated time (1 W·ns = 1000 pJ).
        (ACCEL_NOMINAL_W * 1e3 * self.estimate_cost_ns(scenario) as f64).round() as u128
    }

    fn reprice(&self, out: BackendOutput, clock: DvfsPoint) -> BackendOutput {
        if clock == DvfsPoint::NOMINAL {
            return out; // exact identity — the NoOp byte-compat anchor
        }
        // Same cycle count at a slower clock: time scales by f_nom / f.
        let cost_ns = div_round(
            out.cost_ns as u128 * DvfsPoint::NOMINAL.freq_mhz as u128,
            clock.freq_mhz as u128,
        )
        .max(1) as u64;
        // Dynamic energy per event scales with V² (CV²): each component
        // is rescaled in exact integer arithmetic.
        let v2 = clock.mv as u128 * clock.mv as u128;
        let v2_nom = DvfsPoint::NOMINAL.mv as u128 * DvfsPoint::NOMINAL.mv as u128;
        let scale = |pj: u128| div_round(pj * v2, v2_nom);
        BackendOutput {
            digest: out.digest,
            cost_ns,
            energy: EnergyBreakdown {
                compute_pj: scale(out.energy.compute_pj),
                sram_pj: scale(out.energy.sram_pj),
                dram_pj: scale(out.energy.dram_pj),
            },
            dense_flops: out.dense_flops,
        }
    }

    fn idle_power_mw(&self, clock: DvfsPoint) -> u64 {
        scaled_idle_mw(ACCEL_IDLE_MW_NOMINAL, clock)
    }
}

/// SplitMix64 — the digest/jitter mixer of [`ReplayBackend`]. Chosen for
/// full 64-bit avalanche at three multiplies; any stateless mixer would
/// do, determinism is the only requirement.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A payload-free *replay* backend: serves from per-scenario calibration
/// tables instead of executing the model, so one request costs a table
/// lookup and a hash — the backend that lets the discrete-event engine
/// push 10M-request traces through in seconds.
///
/// Calibration snapshots the wrapped backend's analytic per-scenario
/// estimates once at construction ([`ReplayBackend::calibrated`]);
/// serving then replays them with a deterministic ±12.5 % per-request
/// cost jitter (so batches don't degenerate into identical-latency
/// lockstep) and a per-request SplitMix64 response digest. Estimates,
/// DVFS re-pricing and idle power delegate to the wrapped backend, so
/// replay fleets stay consistent with the policy layers and the energy
/// model of what they stand in for.
pub struct ReplayBackend {
    inner: std::sync::Arc<dyn Backend>,
    /// Per-scenario calibrated service time, indexed by scenario.
    cost_ns: Vec<u64>,
    /// Per-scenario calibrated energy (whole estimate as compute; the
    /// wrapped backend's estimate has no component split).
    energy_pj: Vec<u128>,
    /// Per-scenario dense-equivalent FLOPs.
    dense_flops: Vec<u64>,
    /// Digest/jitter salt, derived from the generator seed.
    salt: u64,
}

impl ReplayBackend {
    /// Calibrates a replay table against `inner`'s analytic estimates
    /// over every scenario of `gen`.
    ///
    /// # Errors
    ///
    /// Propagates scenario-lookup failures from the generator.
    pub fn calibrated(
        gen: &defa_model::workload::RequestGenerator,
        inner: std::sync::Arc<dyn Backend>,
    ) -> Result<Self, ServeError> {
        // The nominal rows of a cost table *are* the analytic estimates,
        // so calibration is one memoized pricing pass (modeled service
        // times are clamped to ≥ 1 ns so virtual time always advances).
        let table = crate::cost::CostTable::build(inner.as_ref(), gen, &[])?;
        let cost_ns = table.nominal_cost_row().iter().map(|&c| c.max(1)).collect();
        let energy_pj = table.nominal_energy_row().to_vec();
        let mut dense_flops = Vec::with_capacity(gen.scenarios().len());
        for i in 0..gen.scenarios().len() {
            dense_flops.push(scenario_dense_flops(gen.scenario(i)?));
        }
        let salt = splitmix64(gen.seed() ^ 0x5EED_0A11_0E57_A717);
        Ok(ReplayBackend { inner, cost_ns, energy_pj, dense_flops, salt })
    }
}

/// Salt folded into the generator seed for replay digests, so replayed
/// responses never collide with real tensor digests by construction.
const REPLAY_DIGEST_SALT: u64 = 0x9E1A_7000_D16E_57A1;

impl Backend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn run(
        &self,
        scenario: &SyntheticWorkload,
        req: &InferenceRequest,
    ) -> Result<BackendOutput, ServeError> {
        // A replay backend never needs the payload, but `run` keeps the
        // generic contract so mixed fleets can still dispatch to it.
        self.run_modeled(req.scenario, scenario, req.id)
    }

    fn estimate_cost_ns(&self, scenario: &SyntheticWorkload) -> u64 {
        self.inner.estimate_cost_ns(scenario)
    }

    fn estimate_energy_pj(&self, scenario: &SyntheticWorkload) -> u128 {
        self.inner.estimate_energy_pj(scenario)
    }

    fn reprice(&self, out: BackendOutput, clock: DvfsPoint) -> BackendOutput {
        self.inner.reprice(out, clock)
    }

    fn idle_power_mw(&self, clock: DvfsPoint) -> u64 {
        self.inner.idle_power_mw(clock)
    }

    fn payload_free(&self) -> bool {
        true
    }

    fn run_modeled(
        &self,
        scenario_idx: usize,
        _scenario: &SyntheticWorkload,
        id: u64,
    ) -> Result<BackendOutput, ServeError> {
        let base = self.cost_ns[scenario_idx];
        // ±12.5 % deterministic jitter: offset in [0, base/4], centred.
        let spread = base / 4;
        let jitter = splitmix64(self.salt ^ id.wrapping_mul(0xA24B_AED4_963E_E407));
        let cost_ns = (base - spread / 2 + jitter % (spread + 1)).max(1);
        Ok(BackendOutput {
            digest: splitmix64(self.salt ^ REPLAY_DIGEST_SALT ^ id),
            cost_ns,
            energy: EnergyBreakdown {
                compute_pj: self.energy_pj[scenario_idx],
                sram_pj: 0,
                dram_pj: 0,
            },
            dense_flops: self.dense_flops[scenario_idx],
        })
    }
}

/// The three shipped backends, for sweeps and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// [`DenseBackend`].
    Dense,
    /// [`PrunedBackend`] at paper defaults.
    Pruned,
    /// [`AcceleratorBackend`] at paper defaults.
    Accelerator,
}

impl BackendKind {
    /// All backends in presentation order.
    pub fn all() -> [BackendKind; 3] {
        [BackendKind::Dense, BackendKind::Pruned, BackendKind::Accelerator]
    }

    /// The backend's display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Pruned => "pruned",
            BackendKind::Accelerator => "defa-accel",
        }
    }

    /// Builds the backend at its default operating point.
    pub fn build(&self) -> std::sync::Arc<dyn Backend> {
        match self {
            BackendKind::Dense => std::sync::Arc::new(DenseBackend::new()),
            BackendKind::Pruned => {
                std::sync::Arc::new(PrunedBackend::new(PruneSettings::paper_defaults()))
            }
            BackendKind::Accelerator => std::sync::Arc::new(AcceleratorBackend::new()),
        }
    }

    /// Builds one backend per kind — a (possibly heterogeneous) fleet for
    /// `ServeRuntime::run_fleet`, one shard per entry.
    pub fn build_fleet(kinds: &[BackendKind]) -> Vec<std::sync::Arc<dyn Backend>> {
        kinds.iter().map(|k| k.build()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::workload::RequestGenerator;
    use defa_model::MsdaConfig;

    fn tiny_gen() -> RequestGenerator {
        RequestGenerator::standard(&MsdaConfig::tiny(), 17).unwrap()
    }

    #[test]
    fn backends_are_deterministic_per_request() {
        let gen = tiny_gen();
        let req = gen.request(2);
        let wl = gen.scenario(req.scenario).unwrap();
        for kind in BackendKind::all() {
            let backend = kind.build();
            let a = backend.run(wl, &req).unwrap();
            let b = backend.run(wl, &req).unwrap();
            assert_eq!(a, b, "{} not deterministic", backend.name());
            assert!(a.cost_ns > 0);
        }
    }

    #[test]
    fn distinct_requests_have_distinct_responses() {
        let gen = tiny_gen();
        let backend = DenseBackend::new();
        let (mut last_digest, mut distinct) = (0u64, 0);
        for id in 0..6 {
            let req = gen.request(id);
            let wl = gen.scenario(req.scenario).unwrap();
            let out = backend.run(wl, &req).unwrap();
            if out.digest != last_digest {
                distinct += 1;
            }
            last_digest = out.digest;
        }
        assert!(distinct >= 5, "responses should differ per request");
    }

    #[test]
    fn cost_models_are_ordered_sanely() {
        let gen = tiny_gen();
        let req = gen.request(0);
        let wl = gen.scenario(req.scenario).unwrap();
        let dense = DenseBackend::new().run(wl, &req).unwrap();
        let pruned = PrunedBackend::new(PruneSettings::paper_defaults()).run(wl, &req).unwrap();
        let accel = AcceleratorBackend::new().run(wl, &req).unwrap();
        assert!(pruned.cost_ns < dense.cost_ns, "pruning must cut modeled cost");
        // The 400 MHz edge accelerator lands in the same latency ballpark
        // as the 40-TFLOPS GPU model (its paper win is energy, not raw
        // speed); pin the ballpark so a cost-model regression is loud.
        assert!(
            accel.cost_ns < dense.cost_ns * 10 && accel.cost_ns * 100 > dense.cost_ns,
            "accel {} vs dense {} out of ballpark",
            accel.cost_ns,
            dense.cost_ns
        );
    }

    #[test]
    fn energy_attribution_reproduces_the_paper_level_ordering() {
        let gen = tiny_gen();
        let req = gen.request(0);
        let wl = gen.scenario(req.scenario).unwrap();
        let dense = DenseBackend::new().run(wl, &req).unwrap();
        let pruned = PrunedBackend::new(PruneSettings::paper_defaults()).run(wl, &req).unwrap();
        let accel = AcceleratorBackend::new().run(wl, &req).unwrap();
        for out in [&dense, &pruned, &accel] {
            assert!(out.energy.total_pj() > 0, "every request must cost energy");
        }
        // All backends account the same dense-equivalent work.
        assert_eq!(dense.dense_flops, pruned.dense_flops);
        assert_eq!(dense.dense_flops, accel.dense_flops);
        assert!(dense.dense_flops > 0);
        // Pruning cuts GPU energy (keep-scaled time at the same power).
        assert!(pruned.energy.total_pj() < dense.energy.total_pj());
        // The paper's headline: the accelerator's event-priced energy is
        // orders of magnitude below the GPU board model's.
        assert!(
            accel.energy.total_pj() * 100 < dense.energy.total_pj(),
            "accel {} pJ vs dense {} pJ",
            accel.energy.total_pj(),
            dense.energy.total_pj()
        );
        // GPU backends are board-priced (no component split); the
        // accelerator keeps the Figure-8 split.
        assert_eq!(dense.energy.sram_pj + dense.energy.dram_pj, 0);
        assert!(accel.energy.dram_pj > 0 && accel.energy.sram_pj > 0);
    }

    #[test]
    fn pruned_and_dense_disagree_on_features_but_not_wildly() {
        let gen = tiny_gen();
        let req = gen.request(1);
        let wl = gen.scenario(req.scenario).unwrap();
        let dense = DenseBackend::new().run(wl, &req).unwrap();
        let pruned = PrunedBackend::new(PruneSettings::paper_defaults()).run(wl, &req).unwrap();
        assert_ne!(dense.digest, pruned.digest, "pruning approximates the output");
    }

    #[test]
    fn decode_phase_scales_estimates_and_outputs_together() {
        let gen = tiny_gen();
        let wl = gen.scenario(0).unwrap();
        for kind in BackendKind::all() {
            let backend = kind.build();
            // Prefill is the full-context pass; decode is the phase ratio.
            assert_eq!(backend.estimate_prefill_ns(wl), backend.estimate_cost_ns(wl));
            assert_eq!(
                backend.estimate_decode_ns(wl),
                (backend.estimate_cost_ns(wl) / DECODE_COST_DIV).max(1),
                "{} decode estimate off the phase model",
                backend.name()
            );
        }
        let req = gen.request(3);
        let backend = AcceleratorBackend::new();
        let prefill = backend.run(gen.scenario(req.scenario).unwrap(), &req).unwrap();
        let d1 = backend.decode_output(&prefill, 1);
        let d2 = backend.decode_output(&prefill, 2);
        assert_eq!(d1, backend.decode_output(&prefill, 1), "pure in (prefill, iter)");
        assert_ne!(d1.digest, d2.digest, "iterations must have distinct responses");
        assert_ne!(d1.digest, prefill.digest);
        assert_eq!(d1.cost_ns, (prefill.cost_ns / DECODE_COST_DIV).max(1));
        assert!(d1.energy.total_pj() <= prefill.energy.total_pj() / DECODE_COST_DIV as u128);
        assert_eq!(d1.dense_flops, prefill.dense_flops / DECODE_COST_DIV);
    }

    #[test]
    fn estimates_are_cheap_deterministic_and_sanely_ordered() {
        let gen = tiny_gen();
        let wl = gen.scenario(0).unwrap();
        let dense = DenseBackend::new();
        let pruned = PrunedBackend::new(PruneSettings::paper_defaults());
        let accel = AcceleratorBackend::new();
        // Deterministic and positive.
        for (cost, energy) in [
            (dense.estimate_cost_ns(wl), dense.estimate_energy_pj(wl)),
            (pruned.estimate_cost_ns(wl), pruned.estimate_energy_pj(wl)),
            (accel.estimate_cost_ns(wl), accel.estimate_energy_pj(wl)),
        ] {
            assert!(cost > 0 && energy > 0);
        }
        assert_eq!(dense.estimate_cost_ns(wl), dense.estimate_cost_ns(wl));
        // Pruning cuts the estimated cost; the dense estimate is exact.
        assert!(pruned.estimate_cost_ns(wl) < dense.estimate_cost_ns(wl));
        let req = gen.request(0);
        let exact = dense.run(gen.scenario(req.scenario).unwrap(), &req).unwrap();
        let wl0 = gen.scenario(req.scenario).unwrap();
        assert_eq!(dense.estimate_cost_ns(wl0), exact.cost_ns);
        // The accelerator's energy estimate undercuts the GPU backends by
        // orders of magnitude — the signal energy-aware routing steers by.
        assert!(accel.estimate_energy_pj(wl) * 100 < dense.estimate_energy_pj(wl));
    }

    #[test]
    fn fleets_build_one_backend_per_kind() {
        let fleet = BackendKind::build_fleet(&[BackendKind::Dense, BackendKind::Accelerator]);
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[0].name(), "dense");
        assert_eq!(fleet[1].name(), "defa-accel");
    }

    #[test]
    fn repricing_is_identity_at_nominal_and_scaled_down_the_ladder() {
        let gen = tiny_gen();
        let req = gen.request(0);
        let wl = gen.scenario(req.scenario).unwrap();
        let accel = AcceleratorBackend::new();
        let out = accel.run(wl, &req).unwrap();
        assert_eq!(accel.reprice(out, DvfsPoint::NOMINAL), out, "nominal must be exact identity");
        let slow = accel.reprice(out, crate::control::DVFS_LADDER[3]); // 100 MHz @ 0.7 V
        assert_eq!(slow.digest, out.digest, "DVFS never changes the response bits");
        assert_eq!(slow.dense_flops, out.dense_flops);
        assert_eq!(slow.cost_ns, out.cost_ns * 4, "quarter clock, 4x latency");
        // 0.49x dynamic energy (0.7² V scaling), within integer rounding.
        let want = out.energy.total_pj() * 49 / 100;
        let got = slow.energy.total_pj();
        assert!(got.abs_diff(want) <= 3, "V² scaling: got {got}, want ~{want}");
        // GPU backends are not on the accelerator clock domain.
        let dense = DenseBackend::new();
        let d = dense.run(wl, &req).unwrap();
        assert_eq!(dense.reprice(d, crate::control::DVFS_LADDER[3]), d);
    }

    #[test]
    fn idle_power_scales_with_frequency_and_voltage() {
        let accel = AcceleratorBackend::new();
        let nominal = accel.idle_power_mw(DvfsPoint::NOMINAL);
        assert_eq!(nominal, 30);
        let floor = accel.idle_power_mw(crate::control::DVFS_LADDER[3]);
        assert!(
            floor * 4 < nominal,
            "bottom of the ladder must cut idle power multiples: {floor} vs {nominal} mW"
        );
        // GPU idle power is clock-independent and far above the
        // accelerator's — the fleet-level energy-proportionality gap.
        let dense = DenseBackend::new();
        assert_eq!(
            dense.idle_power_mw(DvfsPoint::NOMINAL),
            dense.idle_power_mw(crate::control::DVFS_LADDER[3]),
            "the GPU model is not on the accelerator's clock domain"
        );
        assert!(dense.idle_power_mw(DvfsPoint::NOMINAL) > 100 * nominal);
    }

    #[test]
    fn replay_backend_is_deterministic_cheap_and_clock_aware() {
        let gen = tiny_gen();
        let accel: std::sync::Arc<dyn Backend> = std::sync::Arc::new(AcceleratorBackend::new());
        let replay = ReplayBackend::calibrated(&gen, accel.clone()).unwrap();
        assert!(replay.payload_free());
        let wl = gen.scenario(0).unwrap();
        let a = replay.run_modeled(0, wl, 3).unwrap();
        let b = replay.run_modeled(0, wl, 3).unwrap();
        assert_eq!(a, b, "replay must be deterministic per (scenario, id)");
        // `run` with a materialized request takes the same path.
        let req = gen.request(3);
        let via_run = replay.run(gen.scenario(req.scenario).unwrap(), &req).unwrap();
        assert_eq!(via_run, replay.run_modeled(req.scenario, wl, 3).unwrap());
        // Jitter spreads costs across ids but stays near the calibrated
        // estimate.
        let est = accel.estimate_cost_ns(wl);
        let costs: Vec<u64> =
            (0..16).map(|id| replay.run_modeled(0, wl, id).unwrap().cost_ns).collect();
        assert!(costs.iter().any(|&c| c != costs[0]), "jitter must vary by id");
        for &c in &costs {
            assert!(
                c >= est - est / 4 && c <= est + est / 4,
                "cost {c} strayed from estimate {est}"
            );
        }
        // Distinct ids get distinct digests; energy and estimates track
        // the wrapped backend.
        let d0 = replay.run_modeled(0, wl, 0).unwrap().digest;
        let d1 = replay.run_modeled(0, wl, 1).unwrap().digest;
        assert_ne!(d0, d1);
        assert_eq!(replay.estimate_cost_ns(wl), est);
        assert_eq!(
            replay.idle_power_mw(DvfsPoint::NOMINAL),
            accel.idle_power_mw(DvfsPoint::NOMINAL)
        );
        // Re-pricing rides the wrapped backend's clock domain.
        let slow = replay.reprice(a, crate::control::DVFS_LADDER[3]);
        assert_eq!(slow.cost_ns, a.cost_ns * 4);
        // The default hook on a model-executing backend refuses.
        assert!(matches!(
            DenseBackend::new().run_modeled(0, wl, 0),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn digest_tracks_bit_patterns() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let c = Tensor::from_vec(vec![1.0, 2.0, 3.001], [3]).unwrap();
        assert_eq!(tensor_digest(&a), tensor_digest(&b));
        assert_ne!(tensor_digest(&a), tensor_digest(&c));
    }
}
