//! Metrics registry: named counters, gauges and log2 histograms with
//! epoch-boundary snapshots forming a compact, bounded time-series.
//!
//! Everything here is integer-valued and updated only from the
//! single-threaded engine loop on the virtual clock, so registry
//! contents are byte-identical across worker-pool sizes by
//! construction. Snapshots capture counter and gauge values (histograms
//! are cumulative, reported once at the end) and are capped at the
//! configured buffer size; overflow is counted, never recorded.

/// Handle to a registered counter (monotone, `inc` only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered gauge (`set` to the latest value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a registered log2 histogram (`observe` samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) usize);

/// A named integer metric: current value plus identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Dotted metric name, e.g. `requests.admitted`.
    pub name: String,
    /// Unit label, e.g. `req`, `pJ`, `MHz`.
    pub unit: &'static str,
    /// Current value (counters accumulate, gauges hold the last `set`).
    pub value: u128,
}

/// Power-of-two bucketed histogram over `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`;
/// bucket 31 absorbs everything from `2^30` up. Exact count/sum/max
/// ride along so means are not quantized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Log2Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 32],
    /// Total samples observed.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u128,
    /// Largest sample observed.
    pub max: u64,
}

impl Log2Histogram {
    /// Bucket index for a sample.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(31)
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Counter + gauge values captured at one epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Epoch index that just ended.
    pub epoch: u64,
    /// Virtual boundary time.
    pub t_ns: u64,
    /// Counter values in registration order.
    pub counters: Vec<u128>,
    /// Gauge values in registration order.
    pub gauges: Vec<u128>,
}

/// The registry: registration returns typed ids, updates go through the
/// ids, `snapshot` appends the current counter/gauge vectors to the
/// bounded time-series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<Metric>,
    gauges: Vec<Metric>,
    hist_names: Vec<(String, &'static str)>,
    hists: Vec<Log2Histogram>,
    snapshots: Vec<MetricsSnapshot>,
    snapshot_cap: usize,
    snapshots_dropped: u64,
}

impl MetricsRegistry {
    /// An empty registry whose time-series holds at most `snapshot_cap`
    /// epoch snapshots.
    pub fn new(snapshot_cap: usize) -> Self {
        MetricsRegistry {
            counters: Vec::new(),
            gauges: Vec::new(),
            hist_names: Vec::new(),
            hists: Vec::new(),
            snapshots: Vec::new(),
            snapshot_cap,
            snapshots_dropped: 0,
        }
    }

    /// Registers a counter; the returned id is its permanent handle.
    pub fn counter(&mut self, name: impl Into<String>, unit: &'static str) -> CounterId {
        self.counters.push(Metric { name: name.into(), unit, value: 0 });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, unit: &'static str) -> GaugeId {
        self.gauges.push(Metric { name: name.into(), unit, value: 0 });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a log2 histogram.
    pub fn histogram(&mut self, name: impl Into<String>, unit: &'static str) -> HistId {
        self.hist_names.push((name.into(), unit));
        self.hists.push(Log2Histogram::default());
        HistId(self.hists.len() - 1)
    }

    /// Adds to a counter.
    pub fn inc(&mut self, id: CounterId, by: u128) {
        self.counters[id.0].value += by;
    }

    /// Sets a gauge to its latest value.
    pub fn set(&mut self, id: GaugeId, value: u128) {
        self.gauges[id.0].value = value;
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].observe(v);
    }

    /// Appends the current counter/gauge values to the time-series, or
    /// counts the snapshot as dropped when the buffer is full.
    pub fn snapshot(&mut self, epoch: u64, t_ns: u64) {
        if self.snapshots.len() < self.snapshot_cap {
            self.snapshots.push(MetricsSnapshot {
                epoch,
                t_ns,
                counters: self.counters.iter().map(|m| m.value).collect(),
                gauges: self.gauges.iter().map(|m| m.value).collect(),
            });
        } else {
            self.snapshots_dropped += 1;
        }
    }

    /// Registered counters (registration order; values are final).
    pub fn counters(&self) -> &[Metric] {
        &self.counters
    }

    /// Registered gauges (registration order; values are the last set).
    pub fn gauges(&self) -> &[Metric] {
        &self.gauges
    }

    /// Registered histograms as `(name, unit, histogram)` triples.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &'static str, &Log2Histogram)> {
        self.hist_names.iter().zip(&self.hists).map(|((name, unit), h)| (name.as_str(), *unit, h))
    }

    /// The epoch-boundary time-series (bounded by the snapshot cap).
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }

    /// Snapshots that hit the cap and were counted instead of stored.
    pub fn snapshots_dropped(&self) -> u64 {
        self.snapshots_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_split_at_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1 << 29), 30);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 31);
    }

    #[test]
    fn histogram_tracks_exact_count_sum_max() {
        let mut h = Log2Histogram::default();
        for v in [0u64, 1, 3, 8, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 112);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 112.0 / 5.0);
    }

    #[test]
    fn registry_roundtrips_counters_gauges_hists() {
        let mut reg = MetricsRegistry::new(8);
        let c = reg.counter("requests.admitted", "req");
        let g = reg.gauge("queue.depth", "req");
        let h = reg.histogram("batch.occupancy", "req/batch");
        reg.inc(c, 3);
        reg.set(g, 7);
        reg.set(g, 5);
        reg.observe(h, 4);
        assert_eq!(reg.counters()[0].value, 3);
        assert_eq!(reg.gauges()[0].value, 5, "gauge holds the latest set");
        let (name, unit, hist) = reg.histograms().next().unwrap();
        assert_eq!((name, unit, hist.count), ("batch.occupancy", "req/batch", 1));
    }

    #[test]
    fn snapshots_capture_values_in_registration_order_and_cap() {
        let mut reg = MetricsRegistry::new(2);
        let c = reg.counter("a", "x");
        let g = reg.gauge("b", "y");
        for epoch in 0..4u64 {
            reg.inc(c, 1);
            reg.set(g, 10 + epoch as u128);
            reg.snapshot(epoch, epoch * 1_000);
        }
        assert_eq!(reg.snapshots().len(), 2);
        assert_eq!(reg.snapshots_dropped(), 2);
        assert_eq!(reg.snapshots()[1].counters, vec![2]);
        assert_eq!(reg.snapshots()[1].gauges, vec![11]);
        assert_eq!(reg.snapshots()[1].t_ns, 1_000);
    }
}
