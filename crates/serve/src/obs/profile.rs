//! Self-profiling: wall-clock section timers around the engine's hot
//! paths.
//!
//! Unlike everything else in `obs`, these numbers read the *host*
//! clock, so they vary run to run and across machines. They are
//! therefore excluded from every determinism surface: `ObsReport`'s
//! `PartialEq` skips the profile, and the `serve_obs` gate document
//! emits them only under `*_wall_ns` field names, which the
//! `bench_diff` tolerance classes treat as informational.

/// One instrumented hot-path section of the engine loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfSection {
    /// Popping the next earliest event off the event list.
    EventPop,
    /// Pulling due arrivals from the lazy stream into admission.
    ArrivalPull,
    /// Scheduling + launching one batch (select, route, exec submit).
    Dispatch,
    /// Settling a finished batch (per-member accounting).
    Settle,
    /// One controller decision + applied actions at a boundary.
    ControllerStep,
}

impl ProfSection {
    /// All sections, in reporting order.
    pub const ALL: [ProfSection; 5] = [
        ProfSection::EventPop,
        ProfSection::ArrivalPull,
        ProfSection::Dispatch,
        ProfSection::Settle,
        ProfSection::ControllerStep,
    ];

    /// Stable snake_case name (used as JSON field prefixes).
    pub fn name(&self) -> &'static str {
        match self {
            ProfSection::EventPop => "event_pop",
            ProfSection::ArrivalPull => "arrival_pull",
            ProfSection::Dispatch => "dispatch",
            ProfSection::Settle => "settle",
            ProfSection::ControllerStep => "controller_step",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// Accumulated wall time for one section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionStat {
    /// Times the section ran.
    pub calls: u64,
    /// Total host wall time spent inside it.
    pub wall_ns: u64,
}

/// Per-section wall-clock totals for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfProfile {
    stats: [SectionStat; 5],
}

impl SelfProfile {
    /// Adds one timed invocation of `section`.
    pub fn add(&mut self, section: ProfSection, wall_ns: u64) {
        let s = &mut self.stats[section.index()];
        s.calls += 1;
        s.wall_ns += wall_ns;
    }

    /// Accumulated stats for one section.
    pub fn stat(&self, section: ProfSection) -> SectionStat {
        self.stats[section.index()]
    }

    /// Wall time across all sections.
    pub fn total_wall_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.wall_ns).sum()
    }

    /// Calls across all sections.
    pub fn total_calls(&self) -> u64 {
        self.stats.iter().map(|s| s.calls).sum()
    }
}

/// An in-flight scoped timer handed out by [`Obs::prof_begin`] —
/// opaque, so the engine loop carries it without ever naming the host
/// clock type. `None` when profiling is off (zero overhead).
#[derive(Debug)]
pub(crate) struct ProfTimer(Option<std::time::Instant>);

/// The profiling half of the `Obs` collector. These two methods are
/// the **only sanctioned wall-clock readers in the serving stack**:
/// the `no-wall-clock` rule of `defa-analysis` exempts exactly this
/// file (plus `crates/criterion` and the bench bins), so a host-clock
/// read anywhere else in `crates/serve` fails `lint_static`.
impl crate::obs::Obs {
    /// Starts a wall-clock scoped timer when profiling is on.
    #[inline]
    pub(crate) fn prof_begin(&self) -> ProfTimer {
        ProfTimer(if self.profile_on { Some(std::time::Instant::now()) } else { None })
    }

    /// Ends a scoped timer begun by [`Self::prof_begin`].
    #[inline]
    pub(crate) fn prof_end(&mut self, section: ProfSection, t0: ProfTimer) {
        if let Some(t0) = t0.0 {
            self.profile.add(section, t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_have_stable_distinct_names() {
        let names: Vec<_> = ProfSection::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["event_pop", "arrival_pull", "dispatch", "settle", "controller_step"]);
    }

    #[test]
    fn profile_accumulates_per_section() {
        let mut p = SelfProfile::default();
        p.add(ProfSection::Dispatch, 100);
        p.add(ProfSection::Dispatch, 50);
        p.add(ProfSection::Settle, 10);
        assert_eq!(p.stat(ProfSection::Dispatch), SectionStat { calls: 2, wall_ns: 150 });
        assert_eq!(p.stat(ProfSection::Settle).calls, 1);
        assert_eq!(p.stat(ProfSection::EventPop), SectionStat::default());
        assert_eq!(p.total_wall_ns(), 160);
        assert_eq!(p.total_calls(), 3);
    }
}
