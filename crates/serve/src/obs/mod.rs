//! `defa_serve::obs` — the deterministic observability layer of the
//! serving engine.
//!
//! Production serving stacks ship tracing and metrics as a first-class
//! subsystem so operators can attribute p99 spikes and power excursions
//! to specific shards, epochs and policy decisions. This module does the
//! same for the discrete-event engine — *deterministically*: everything
//! it records is keyed to the virtual clock and the seeded request
//! stream, so the full observability output is byte-identical across
//! `RAYON_NUM_THREADS`, shard counts and batch compositions, exactly
//! like every other report surface.
//!
//! Three pillars, each independently switchable via [`ObsConfig`]:
//!
//! * **Structured span tracing** ([`trace`]) — each request's lifecycle
//!   (arrival → admit/drop → schedule → dispatch → settle) emits typed
//!   [`SpanEvent`]s on the virtual clock, gated per request by a seeded
//!   [`SpanSampler`] (`trace_sample` of the id space, a pure function of
//!   `(seed, id)`), into a bounded buffer. The buffer exports as Chrome
//!   `trace_event` JSON ([`ObsReport::chrome_trace`]) loadable in
//!   Perfetto or `chrome://tracing`: one track per shard plus
//!   requests/controller/epoch tracks.
//! * **Metrics registry** ([`metrics`]) — named counters, gauges and
//!   log2 histograms (queue depth, in-flight requests, batch occupancy,
//!   per-shard energy, scheduler decisions, event-heap depth)
//!   snapshotted at every *stepped* epoch boundary into a bounded
//!   time-series. All values are integers; the `serve_obs` bench bin
//!   serializes them through `defa_bench::json`.
//! * **Self-profiling** ([`profile`]) — wall-clock scoped timers around
//!   the engine's hot paths (event pop, arrival pull, dispatch, settle,
//!   controller step). Wall time is inherently nondeterministic, so the
//!   profile is **excluded from every determinism surface**:
//!   [`ObsReport`]'s `PartialEq` ignores it, and its JSON fields use the
//!   `*_wall_ns` suffix the `bench_diff` gate treats as informational.
//!
//! # Zero overhead when disabled
//!
//! The default [`ObsConfig`] disables all three pillars. Every runtime
//! hook starts with an inlined boolean check and returns immediately, no
//! buffers are allocated, and the virtual schedule itself is never
//! consulted or altered — which is why all pre-observability digest and
//! fingerprint pins hold unchanged, and why the `serve_scale` CI floor
//! keeps gating the disabled-path speed.

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{CounterId, GaugeId, HistId, Log2Histogram, Metric, MetricsRegistry};
pub use profile::{ProfSection, SectionStat, SelfProfile};
pub use trace::{chrome_trace, SpanEvent, SpanSampler, TraceBuffer};

use crate::control::DvfsPoint;

/// Default span-buffer capacity: deep enough for every test/bench scale
/// at full sampling, bounded so trace-scale runs cannot grow without
/// limit (overflow is counted, never silently lost).
pub const DEFAULT_TRACE_BUFFER: usize = 65_536;

/// Default metrics time-series capacity (snapshots, one per stepped
/// epoch boundary).
pub const DEFAULT_METRICS_BUFFER: usize = 4_096;

/// Observability configuration: which pillars are on and how much they
/// may buffer.
///
/// The default is fully disabled — the zero-overhead path every
/// existing pin runs on. See [`crate::config::ServeConfig::validate`]
/// for the accepted ranges (`trace_sample` must be a finite fraction in
/// `[0, 1]`; enabled buffers must have positive capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Record structured span events.
    pub tracing: bool,
    /// Fraction of request ids whose lifecycle spans are recorded,
    /// decided per id by the seeded [`SpanSampler`] (1.0 = every
    /// request). Fleet-level events (dispatch, epoch, control) are
    /// recorded whenever tracing is on, regardless of the sample rate.
    pub trace_sample: f64,
    /// Span-buffer capacity in events; overflow increments
    /// [`ObsReport::events_dropped`] deterministically.
    pub trace_buffer: usize,
    /// Maintain the metrics registry and its epoch-boundary snapshots.
    pub metrics: bool,
    /// Metrics time-series capacity in snapshots.
    pub metrics_buffer: usize,
    /// Run wall-clock scoped timers around the engine hot paths. The
    /// resulting [`SelfProfile`] is excluded from all determinism
    /// surfaces.
    pub profile: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            tracing: false,
            trace_sample: 1.0,
            trace_buffer: DEFAULT_TRACE_BUFFER,
            metrics: false,
            metrics_buffer: DEFAULT_METRICS_BUFFER,
            profile: false,
        }
    }
}

impl ObsConfig {
    /// The zero-overhead default: everything off.
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Span tracing at the given sample rate, other pillars off.
    pub fn tracing_at(trace_sample: f64) -> Self {
        ObsConfig { tracing: true, trace_sample, ..ObsConfig::default() }
    }

    /// Full deterministic observability: tracing at 1.0 plus the metrics
    /// registry. Profiling stays off — it is wall-clock and opt-in.
    pub fn full() -> Self {
        ObsConfig { tracing: true, metrics: true, ..ObsConfig::default() }
    }

    /// This configuration with the metrics registry on.
    pub fn with_metrics(self) -> Self {
        ObsConfig { metrics: true, ..self }
    }

    /// This configuration with wall-clock self-profiling on.
    pub fn with_profile(self) -> Self {
        ObsConfig { profile: true, ..self }
    }

    /// Whether any pillar is enabled.
    pub fn enabled(&self) -> bool {
        self.tracing || self.metrics || self.profile
    }
}

/// The observability section of a [`crate::ServeReport`].
///
/// Always present; empty (and equal to [`ObsReport::disabled`]) when the
/// run's [`ObsConfig`] had every pillar off.
///
/// # Determinism
///
/// `events`, `events_dropped`, `sampled_requests` and `metrics` are
/// outputs of the virtual schedule and byte-identical across thread
/// counts. `profile` is wall clock and therefore **ignored by this
/// type's `PartialEq`** — two runs with identical schedules compare
/// equal however long they took.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// The configuration the run observed under.
    pub config: ObsConfig,
    /// Recorded span events, in engine processing order. Per request
    /// the sub-sequence is monotone in virtual time (arrival ≤ admit ≤
    /// schedule ≤ settle).
    pub events: Vec<SpanEvent>,
    /// Span events discarded because the bounded buffer was full.
    pub events_dropped: u64,
    /// Arrivals the seeded sampler selected for lifecycle tracing.
    pub sampled_requests: u64,
    /// Fleet size of the run (sizes the per-shard Chrome tracks).
    pub fleet_size: usize,
    /// The metrics registry with its epoch snapshot series, when the
    /// metrics pillar was on.
    pub metrics: Option<MetricsRegistry>,
    /// Wall-clock self-profile of the engine hot paths (all zero unless
    /// profiling was on). Excluded from `PartialEq`.
    pub profile: SelfProfile,
}

impl PartialEq for ObsReport {
    fn eq(&self, other: &Self) -> bool {
        // `profile` is wall clock — deliberately not compared.
        self.config == other.config
            && self.events == other.events
            && self.events_dropped == other.events_dropped
            && self.sampled_requests == other.sampled_requests
            && self.fleet_size == other.fleet_size
            && self.metrics == other.metrics
    }
}

impl ObsReport {
    /// The empty report of a fully disabled run.
    pub fn disabled() -> Self {
        ObsReport {
            config: ObsConfig::disabled(),
            events: Vec::new(),
            events_dropped: 0,
            sampled_requests: 0,
            fleet_size: 0,
            metrics: None,
            profile: SelfProfile::default(),
        }
    }

    /// Whether any pillar was enabled for the run.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// The recorded spans as a Chrome `trace_event` JSON document — open
    /// it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    /// A pure function of the recorded events: byte-identical whenever
    /// the virtual schedule is.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.events, self.fleet_size)
    }

    /// The span events of one request id, in recorded order.
    pub fn request_events(&self, id: u64) -> Vec<&SpanEvent> {
        self.events.iter().filter(|e| e.request_id() == Some(id)).collect()
    }
}

/// Internal ids of the metrics the runtime registers (see the serve
/// README for the full name/unit table).
#[derive(Debug)]
struct MetricIds {
    arrivals: CounterId,
    admitted: CounterId,
    dropped: CounterId,
    completed: CounterId,
    slo_violations: CounterId,
    sched_decisions: CounterId,
    shard_energy: Vec<CounterId>,
    queue_depth: GaugeId,
    inflight: GaugeId,
    events_depth: GaugeId,
    shard_free_events: GaugeId,
    active_shards: GaugeId,
    clock_mhz: GaugeId,
    batch_occupancy: HistId,
    /// Session-engine counters; `None` under the legacy one-shot engine
    /// so its registry (and every obs pin) keeps the exact pre-session
    /// metric set.
    iterations: Option<CounterId>,
    evictions: Option<CounterId>,
}

/// The live observability collector threaded through one `run_fleet`
/// call. Every hook is `#[inline]` and bails on a single boolean when
/// the corresponding pillar is off.
#[derive(Debug)]
pub(crate) struct Obs {
    config: ObsConfig,
    /// Hot-path guard: any deterministic pillar on.
    on: bool,
    tracing: bool,
    sampler: SpanSampler,
    buf: TraceBuffer,
    sampled_requests: u64,
    metrics: Option<(MetricsRegistry, MetricIds)>,
    profile_on: bool,
    profile: SelfProfile,
    fleet_size: usize,
}

impl Obs {
    /// A collector for one run: `seed` is the generator seed (the
    /// sampler salts it), `fleet_size` the full fleet including
    /// autoscaling headroom. `sessions` registers the session-engine
    /// counters (iterations, evictions); the legacy engine passes
    /// `false` so its metric set — and every obs pin on it — is
    /// unchanged.
    pub(crate) fn new(config: &ObsConfig, seed: u64, fleet_size: usize, sessions: bool) -> Self {
        let metrics = config.metrics.then(|| {
            let mut reg = MetricsRegistry::new(config.metrics_buffer);
            let ids = MetricIds {
                arrivals: reg.counter("requests.arrivals", "req"),
                admitted: reg.counter("requests.admitted", "req"),
                dropped: reg.counter("requests.dropped", "req"),
                completed: reg.counter("requests.completed", "req"),
                slo_violations: reg.counter("requests.slo_violations", "req"),
                sched_decisions: reg.counter("sched.decisions", "batches"),
                shard_energy: (0..fleet_size)
                    .map(|s| reg.counter(format!("shard{s}.energy_pj"), "pJ"))
                    .collect(),
                queue_depth: reg.gauge("queue.depth", "req"),
                inflight: reg.gauge("inflight.members", "req"),
                events_depth: reg.gauge("events.depth", "events"),
                shard_free_events: reg.gauge("events.shard_free", "events"),
                active_shards: reg.gauge("fleet.active_shards", "shards"),
                clock_mhz: reg.gauge("fleet.clock_mhz", "MHz"),
                batch_occupancy: reg.histogram("batch.occupancy", "req/batch"),
                iterations: sessions.then(|| reg.counter("requests.iterations", "iters")),
                evictions: sessions.then(|| reg.counter("sessions.evictions", "sessions")),
            };
            (reg, ids)
        });
        Obs {
            on: config.tracing || config.metrics,
            tracing: config.tracing,
            sampler: SpanSampler::new(seed, config.trace_sample),
            buf: TraceBuffer::new(if config.tracing { config.trace_buffer } else { 0 }),
            sampled_requests: 0,
            metrics,
            profile_on: config.profile,
            profile: SelfProfile::default(),
            fleet_size,
            config: config.clone(),
        }
    }

    #[inline]
    fn sampled(&self, id: u64) -> bool {
        self.tracing && self.sampler.sampled(id)
    }

    /// One arrival was offered to admission.
    #[inline]
    pub(crate) fn on_arrival(&mut self, t_ns: u64, id: u64, scenario: usize) {
        if !self.on {
            return;
        }
        if self.sampled(id) {
            self.sampled_requests += 1;
            self.buf.push(SpanEvent::Arrival { t_ns, id, scenario });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            reg.inc(ids.arrivals, 1);
        }
    }

    /// The arrival entered the queue (`queue_depth` = depth after).
    #[inline]
    pub(crate) fn on_admitted(&mut self, t_ns: u64, id: u64, queue_depth: usize) {
        if !self.on {
            return;
        }
        if self.sampled(id) {
            self.buf.push(SpanEvent::Admitted { t_ns, id, queue_depth });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            reg.inc(ids.admitted, 1);
        }
    }

    /// A request was dropped at `t_ns` (its own arrival under tail drop;
    /// the evicted waiter's drop happens at the newcomer's arrival).
    #[inline]
    pub(crate) fn on_dropped(&mut self, t_ns: u64, id: u64) {
        if !self.on {
            return;
        }
        if self.sampled(id) {
            self.buf.push(SpanEvent::Dropped { t_ns, id });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            reg.inc(ids.dropped, 1);
        }
    }

    /// A batch was formed and placed on a shard.
    #[inline]
    pub(crate) fn on_dispatch(
        &mut self,
        start_ns: u64,
        batch: u64,
        shard: usize,
        size: usize,
        clock: DvfsPoint,
    ) {
        if !self.on {
            return;
        }
        if self.tracing {
            self.buf.push(SpanEvent::Dispatched {
                t_ns: start_ns,
                batch,
                shard,
                size,
                clock_mhz: clock.freq_mhz,
            });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            reg.inc(ids.sched_decisions, 1);
            reg.observe(ids.batch_occupancy, size as u64);
        }
    }

    /// One sampled request was scheduled into the dispatched batch.
    #[inline]
    pub(crate) fn on_scheduled(&mut self, start_ns: u64, id: u64, batch: u64, shard: usize) {
        if self.on && self.sampled(id) {
            self.buf.push(SpanEvent::Scheduled { t_ns: start_ns, id, batch, shard });
        }
    }

    /// One request settled at completion time `t_ns`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_settle(
        &mut self,
        t_ns: u64,
        id: u64,
        shard: usize,
        batch: u64,
        queue_ns: u64,
        compute_ns: u64,
        violated: bool,
        energy_pj: u128,
    ) {
        if !self.on {
            return;
        }
        if self.sampled(id) {
            self.buf.push(SpanEvent::Settled {
                t_ns,
                id,
                shard,
                batch,
                queue_ns,
                compute_ns,
                violated,
            });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            reg.inc(ids.completed, 1);
            if violated {
                reg.inc(ids.slo_violations, 1);
            }
            reg.inc(ids.shard_energy[shard], energy_pj);
        }
    }

    /// A stepped epoch boundary, after the controller's actions applied.
    /// Gauges are set to the boundary-instant values and the registry
    /// snapshots the time-series row.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_epoch(
        &mut self,
        t_ns: u64,
        epoch: u64,
        active_shards: usize,
        queue_depth: usize,
        clock: DvfsPoint,
        inflight: u64,
        events_depth: u64,
        shard_free_events: u64,
    ) {
        if !self.on {
            return;
        }
        if self.tracing {
            self.buf.push(SpanEvent::Epoch {
                t_ns,
                epoch,
                active_shards,
                queue_depth,
                clock_mhz: clock.freq_mhz,
            });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            reg.set(ids.queue_depth, queue_depth as u128);
            reg.set(ids.inflight, inflight as u128);
            reg.set(ids.events_depth, events_depth as u128);
            reg.set(ids.shard_free_events, shard_free_events as u128);
            reg.set(ids.active_shards, active_shards as u128);
            reg.set(ids.clock_mhz, clock.freq_mhz as u128);
            reg.snapshot(epoch, t_ns);
        }
    }

    /// One session iteration settled (prefill or decode step). Session
    /// engine only — the legacy engine's single iteration is already
    /// accounted by [`Self::on_settle`].
    #[inline]
    pub(crate) fn on_iteration(&mut self) {
        if let Some((reg, ids)) = &mut self.metrics {
            if let Some(c) = ids.iterations {
                reg.inc(c, 1);
            }
        }
    }

    /// A resident session's shard state was evicted to respect the
    /// state budget; its next decode step will pay a prefill recompute.
    #[inline]
    pub(crate) fn on_evicted(&mut self, t_ns: u64, id: u64) {
        if !self.on {
            return;
        }
        if self.sampled(id) {
            // An eviction ends the session's residency the way a drop
            // ends a request's life in the queue — reuse the span so the
            // trace schema (and its exporters) stay fixed; the session's
            // later `Settled` spans distinguish it from a real drop.
            self.buf.push(SpanEvent::Dropped { t_ns, id });
        }
        if let Some((reg, ids)) = &mut self.metrics {
            if let Some(c) = ids.evictions {
                reg.inc(c, 1);
            }
        }
    }

    /// One control action applied at an epoch boundary.
    #[inline]
    pub(crate) fn on_control(&mut self, t_ns: u64, epoch: u64, action: &crate::ControlAction) {
        if self.on && self.tracing {
            let clock_mhz = match action {
                crate::ControlAction::SetClock(p) => p.freq_mhz,
                _ => 0,
            };
            self.buf.push(SpanEvent::Control {
                t_ns,
                epoch,
                action: action.kind_label(),
                clock_mhz,
            });
        }
    }

    // `prof_begin` / `prof_end` — the only host-clock readers in the
    // serving stack — live in [`profile`], the one module the
    // `no-wall-clock` rule of `defa-analysis` sanctions.

    /// Folds the collector into the report section.
    pub(crate) fn finish(self) -> ObsReport {
        let (events, events_dropped) = self.buf.into_parts();
        ObsReport {
            config: self.config,
            events,
            events_dropped,
            sampled_requests: self.sampled_requests,
            fleet_size: self.fleet_size,
            metrics: self.metrics.map(|(reg, _)| reg),
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_disabled() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg, ObsConfig::disabled());
        assert!(ObsConfig::tracing_at(0.5).enabled());
        assert!(ObsConfig::full().tracing && ObsConfig::full().metrics);
        assert!(!ObsConfig::full().profile, "profiling is wall clock and stays opt-in");
        assert!(ObsConfig::disabled().with_profile().enabled());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut obs = Obs::new(&ObsConfig::disabled(), 42, 2, false);
        obs.on_arrival(10, 0, 1);
        obs.on_admitted(10, 0, 1);
        obs.on_dropped(20, 1);
        obs.on_dispatch(30, 0, 0, 2, DvfsPoint::NOMINAL);
        obs.on_settle(40, 0, 0, 0, 5, 5, false, 100);
        obs.on_epoch(50, 0, 2, 0, DvfsPoint::NOMINAL, 0, 3, 2);
        let r = obs.finish();
        assert_eq!(r, ObsReport { fleet_size: 2, ..ObsReport::disabled() });
        assert!(r.events.is_empty());
        assert!(r.metrics.is_none());
        assert_eq!(r.profile.total_wall_ns(), 0);
    }

    #[test]
    fn partial_eq_ignores_the_wall_clock_profile() {
        let mut a = ObsReport::disabled();
        let b = ObsReport::disabled();
        a.profile.add(ProfSection::Settle, 12_345);
        assert_eq!(a, b, "profile must not break report equality");
        let mut c = ObsReport::disabled();
        c.events_dropped = 1;
        assert_ne!(c, b);
    }

    #[test]
    fn session_counters_register_only_for_the_session_engine() {
        let cfg = ObsConfig::disabled().with_metrics();
        let mut legacy = Obs::new(&cfg, 42, 1, false);
        legacy.on_iteration();
        legacy.on_evicted(10, 0);
        let baseline = Obs::new(&cfg, 42, 1, false).finish();
        assert_eq!(
            legacy.finish().metrics,
            baseline.metrics,
            "legacy registry has no session counters, so the hooks are no-ops"
        );
        let mut sess = Obs::new(&cfg, 42, 1, true);
        sess.on_iteration();
        sess.on_evicted(10, 0);
        assert_ne!(sess.finish().metrics, baseline.metrics, "session counters count");
    }

    #[test]
    fn collector_counts_sampled_arrivals_exactly() {
        let cfg = ObsConfig::tracing_at(0.5);
        let mut obs = Obs::new(&cfg, 42, 1, false);
        let sampler = SpanSampler::new(42, 0.5);
        let n = 256u64;
        for id in 0..n {
            obs.on_arrival(id * 10, id, 0);
        }
        let expect = (0..n).filter(|&id| sampler.sampled(id)).count() as u64;
        let r = obs.finish();
        assert_eq!(r.sampled_requests, expect);
        assert_eq!(r.events.len(), expect as usize);
        assert!(expect > 0 && expect < n, "rate 0.5 should be strictly partial");
    }
}
