//! Structured span tracing: typed lifecycle events on the virtual
//! clock, seeded sampling, a bounded buffer, and the Chrome
//! `trace_event` exporter.
//!
//! # Span model
//!
//! Request-lifecycle events ([`SpanEvent::Arrival`] →
//! [`SpanEvent::Admitted`]/[`SpanEvent::Dropped`] →
//! [`SpanEvent::Scheduled`] → [`SpanEvent::Settled`]) are gated per
//! request id by the [`SpanSampler`]; fleet-level events
//! ([`SpanEvent::Dispatched`], [`SpanEvent::Epoch`],
//! [`SpanEvent::Control`]) are recorded whenever tracing is on. Events
//! are appended in engine processing order, which for any single
//! request is monotone in virtual time — the replay contract the
//! `serve_obs` bin asserts.
//!
//! # Determinism
//!
//! The sampler is a pure function of `(generator seed, request id)`;
//! the buffer caps in emission order and counts overflow; the exporter
//! is a pure function of the buffered events. Nothing here reads the
//! wall clock, so trace output is byte-identical whenever the virtual
//! schedule is.

use defa_tensor::rng::splitmix64;
use std::fmt::Write as _;

/// Salt applied to the generator seed for the trace sampler, so
/// sampling decisions are independent of payload, SLO and arrival
/// streams.
const SAMPLE_SALT: u64 = 0x0B5E_C0DE_5A11_0001;

/// Seeded deterministic per-request sampler: request `id` is traced iff
/// a salted hash of `(seed, id)` lands below `sample × 2^64`.
///
/// A pure function of its inputs — tests can construct the same sampler
/// as the runtime (same generator seed, same rate) and predict the
/// sampled id set exactly. `sample = 1.0` selects every id, `0.0` none.
#[derive(Debug, Clone)]
pub struct SpanSampler {
    seed: u64,
    /// Acceptance threshold in `[0, 2^64]` (u128 so 1.0 is inclusive).
    threshold: u128,
}

impl SpanSampler {
    /// A sampler over the given *generator* seed (salted internally) at
    /// `sample` ∈ [0, 1] (clamped).
    pub fn new(gen_seed: u64, sample: f64) -> Self {
        let clamped = sample.clamp(0.0, 1.0);
        // Exact at both endpoints: 1.0 maps to 2^64 (accepts any u64
        // hash), 0.0 to 0 (accepts none).
        let threshold = (clamped * 18_446_744_073_709_551_616.0) as u128;
        SpanSampler { seed: gen_seed ^ SAMPLE_SALT, threshold }
    }

    /// Whether request `id` is traced.
    pub fn sampled(&self, id: u64) -> bool {
        let h = splitmix64(self.seed.wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        (h as u128) < self.threshold
    }
}

/// One structured observability event on the virtual clock.
///
/// All payloads are integers (no floats), so the event stream is
/// `Eq`-comparable and byte-stable. `t_ns` is always the virtual time
/// the event is attributed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanEvent {
    /// A sampled request arrived (was offered to admission).
    Arrival {
        /// Virtual arrival time.
        t_ns: u64,
        /// Request id.
        id: u64,
        /// Scenario the request draws.
        scenario: usize,
    },
    /// A sampled request entered the admission queue.
    Admitted {
        /// Virtual arrival time (admission is instantaneous).
        t_ns: u64,
        /// Request id.
        id: u64,
        /// Queue depth just after admission.
        queue_depth: usize,
    },
    /// A sampled request was dropped (tail drop at its own arrival, or
    /// evicted at the admitting newcomer's arrival).
    Dropped {
        /// Virtual time of the drop decision.
        t_ns: u64,
        /// Id of the dropped request.
        id: u64,
    },
    /// A sampled request was selected into a batch.
    Scheduled {
        /// Virtual start time of the batch it rides.
        t_ns: u64,
        /// Request id.
        id: u64,
        /// Global batch counter value.
        batch: u64,
        /// Shard the batch was placed on.
        shard: usize,
    },
    /// A batch was dispatched to a shard (recorded for every batch when
    /// tracing is on, independent of sampling).
    Dispatched {
        /// Virtual batch start time.
        t_ns: u64,
        /// Global batch counter value.
        batch: u64,
        /// Target shard.
        shard: usize,
        /// Requests riding the batch.
        size: usize,
        /// Clock the batch dispatched at.
        clock_mhz: u32,
    },
    /// A sampled request completed.
    Settled {
        /// Virtual completion time.
        t_ns: u64,
        /// Request id.
        id: u64,
        /// Shard that served it.
        shard: usize,
        /// Batch it rode in.
        batch: u64,
        /// Admission-queue wait.
        queue_ns: u64,
        /// Service time including dispatch overhead and in-batch
        /// serialization.
        compute_ns: u64,
        /// Whether total latency blew the request's SLO budget.
        violated: bool,
    },
    /// A stepped epoch boundary (fleet state after controller actions).
    Epoch {
        /// Boundary time.
        t_ns: u64,
        /// Epoch index that just ended.
        epoch: u64,
        /// Shards accepting new batches after the boundary.
        active_shards: usize,
        /// Admission-queue depth at the boundary.
        queue_depth: usize,
        /// Fleet clock after the boundary.
        clock_mhz: u32,
    },
    /// A control action applied at an epoch boundary.
    Control {
        /// Boundary time.
        t_ns: u64,
        /// Epoch index that just ended.
        epoch: u64,
        /// Action kind label (`add_shard` / `drain_shard` /
        /// `set_clock`).
        action: &'static str,
        /// Target clock for `set_clock`, 0 otherwise.
        clock_mhz: u32,
    },
}

impl SpanEvent {
    /// The virtual time this event is attributed to.
    pub fn at_ns(&self) -> u64 {
        match self {
            SpanEvent::Arrival { t_ns, .. }
            | SpanEvent::Admitted { t_ns, .. }
            | SpanEvent::Dropped { t_ns, .. }
            | SpanEvent::Scheduled { t_ns, .. }
            | SpanEvent::Dispatched { t_ns, .. }
            | SpanEvent::Settled { t_ns, .. }
            | SpanEvent::Epoch { t_ns, .. }
            | SpanEvent::Control { t_ns, .. } => *t_ns,
        }
    }

    /// The request id, for request-lifecycle events.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            SpanEvent::Arrival { id, .. }
            | SpanEvent::Admitted { id, .. }
            | SpanEvent::Dropped { id, .. }
            | SpanEvent::Scheduled { id, .. }
            | SpanEvent::Settled { id, .. } => Some(*id),
            SpanEvent::Dispatched { .. } | SpanEvent::Epoch { .. } | SpanEvent::Control { .. } => {
                None
            }
        }
    }

    /// Short kind label (stable across versions; used in tables and the
    /// `serve_obs` gate document).
    pub fn kind(&self) -> &'static str {
        match self {
            SpanEvent::Arrival { .. } => "arrival",
            SpanEvent::Admitted { .. } => "admitted",
            SpanEvent::Dropped { .. } => "dropped",
            SpanEvent::Scheduled { .. } => "scheduled",
            SpanEvent::Dispatched { .. } => "dispatched",
            SpanEvent::Settled { .. } => "settled",
            SpanEvent::Epoch { .. } => "epoch",
            SpanEvent::Control { .. } => "control",
        }
    }
}

/// A bounded append-only span buffer: events past the cap are counted,
/// never recorded, so memory stays bounded and the kept prefix is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    events: Vec<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty buffer holding at most `cap` events (0 disables
    /// recording entirely — every push counts as dropped… except that
    /// the runtime only pushes when tracing is on, so a zero cap never
    /// sees a push in practice).
    pub fn new(cap: usize) -> Self {
        // Allocation is deferred to first push; a disabled run never
        // allocates.
        TraceBuffer { events: Vec::new(), cap, dropped: 0 }
    }

    /// Appends one event, or counts it as dropped at capacity.
    pub fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the buffer into `(events, dropped count)`.
    pub fn into_parts(self) -> (Vec<SpanEvent>, u64) {
        (self.events, self.dropped)
    }
}

/// Virtual ns rendered as Chrome trace microseconds with exact
/// nanosecond fractions (`1234567` → `"1234.567"`).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One trace_event record. `ph` is the Chrome phase; `dur_ns` only for
/// complete (`"X"`) events; args are pre-rendered JSON values. The
/// process-name metadata record always opens the array, so every record
/// written here is comma-continued.
fn push_record(
    out: &mut String,
    name: &str,
    ph: &str,
    t_ns: u64,
    dur_ns: Option<u64>,
    tid: usize,
    args: &[(&str, String)],
) {
    out.push_str(",\n");
    let _ = write!(out, "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{}", ts_us(t_ns));
    if let Some(d) = dur_ns {
        let _ = write!(out, ",\"dur\":{}", ts_us(d));
    }
    if ph == "i" {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":1,\"tid\":{tid}");
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push('}');
}

/// Exports recorded spans as a Chrome `trace_event` JSON document.
///
/// Track layout (all under pid 1 "defa-serve"): tid 0 is the requests
/// track (arrival/admit/drop instants plus per-request `wait` spans),
/// tid `1 + shard` is one track per fleet shard (sched/batch instants
/// plus per-request `req` serve spans), tid `fleet_size + 1` the
/// controller track (applied actions), tid `fleet_size + 2` the epoch
/// track (a `fleet` counter series: active shards, queue depth, clock).
///
/// Timestamps are virtual microseconds with exact nanosecond fractions;
/// the output is a pure function of `events` and `fleet_size`.
pub fn chrome_trace(events: &[SpanEvent], fleet_size: usize) -> String {
    let req_tid = 0usize;
    let shard_tid = |s: usize| 1 + s;
    let ctrl_tid = fleet_size + 1;
    let epoch_tid = fleet_size + 2;

    let mut out = String::with_capacity(256 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    // Metadata: process and track names. The process record opens the
    // array; everything after it is comma-continued.
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
         \"args\":{{\"name\":\"defa-serve\"}}}}"
    );
    let meta = |out: &mut String, tid: usize, name: &str| {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    };
    meta(&mut out, req_tid, "requests");
    for s in 0..fleet_size {
        meta(&mut out, shard_tid(s), &format!("shard {s}"));
    }
    meta(&mut out, ctrl_tid, "controller");
    meta(&mut out, epoch_tid, "epochs");

    for ev in events {
        match ev {
            SpanEvent::Arrival { t_ns, id, scenario } => push_record(
                &mut out,
                &format!("arrive {id}"),
                "i",
                *t_ns,
                None,
                req_tid,
                &[("id", id.to_string()), ("scenario", scenario.to_string())],
            ),
            SpanEvent::Admitted { t_ns, id, queue_depth } => push_record(
                &mut out,
                &format!("admit {id}"),
                "i",
                *t_ns,
                None,
                req_tid,
                &[("queue_depth", queue_depth.to_string())],
            ),
            SpanEvent::Dropped { t_ns, id } => push_record(
                &mut out,
                &format!("drop {id}"),
                "i",
                *t_ns,
                None,
                req_tid,
                &[("id", id.to_string())],
            ),
            SpanEvent::Scheduled { t_ns, id, batch, shard } => push_record(
                &mut out,
                &format!("sched {id}"),
                "i",
                *t_ns,
                None,
                shard_tid(*shard),
                &[("batch", batch.to_string())],
            ),
            SpanEvent::Dispatched { t_ns, batch, shard, size, clock_mhz } => push_record(
                &mut out,
                &format!("batch {batch} x{size}"),
                "i",
                *t_ns,
                None,
                shard_tid(*shard),
                &[("clock_mhz", clock_mhz.to_string())],
            ),
            SpanEvent::Settled { t_ns, id, shard, batch, queue_ns, compute_ns, violated } => {
                // Two complete spans replay the lifecycle visually: the
                // admission-queue wait on the requests track, the serve
                // span on the shard track.
                let serve_start = t_ns - compute_ns;
                if *queue_ns > 0 {
                    push_record(
                        &mut out,
                        &format!("wait {id}"),
                        "X",
                        serve_start - queue_ns,
                        Some(*queue_ns),
                        req_tid,
                        &[],
                    );
                }
                push_record(
                    &mut out,
                    &format!("req {id}"),
                    "X",
                    serve_start,
                    Some(*compute_ns),
                    shard_tid(*shard),
                    &[
                        ("batch", batch.to_string()),
                        ("queue_ns", queue_ns.to_string()),
                        ("slo_violated", violated.to_string()),
                    ],
                );
            }
            SpanEvent::Epoch { t_ns, epoch, active_shards, queue_depth, clock_mhz } => {
                push_record(
                    &mut out,
                    "fleet",
                    "C",
                    *t_ns,
                    None,
                    epoch_tid,
                    &[
                        ("active_shards", active_shards.to_string()),
                        ("queue_depth", queue_depth.to_string()),
                        ("clock_mhz", clock_mhz.to_string()),
                    ],
                );
                push_record(&mut out, &format!("epoch {epoch}"), "i", *t_ns, None, epoch_tid, &[]);
            }
            SpanEvent::Control { t_ns, epoch, action, clock_mhz } => push_record(
                &mut out,
                action,
                "i",
                *t_ns,
                None,
                ctrl_tid,
                &[("epoch", epoch.to_string()), ("clock_mhz", clock_mhz.to_string())],
            ),
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_endpoints_are_exact() {
        let all = SpanSampler::new(42, 1.0);
        let none = SpanSampler::new(42, 0.0);
        for id in 0..1_000u64 {
            assert!(all.sampled(id), "rate 1.0 must sample id {id}");
            assert!(!none.sampled(id), "rate 0.0 must never sample id {id}");
        }
    }

    #[test]
    fn sampler_rate_is_approximately_honoured() {
        let n = 20_000u64;
        for rate in [0.1, 0.5, 0.9] {
            let s = SpanSampler::new(7, rate);
            let hits = (0..n).filter(|&id| s.sampled(id)).count() as f64 / n as f64;
            assert!((hits - rate).abs() < 0.02, "rate {rate}: sampled fraction {hits} too far off");
        }
    }

    #[test]
    fn sampler_is_a_pure_function_of_seed_and_id() {
        let a = SpanSampler::new(42, 0.3);
        let b = SpanSampler::new(42, 0.3);
        let c = SpanSampler::new(43, 0.3);
        let pick = |s: &SpanSampler| (0..512).filter(|&id| s.sampled(id)).collect::<Vec<_>>();
        assert_eq!(pick(&a), pick(&b));
        assert_ne!(pick(&a), pick(&c), "different seeds must sample different id sets");
    }

    #[test]
    fn buffer_caps_and_counts_overflow() {
        let mut buf = TraceBuffer::new(2);
        for id in 0..5 {
            buf.push(SpanEvent::Dropped { t_ns: id, id });
        }
        let (events, dropped) = buf.into_parts();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(events[0], SpanEvent::Dropped { t_ns: 0, id: 0 }, "kept prefix is the oldest");
    }

    #[test]
    fn chrome_export_is_valid_shaped_json_with_all_tracks() {
        let events = vec![
            SpanEvent::Arrival { t_ns: 1_000, id: 0, scenario: 2 },
            SpanEvent::Admitted { t_ns: 1_000, id: 0, queue_depth: 1 },
            SpanEvent::Dispatched { t_ns: 2_000, batch: 0, shard: 1, size: 1, clock_mhz: 400 },
            SpanEvent::Scheduled { t_ns: 2_000, id: 0, batch: 0, shard: 1 },
            SpanEvent::Settled {
                t_ns: 5_500,
                id: 0,
                shard: 1,
                batch: 0,
                queue_ns: 1_000,
                compute_ns: 2_500,
                violated: false,
            },
            SpanEvent::Epoch {
                t_ns: 6_000,
                epoch: 0,
                active_shards: 2,
                queue_depth: 0,
                clock_mhz: 400,
            },
            SpanEvent::Control { t_ns: 6_000, epoch: 0, action: "add_shard", clock_mhz: 0 },
        ];
        let json = chrome_trace(&events, 2);
        for key in [
            "\"traceEvents\"",
            "\"requests\"",
            "\"shard 0\"",
            "\"shard 1\"",
            "\"controller\"",
            "\"epochs\"",
            "\"req 0\"",
            "\"wait 0\"",
            "\"ts\":3.000", // serve span start = 5500 - 2500 ns = 3.000 µs
            "\"dur\":2.500",
            "add_shard",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Identical inputs produce identical bytes.
        assert_eq!(json, chrome_trace(&events, 2));
    }

    #[test]
    fn timestamps_render_exact_nanosecond_fractions() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn event_accessors_expose_time_id_and_kind() {
        let e = SpanEvent::Settled {
            t_ns: 50,
            id: 7,
            shard: 0,
            batch: 3,
            queue_ns: 10,
            compute_ns: 20,
            violated: true,
        };
        assert_eq!(e.at_ns(), 50);
        assert_eq!(e.request_id(), Some(7));
        assert_eq!(e.kind(), "settled");
        let d = SpanEvent::Dispatched { t_ns: 9, batch: 0, shard: 0, size: 4, clock_mhz: 400 };
        assert_eq!(d.request_id(), None);
        assert_eq!(d.kind(), "dispatched");
    }
}
