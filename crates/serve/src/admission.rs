//! Admission control: the bounded queue between load and scheduling.
//!
//! Admission is the first policy layer of the runtime: it decides *which*
//! arrivals are allowed to wait, independent of how the scheduler later
//! orders them. The queue always tracks arrival order — the
//! [`crate::scheduler::Scheduler`] selects from it without disturbing
//! that order for the remaining waiters, so "oldest queued request"
//! stays well-defined for deadline-triggered batching whatever policy is
//! active.
//!
//! Overflow behaviour is the [`DropPolicy`]: reject the arriving request
//! (classic open-loop backpressure — the PR 2 behaviour) or evict the
//! oldest waiter in favour of the newcomer (fresher work at the cost of
//! wasted waiting, the right trade when responses go stale).
//!
//! # Storage: a ring until a policy index is needed
//!
//! The queue has two storage modes, each minimal for its consumer:
//!
//! * **FIFO mode** (the default): a plain `VecDeque<QueuedRequest>` in
//!   arrival order. Offers push the back, selection drains the front —
//!   contiguous, prefetch-friendly, nothing to maintain. This is the
//!   layout the trace-scale benchmark's hot path runs on.
//! * **Indexed mode**: entered lazily on the first cost- or
//!   deadline-ordered selection (one run uses one scheduler). Waiters
//!   move into a slot map (`slots` + free list) with a `VecDeque` of
//!   slot ids as the arrival ring, plus *policy indexes* — binary heaps
//!   over `(key…, arrival_ns, id)` with generation-checked lazy
//!   invalidation, the same discipline as [`crate::events::EventList`] —
//!   so a policy pop is `O(log n)` instead of the `O(n log n)`
//!   whole-queue sort it replaced. Removal tombstones the slot (its
//!   generation bumps); the ring is cleaned lazily, with the *leading*
//!   entry always live when the queue is non-empty.
//!
//! Heap pop order is proven equal to the retained linear-scan reference
//! ([`crate::scheduler::reference`]) by property test.

use defa_model::workload::SloClass;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One admitted request waiting to be scheduled.
///
/// Everything a [`crate::scheduler::Scheduler`] or
/// [`crate::router::Router`] may key on is materialized at admission —
/// cheaply, from hashes and per-scenario estimates, never from the
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Request id (derivation key into the generator).
    pub id: u64,
    /// Virtual arrival time.
    pub arrival_ns: u64,
    /// Scenario the request draws.
    pub scenario: usize,
    /// Service-level objective class.
    pub slo: SloClass,
    /// Fleet-mean modeled service time of this request's scenario, for
    /// cost-aware scheduling (an estimate — accounting uses real backend
    /// costs).
    pub est_cost_ns: u64,
    /// Absolute SLO deadline: `arrival_ns + slo.deadline_ns()`.
    pub deadline_ns: u64,
}

/// What to do with an arrival that finds the queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Reject the arriving request (classic tail drop; the default).
    #[default]
    RejectNewest,
    /// Evict the oldest queued request and admit the newcomer.
    EvictOldest,
}

impl DropPolicy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DropPolicy::RejectNewest => "reject-newest",
            DropPolicy::EvictOldest => "evict-oldest",
        }
    }
}

/// The outcome of offering one arrival to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is waiting in the queue.
    Admitted,
    /// Somebody was dropped: the arrival itself under
    /// [`DropPolicy::RejectNewest`], the evicted oldest waiter under
    /// [`DropPolicy::EvictOldest`].
    Dropped {
        /// Id of the dropped request.
        id: u64,
        /// Arrival time of the dropped request.
        arrival_ns: u64,
    },
}

/// One slot of the indexed store, with two independent generations:
/// `gen` invalidates *heap* entries and bumps on every removal or
/// fresh/overdue set migration; `occ` identifies the *occupant* for the
/// arrival ring and bumps on removal only — a migrating request keeps
/// its ring identity while its heap entries are reissued.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    occ: u32,
    live: bool,
    req: QueuedRequest,
}

/// Which policy index the heaps currently maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyIndex {
    /// Fresh/overdue two-set index for shortest-job-first with deadline
    /// aging.
    Sjf,
    /// Single deadline-ordered index for earliest-deadline-first.
    Edf,
}

/// Heap entry: `(key…, slot, gen)`. Keys always end in `(arrival_ns,
/// id)`, so ordering is total and deterministic; `(slot, gen)` ride
/// along for validation and never influence the order (ids are unique).
type Entry3 = (u64, u64, u32, u32);
type Entry4 = (u64, u64, u64, u32, u32);

/// Slot map + arrival ring + policy heaps (see the module docs).
#[derive(Debug, Clone)]
struct IndexedStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// `(slot, occ)` pairs in arrival order; stale entries (the slot was
    /// vacated, possibly re-occupied) are skipped lazily, but the
    /// *leading* entry is always live when `len > 0`.
    arrival: VecDeque<(u32, u32)>,
    len: usize,
    index: PolicyIndex,
    /// SJF fresh set, keyed `(est_cost_ns, arrival_ns, id)` (min-heap).
    fresh_by_cost: BinaryHeap<Reverse<Entry4>>,
    /// SJF fresh set again, keyed `(deadline_ns, arrival_ns, id)`
    /// (min-heap) — the promotion scan: fresh items whose deadline has
    /// passed surface here first.
    fresh_by_deadline: BinaryHeap<Reverse<Entry4>>,
    /// SJF overdue set, keyed `(arrival_ns, id)` (min-heap).
    overdue_by_arrival: BinaryHeap<Reverse<Entry3>>,
    /// SJF overdue set again, keyed `(deadline_ns, arrival_ns, id)`
    /// (**max**-heap) — the demotion scan: `now_ns` is a shard free time
    /// and not monotone across dispatches, so items promoted at a late
    /// `now_ns` must migrate back when an earlier one follows.
    overdue_by_deadline: BinaryHeap<Entry4>,
    /// EDF index, keyed `(deadline_ns, arrival_ns, id)` (min-heap).
    by_deadline: BinaryHeap<Reverse<Entry4>>,
}

/// Queue storage: a plain ring until a policy index is first needed.
#[derive(Debug, Clone)]
enum Store {
    Fifo(VecDeque<QueuedRequest>),
    Indexed(Box<IndexedStore>),
}

/// A bounded arrival-order queue with a pluggable overflow policy and
/// lazily-built `O(log n)` policy indexes (see the module docs).
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    store: Store,
    capacity: usize,
    policy: DropPolicy,
}

/// Arrival-order view over either storage mode
/// (see [`AdmissionQueue::iter`]).
pub struct QueueIter<'a> {
    inner: IterInner<'a>,
}

enum IterInner<'a> {
    Fifo(std::collections::vec_deque::Iter<'a, QueuedRequest>),
    Indexed { slots: &'a [Slot], ring: std::collections::vec_deque::Iter<'a, (u32, u32)> },
}

impl<'a> Iterator for QueueIter<'a> {
    type Item = &'a QueuedRequest;

    fn next(&mut self) -> Option<&'a QueuedRequest> {
        match &mut self.inner {
            IterInner::Fifo(it) => it.next(),
            IterInner::Indexed { slots, ring } => {
                for &(s, occ) in ring {
                    let slot = &slots[s as usize];
                    if slot.live && slot.occ == occ {
                        return Some(&slot.req);
                    }
                }
                None
            }
        }
    }
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        AdmissionQueue {
            store: Store::Fifo(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            policy,
        }
    }

    /// Offers one arrival; on overflow the [`DropPolicy`] decides who is
    /// dropped.
    #[inline]
    pub fn offer(&mut self, req: QueuedRequest) -> Admission {
        if self.len() < self.capacity {
            match &mut self.store {
                Store::Fifo(q) => q.push_back(req),
                Store::Indexed(s) => s.insert(req),
            }
            return Admission::Admitted;
        }
        match self.policy {
            DropPolicy::RejectNewest => {
                Admission::Dropped { id: req.id, arrival_ns: req.arrival_ns }
            }
            DropPolicy::EvictOldest => {
                let evicted = match &mut self.store {
                    Store::Fifo(q) => {
                        let evicted = q.pop_front().expect("queue at capacity is non-empty");
                        q.push_back(req);
                        evicted
                    }
                    Store::Indexed(s) => {
                        // Front-live invariant: `len == capacity >= 1`, so
                        // the leading ring entry exists and is live.
                        let (slot, _) =
                            s.arrival.pop_front().expect("queue at capacity is non-empty");
                        let evicted = s.remove(slot);
                        s.normalize_front();
                        s.insert(req);
                        evicted
                    }
                };
                Admission::Dropped { id: evicted.id, arrival_ns: evicted.arrival_ns }
            }
        }
    }

    /// Queued requests in arrival order (the schedulers' reference view).
    pub fn iter(&self) -> QueueIter<'_> {
        QueueIter {
            inner: match &self.store {
                Store::Fifo(q) => IterInner::Fifo(q.iter()),
                Store::Indexed(s) => IterInner::Indexed { slots: &s.slots, ring: s.arrival.iter() },
            },
        }
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Fifo(q) => q.len(),
            Store::Indexed(s) => s.len,
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The oldest waiting request, if any.
    pub fn front(&self) -> Option<&QueuedRequest> {
        match &self.store {
            Store::Fifo(q) => q.front(),
            // Front-live invariant: every mutating call re-normalizes.
            Store::Indexed(s) => s.arrival.front().map(|&(i, _)| &s.slots[i as usize].req),
        }
    }

    /// Removes up to `max_batch` requests in strict arrival order.
    pub(crate) fn select_fifo_into(&mut self, max_batch: usize, out: &mut Vec<QueuedRequest>) {
        match &mut self.store {
            Store::Fifo(q) => {
                let take = q.len().min(max_batch);
                out.extend(q.drain(..take));
            }
            Store::Indexed(s) => {
                let take = s.len.min(max_batch);
                for _ in 0..take {
                    // `take <= len`: a live leading entry exists each round.
                    let (slot, _) = s.arrival.pop_front().expect("live entries remain");
                    out.push(s.remove(slot));
                    s.normalize_front();
                }
            }
        }
    }

    /// Removes up to `max_batch` requests in `(deadline_ns, arrival_ns,
    /// id)` order — the EDF pop sequence.
    pub(crate) fn select_edf_into(&mut self, max_batch: usize, out: &mut Vec<QueuedRequest>) {
        let s = self.indexed(PolicyIndex::Edf);
        let take = s.len.min(max_batch);
        let mut taken = 0;
        while taken < take {
            // `take <= len` live items, each with exactly one valid entry.
            let Reverse((_, _, _, slot, gen)) =
                s.by_deadline.pop().expect("index covers every live item");
            if !s.valid(slot, gen) {
                continue;
            }
            out.push(s.remove(slot));
            taken += 1;
        }
        s.normalize_front();
        s.maybe_compact();
    }

    /// Removes up to `max_batch` requests in SJF-with-aging order:
    /// requests whose deadline has passed at `now_ns` first in
    /// `(arrival_ns, id)` order, then fresh requests in `(est_cost_ns,
    /// arrival_ns, id)` order — exactly the linear reference's sort key
    /// `(fresh, cost|0, arrival, id)`.
    pub(crate) fn select_sjf_into(
        &mut self,
        max_batch: usize,
        now_ns: u64,
        out: &mut Vec<QueuedRequest>,
    ) {
        let s = self.indexed(PolicyIndex::Sjf);
        // Two-way migration puts every live item in the set `now_ns`
        // assigns it: promote fresh items whose deadline passed, demote
        // overdue items whose deadline lies ahead again (`now_ns` is a
        // shard free time — not monotone across dispatches).
        while let Some(&Reverse((deadline, _, _, slot, gen))) = s.fresh_by_deadline.peek() {
            if !s.valid(slot, gen) {
                s.fresh_by_deadline.pop();
                continue;
            }
            if deadline > now_ns {
                break;
            }
            s.fresh_by_deadline.pop();
            let (r, gen) = s.rekey(slot);
            s.overdue_by_arrival.push(Reverse((r.arrival_ns, r.id, slot, gen)));
            s.overdue_by_deadline.push((r.deadline_ns, r.arrival_ns, r.id, slot, gen));
        }
        while let Some(&(deadline, _, _, slot, gen)) = s.overdue_by_deadline.peek() {
            if !s.valid(slot, gen) {
                s.overdue_by_deadline.pop();
                continue;
            }
            if deadline <= now_ns {
                break;
            }
            s.overdue_by_deadline.pop();
            let (r, gen) = s.rekey(slot);
            s.fresh_by_cost.push(Reverse((r.est_cost_ns, r.arrival_ns, r.id, slot, gen)));
            s.fresh_by_deadline.push(Reverse((r.deadline_ns, r.arrival_ns, r.id, slot, gen)));
        }
        let take = s.len.min(max_batch);
        let mut taken = 0;
        while taken < take {
            let mut picked = None;
            while let Some(&Reverse((_, _, slot, gen))) = s.overdue_by_arrival.peek() {
                s.overdue_by_arrival.pop();
                if s.valid(slot, gen) {
                    picked = Some(slot);
                    break;
                }
            }
            let slot = match picked {
                Some(p) => p,
                None => loop {
                    // Overdue drained: the rest of the batch is fresh.
                    let Reverse((_, _, _, slot, gen)) =
                        s.fresh_by_cost.pop().expect("index covers every live item");
                    if s.valid(slot, gen) {
                        break slot;
                    }
                },
            };
            out.push(s.remove(slot));
            taken += 1;
        }
        s.normalize_front();
        s.maybe_compact();
    }

    /// The indexed store maintaining `want`, converting from FIFO storage
    /// or rebuilding the heaps as needed (both one-time costs: one run
    /// uses one scheduler).
    fn indexed(&mut self, want: PolicyIndex) -> &mut IndexedStore {
        if let Store::Fifo(q) = &mut self.store {
            let mut s = Box::new(IndexedStore {
                slots: Vec::with_capacity(q.len()),
                free: Vec::new(),
                arrival: VecDeque::with_capacity(q.len()),
                len: 0,
                index: want,
                fresh_by_cost: BinaryHeap::new(),
                fresh_by_deadline: BinaryHeap::new(),
                overdue_by_arrival: BinaryHeap::new(),
                overdue_by_deadline: BinaryHeap::new(),
                by_deadline: BinaryHeap::new(),
            });
            for req in q.drain(..) {
                s.insert(req);
            }
            self.store = Store::Indexed(s);
        }
        let Store::Indexed(s) = &mut self.store else { unreachable!("converted above") };
        if s.index != want {
            s.reindex(want);
        }
        s
    }

    /// Whether the queue is in indexed (slab + heaps) storage mode.
    #[cfg(test)]
    fn is_indexed(&self) -> bool {
        matches!(self.store, Store::Indexed(_))
    }

    /// Slab length of the indexed store (test-only bound check).
    #[cfg(test)]
    fn slab_len(&self) -> usize {
        match &self.store {
            Store::Fifo(_) => 0,
            Store::Indexed(s) => s.slots.len(),
        }
    }
}

impl IndexedStore {
    /// Whether `(slot, gen)` still names a live incarnation.
    fn valid(&self, slot: u32, gen: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.live && s.gen == gen
    }

    /// Whether ring entry `(slot, occ)` still names a live occupant.
    fn ring_live(&self, slot: u32, occ: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.live && s.occ == occ
    }

    /// Admits `req` into a free slot, the arrival ring, and the policy
    /// index. Caller has checked capacity.
    fn insert(&mut self, req: QueuedRequest) {
        let slot = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                slot.live = true;
                slot.req = req;
                i
            }
            None => {
                self.slots.push(Slot { gen: 0, occ: 0, live: true, req });
                (self.slots.len() - 1) as u32
            }
        };
        self.len += 1;
        self.arrival.push_back((slot, self.slots[slot as usize].occ));
        self.index_insert(slot);
    }

    /// Tombstones `slot` and returns its request. The arrival-ring entry
    /// stays behind as a tombstone (dead by occupancy even if the slot is
    /// recycled); heap entries die by generation.
    fn remove(&mut self, slot: u32) -> QueuedRequest {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.live, "slot {slot} removed twice");
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        s.occ = s.occ.wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        s.req
    }

    /// Restores the front-live invariant by popping leading tombstones.
    fn normalize_front(&mut self) {
        while let Some(&(s, occ)) = self.arrival.front() {
            if self.ring_live(s, occ) {
                break;
            }
            self.arrival.pop_front();
        }
    }

    /// Bumps `slot`'s generation for a set migration (invalidating its
    /// old heap entries) and returns the request plus the new generation
    /// for re-insertion.
    fn rekey(&mut self, slot: u32) -> (QueuedRequest, u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        (s.req, s.gen)
    }

    /// Pushes `slot` into the policy index (new items enter the SJF index
    /// as fresh; the next selection migrates them if their deadline has
    /// already passed — admission has no `now_ns`).
    fn index_insert(&mut self, slot: u32) {
        let s = self.slots[slot as usize];
        let r = s.req;
        match self.index {
            PolicyIndex::Sjf => {
                self.fresh_by_cost.push(Reverse((r.est_cost_ns, r.arrival_ns, r.id, slot, s.gen)));
                self.fresh_by_deadline.push(Reverse((
                    r.deadline_ns,
                    r.arrival_ns,
                    r.id,
                    slot,
                    s.gen,
                )));
            }
            PolicyIndex::Edf => {
                self.by_deadline.push(Reverse((r.deadline_ns, r.arrival_ns, r.id, slot, s.gen)));
            }
        }
    }

    /// Rebuilds the heaps for a different policy (tests switch policies
    /// mid-queue; runs never do).
    fn reindex(&mut self, want: PolicyIndex) {
        self.index = want;
        self.fresh_by_cost.clear();
        self.fresh_by_deadline.clear();
        self.overdue_by_arrival.clear();
        self.overdue_by_deadline.clear();
        self.by_deadline.clear();
        let live: Vec<u32> = self
            .arrival
            .iter()
            .filter(|&&(s, occ)| self.ring_live(s, occ))
            .map(|&(s, _)| s)
            .collect();
        for slot in live {
            self.index_insert(slot);
        }
    }

    /// Drops stale ring and heap entries once they outnumber live ones
    /// (plus slack so small queues never compact) — the
    /// [`crate::events::EventList`] discipline. Policy selections remove
    /// from the middle of the ring, so its tombstones need the same
    /// bound as the heaps'.
    fn maybe_compact(&mut self) {
        let cap = 2 * self.len + 64;
        if self.arrival.len() > cap {
            let slots = &self.slots;
            self.arrival.retain(|&(s, occ)| {
                let slot = &slots[s as usize];
                slot.live && slot.occ == occ
            });
        }
        match self.index {
            PolicyIndex::Sjf => {
                if self.fresh_by_cost.len()
                    + self.fresh_by_deadline.len()
                    + self.overdue_by_arrival.len()
                    + self.overdue_by_deadline.len()
                    > 4 * cap
                {
                    let slots = &self.slots;
                    let ok3 = |e: &Reverse<Entry3>| {
                        let s = &slots[e.0 .2 as usize];
                        s.live && s.gen == e.0 .3
                    };
                    let ok4 = |e: &Reverse<Entry4>| {
                        let s = &slots[e.0 .3 as usize];
                        s.live && s.gen == e.0 .4
                    };
                    let ok4_max = |e: &Entry4| {
                        let s = &slots[e.3 as usize];
                        s.live && s.gen == e.4
                    };
                    self.fresh_by_cost.retain(ok4);
                    self.fresh_by_deadline.retain(ok4);
                    self.overdue_by_arrival.retain(ok3);
                    self.overdue_by_deadline.retain(ok4_max);
                }
            }
            PolicyIndex::Edf => {
                if self.by_deadline.len() > cap {
                    let slots = &self.slots;
                    self.by_deadline.retain(|e| {
                        let s = &slots[e.0 .3 as usize];
                        s.live && s.gen == e.0 .4
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            arrival_ns,
            scenario: 0,
            slo: SloClass::Standard,
            est_cost_ns: 1_000,
            deadline_ns: arrival_ns + SloClass::Standard.deadline_ns(),
        }
    }

    #[test]
    fn reject_newest_drops_the_arrival() {
        let mut q = AdmissionQueue::new(2, DropPolicy::RejectNewest);
        assert_eq!(q.offer(req(0, 10)), Admission::Admitted);
        assert_eq!(q.offer(req(1, 20)), Admission::Admitted);
        assert_eq!(q.offer(req(2, 30)), Admission::Dropped { id: 2, arrival_ns: 30 });
        assert_eq!(q.len(), 2);
        assert_eq!(q.front().unwrap().id, 0, "waiters untouched");
    }

    #[test]
    fn evict_oldest_keeps_the_freshest_work() {
        let mut q = AdmissionQueue::new(2, DropPolicy::EvictOldest);
        q.offer(req(0, 10));
        q.offer(req(1, 20));
        assert_eq!(q.offer(req(2, 30)), Admission::Dropped { id: 0, arrival_ns: 10 });
        assert_eq!(q.len(), 2);
        let ids: Vec<u64> = q.iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 2], "arrival order preserved after eviction");
    }

    #[test]
    fn same_nanosecond_arrivals_each_get_a_verdict() {
        // The hardest admission case: a burst sharing one virtual
        // nanosecond against a full queue. Every offer must return exactly
        // one verdict so arrivals = admitted + dropped holds.
        let mut q = AdmissionQueue::new(1, DropPolicy::RejectNewest);
        let (mut admitted, mut dropped) = (0, 0);
        for id in 0..5 {
            match q.offer(req(id, 42)) {
                Admission::Admitted => admitted += 1,
                Admission::Dropped { arrival_ns, .. } => {
                    assert_eq!(arrival_ns, 42);
                    dropped += 1;
                }
            }
        }
        assert_eq!((admitted, dropped), (1, 4));
    }

    #[test]
    fn indexed_mode_recycles_slots_through_select_and_evict() {
        // Force indexed storage via an EDF selection, then drive enough
        // churn through a small queue that slots and ring tombstones
        // recycle, checking the arrival view stays exact throughout.
        let mut q = AdmissionQueue::new(3, DropPolicy::EvictOldest);
        let mut next_id = 0u64;
        let mut expect: VecDeque<u64> = VecDeque::new();
        for round in 0..60u64 {
            for _ in 0..2 {
                let r = req(next_id, 10 * next_id);
                match q.offer(r) {
                    Admission::Admitted => expect.push_back(r.id),
                    Admission::Dropped { id, .. } => {
                        assert_eq!(Some(id), expect.pop_front());
                        expect.push_back(r.id);
                    }
                }
                next_id += 1;
            }
            if round % 3 == 0 {
                let mut out = Vec::new();
                // Same-SLO equal-cost requests: EDF order == arrival order.
                q.select_edf_into(2, &mut out);
                for r in &out {
                    assert_eq!(Some(r.id), expect.pop_front());
                }
            }
            let got: Vec<u64> = q.iter().map(|r| r.id).collect();
            let want: Vec<u64> = expect.iter().copied().collect();
            assert_eq!(got, want, "round {round}");
            assert_eq!(q.len(), expect.len());
            assert_eq!(q.front().map(|r| r.id), expect.front().copied());
        }
        assert!(q.is_indexed(), "EDF selection should have switched storage modes");
        // Slab never grows past capacity even after heavy churn.
        assert!(q.slab_len() <= 3, "slab grew: {}", q.slab_len());
    }

    #[test]
    fn fifo_selection_works_in_indexed_mode_too() {
        // A policy switch mid-queue (EDF then FIFO) must keep strict
        // arrival order for the FIFO drains.
        let mut q = AdmissionQueue::new(8, DropPolicy::RejectNewest);
        for id in 0..6 {
            q.offer(req(id, 10 * id));
        }
        let mut out = Vec::new();
        q.select_edf_into(2, &mut out); // equal SLO/cost: pops ids 0, 1
        assert!(q.is_indexed());
        out.clear();
        q.select_fifo_into(3, &mut out);
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(q.front().unwrap().id, 5);
    }
}
