//! Admission control: the bounded queue between load and scheduling.
//!
//! Admission is the first policy layer of the runtime: it decides *which*
//! arrivals are allowed to wait, independent of how the scheduler later
//! orders them. The queue always stores requests in arrival order — the
//! [`crate::scheduler::Scheduler`] selects from it without reordering the
//! backing store, so "oldest queued request" stays well-defined for
//! deadline-triggered batching whatever policy is active.
//!
//! Overflow behaviour is the [`DropPolicy`]: reject the arriving request
//! (classic open-loop backpressure — the PR 2 behaviour) or evict the
//! oldest waiter in favour of the newcomer (fresher work at the cost of
//! wasted waiting, the right trade when responses go stale).

use defa_model::workload::SloClass;
use std::collections::VecDeque;

/// One admitted request waiting to be scheduled.
///
/// Everything a [`crate::scheduler::Scheduler`] or
/// [`crate::router::Router`] may key on is materialized at admission —
/// cheaply, from hashes and per-scenario estimates, never from the
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Request id (derivation key into the generator).
    pub id: u64,
    /// Virtual arrival time.
    pub arrival_ns: u64,
    /// Scenario the request draws.
    pub scenario: usize,
    /// Service-level objective class.
    pub slo: SloClass,
    /// Fleet-mean modeled service time of this request's scenario, for
    /// cost-aware scheduling (an estimate — accounting uses real backend
    /// costs).
    pub est_cost_ns: u64,
    /// Absolute SLO deadline: `arrival_ns + slo.deadline_ns()`.
    pub deadline_ns: u64,
}

/// What to do with an arrival that finds the queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Reject the arriving request (classic tail drop; the default).
    #[default]
    RejectNewest,
    /// Evict the oldest queued request and admit the newcomer.
    EvictOldest,
}

impl DropPolicy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DropPolicy::RejectNewest => "reject-newest",
            DropPolicy::EvictOldest => "evict-oldest",
        }
    }
}

/// The outcome of offering one arrival to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is waiting in the queue.
    Admitted,
    /// Somebody was dropped: the arrival itself under
    /// [`DropPolicy::RejectNewest`], the evicted oldest waiter under
    /// [`DropPolicy::EvictOldest`].
    Dropped {
        /// Id of the dropped request.
        id: u64,
        /// Arrival time of the dropped request.
        arrival_ns: u64,
    },
}

/// A bounded arrival-order queue with a pluggable overflow policy.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    items: VecDeque<QueuedRequest>,
    capacity: usize,
    policy: DropPolicy,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        AdmissionQueue { items: VecDeque::with_capacity(capacity.min(1024)), capacity, policy }
    }

    /// Offers one arrival; on overflow the [`DropPolicy`] decides who is
    /// dropped.
    pub fn offer(&mut self, req: QueuedRequest) -> Admission {
        if self.items.len() < self.capacity {
            self.items.push_back(req);
            return Admission::Admitted;
        }
        match self.policy {
            DropPolicy::RejectNewest => {
                Admission::Dropped { id: req.id, arrival_ns: req.arrival_ns }
            }
            DropPolicy::EvictOldest => {
                let evicted = self.items.pop_front().expect("capacity >= 1 checked by validate");
                self.items.push_back(req);
                Admission::Dropped { id: evicted.id, arrival_ns: evicted.arrival_ns }
            }
        }
    }

    /// Queued requests in arrival order (schedulers select from this view).
    pub fn items(&self) -> &VecDeque<QueuedRequest> {
        &self.items
    }

    /// Mutable access for schedulers' `select` implementations.
    pub(crate) fn items_mut(&mut self) -> &mut VecDeque<QueuedRequest> {
        &mut self.items
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The oldest waiting request, if any.
    pub fn front(&self) -> Option<&QueuedRequest> {
        self.items.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            arrival_ns,
            scenario: 0,
            slo: SloClass::Standard,
            est_cost_ns: 1_000,
            deadline_ns: arrival_ns + SloClass::Standard.deadline_ns(),
        }
    }

    #[test]
    fn reject_newest_drops_the_arrival() {
        let mut q = AdmissionQueue::new(2, DropPolicy::RejectNewest);
        assert_eq!(q.offer(req(0, 10)), Admission::Admitted);
        assert_eq!(q.offer(req(1, 20)), Admission::Admitted);
        assert_eq!(q.offer(req(2, 30)), Admission::Dropped { id: 2, arrival_ns: 30 });
        assert_eq!(q.len(), 2);
        assert_eq!(q.front().unwrap().id, 0, "waiters untouched");
    }

    #[test]
    fn evict_oldest_keeps_the_freshest_work() {
        let mut q = AdmissionQueue::new(2, DropPolicy::EvictOldest);
        q.offer(req(0, 10));
        q.offer(req(1, 20));
        assert_eq!(q.offer(req(2, 30)), Admission::Dropped { id: 0, arrival_ns: 10 });
        assert_eq!(q.len(), 2);
        let ids: Vec<u64> = q.items().iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 2], "arrival order preserved after eviction");
    }

    #[test]
    fn same_nanosecond_arrivals_each_get_a_verdict() {
        // The hardest admission case: a burst sharing one virtual
        // nanosecond against a full queue. Every offer must return exactly
        // one verdict so arrivals = admitted + dropped holds.
        let mut q = AdmissionQueue::new(1, DropPolicy::RejectNewest);
        let (mut admitted, mut dropped) = (0, 0);
        for id in 0..5 {
            match q.offer(req(id, 42)) {
                Admission::Admitted => admitted += 1,
                Admission::Dropped { arrival_ns, .. } => {
                    assert_eq!(arrival_ns, 42);
                    dropped += 1;
                }
            }
        }
        assert_eq!((admitted, dropped), (1, 4));
    }
}
