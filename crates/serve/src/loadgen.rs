//! Seeded open-loop load generation.
//!
//! The runtime drives an *open-loop* arrival process: requests arrive on a
//! schedule independent of how fast the system drains them, which is what
//! exposes queueing delay and backpressure at high offered load (a
//! closed-loop generator would politely slow down and hide both). Arrival
//! times are virtual nanoseconds derived purely from `(seed, rate)`, so a
//! trace is exactly reproducible and independent of wall-clock jitter.
//!
//! One offered rate hides very different traffic shapes, so the process is
//! pluggable ([`ArrivalProcess`]): memoryless [`ArrivalProcess::Poisson`]
//! (the classic open-loop model), an on/off Markov-modulated
//! [`ArrivalProcess::Bursty`] process that concentrates the same mean rate
//! into bursts (what stresses admission and deadline scheduling), and a
//! jitter-free [`ArrivalProcess::Uniform`] pacer (what isolates batching
//! behaviour from arrival noise — and the only process that can produce
//! *simultaneous* arrivals at extreme rates).

use defa_tensor::rng::TensorRng;

/// A Poisson arrival trace: exponential inter-arrival gaps at a fixed
/// offered rate.
///
/// # Example
///
/// ```
/// use defa_serve::loadgen::arrival_times;
///
/// let t = arrival_times(100, 1000.0, 7);
/// assert_eq!(t.len(), 100);
/// assert!(t.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
/// ```
pub fn arrival_times(n: usize, rate_per_s: f64, seed: u64) -> Vec<u64> {
    assert!(rate_per_s > 0.0, "offered load must be positive");
    let mut rng = TensorRng::seed_from(seed);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        t = t.saturating_add(exp_gap_ns(&mut rng, rate_per_s));
        out.push(t);
    }
    out
}

/// One exponential inter-arrival gap at `rate_per_s`, at least 1 ns.
///
/// The f32 uniform gives ~2^-24 granularity — plenty for a load schedule —
/// and keeps the draw identical on every platform.
fn exp_gap_ns(rng: &mut TensorRng, rate_per_s: f64) -> u64 {
    let u = f64::from(rng.uniform_value(0.0, 1.0)).min(1.0 - 1e-9);
    let gap_s = -(1.0 - u).ln() / rate_per_s;
    (gap_s * 1e9).round().max(1.0) as u64
}

/// Bursty phase length in mean inter-arrival gaps: one on/off cycle spans
/// this many expected arrivals, so burst structure scales with the rate.
const BURSTY_CYCLE_GAPS: f64 = 64.0;

/// A pluggable open-loop arrival process.
///
/// Every variant is a pure function of `(n, rate, seed)` producing a
/// sorted virtual-nanosecond trace with the same long-run mean rate — the
/// variants differ only in how the arrivals are *spaced*, which is exactly
/// the dimension scheduling and admission policies differ on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps (the PR 2 default).
    Poisson,
    /// On/off Markov-modulated Poisson: exponentially-distributed ON
    /// phases arriving at `burst × rate` alternate with silent OFF phases
    /// sized so the long-run mean stays `rate`. `burst` must exceed 1.
    Bursty {
        /// Peak-to-mean rate ratio of the ON phase (> 1).
        burst: f64,
    },
    /// Deterministic pacing at exactly the offered rate. At rates above
    /// 1 GHz the rounded gap is 0 ns, i.e. genuinely simultaneous
    /// arrivals — the admission queue's hardest case.
    Uniform,
}

impl ArrivalProcess {
    /// The default bursty operating point: 8× peak-to-mean.
    pub fn bursty_default() -> Self {
        ArrivalProcess::Bursty { burst: 8.0 }
    }

    /// Short display name for tables (`poisson`, `bursty(8x)`, `uniform`).
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson => "poisson".into(),
            ArrivalProcess::Bursty { burst } => format!("bursty({burst:.0}x)"),
            ArrivalProcess::Uniform => "uniform".into(),
        }
    }

    /// Samples `n` sorted arrival times at mean rate `rate_per_s`.
    ///
    /// Pure in `(n, rate_per_s, seed)`; the Poisson variant reproduces
    /// [`arrival_times`] bit-for-bit, which is what keeps pre-policy
    /// serving traces byte-identical.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or a `Bursty` factor ≤ 1 (the serving
    /// layer validates both in `ServeConfig::validate` first).
    pub fn sample(&self, n: usize, rate_per_s: f64, seed: u64) -> Vec<u64> {
        assert!(rate_per_s > 0.0, "offered load must be positive");
        match *self {
            ArrivalProcess::Poisson => arrival_times(n, rate_per_s, seed),
            ArrivalProcess::Uniform => {
                let gap = (1e9 / rate_per_s).round() as u64;
                (1..=n as u64).map(|i| i.saturating_mul(gap).max(1)).collect()
            }
            ArrivalProcess::Bursty { burst } => {
                assert!(burst > 1.0, "burst factor must exceed 1, got {burst}");
                let mut rng = TensorRng::seed_from(seed);
                let cycle_s = BURSTY_CYCLE_GAPS / rate_per_s;
                let tau_on = cycle_s / burst; // duty cycle 1/burst keeps the mean
                let tau_off = cycle_s - tau_on;
                let rate_on = rate_per_s * burst;
                let mut t = 0u64;
                // Start inside an ON phase so short traces still arrive.
                let mut phase_end = t.saturating_add(exp_gap_ns(&mut rng, 1.0 / tau_on));
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let gap = exp_gap_ns(&mut rng, rate_on);
                    if t.saturating_add(gap) <= phase_end {
                        t = t.saturating_add(gap);
                        out.push(t);
                    } else {
                        // ON phase exhausted: skip the silent OFF phase and
                        // open the next ON phase.
                        let off = exp_gap_ns(&mut rng, 1.0 / tau_off);
                        t = phase_end.saturating_add(off);
                        phase_end = t.saturating_add(exp_gap_ns(&mut rng, 1.0 / tau_on));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible() {
        assert_eq!(arrival_times(200, 500.0, 3), arrival_times(200, 500.0, 3));
        assert_ne!(arrival_times(200, 500.0, 3), arrival_times(200, 500.0, 4));
    }

    #[test]
    fn mean_gap_tracks_offered_rate() {
        let rate = 2_000.0;
        let t = arrival_times(4000, rate, 11);
        let span_s = *t.last().unwrap() as f64 * 1e-9;
        let achieved = t.len() as f64 / span_s;
        assert!((achieved - rate).abs() / rate < 0.1, "achieved {achieved} vs offered {rate}");
    }

    #[test]
    fn gaps_are_strictly_positive() {
        let t = arrival_times(1000, 1e6, 5);
        assert!(t[0] >= 1);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "offered load must be positive")]
    fn zero_rate_is_rejected() {
        arrival_times(1, 0.0, 1);
    }

    #[test]
    fn poisson_process_matches_the_legacy_function() {
        let p = ArrivalProcess::Poisson.sample(300, 1234.5, 99);
        assert_eq!(p, arrival_times(300, 1234.5, 99));
    }

    #[test]
    fn every_process_is_sorted_reproducible_and_rate_faithful() {
        for proc in
            [ArrivalProcess::Poisson, ArrivalProcess::bursty_default(), ArrivalProcess::Uniform]
        {
            let rate = 5_000.0;
            let a = proc.sample(4000, rate, 7);
            let b = proc.sample(4000, rate, 7);
            assert_eq!(a, b, "{} not reproducible", proc.label());
            assert_eq!(a.len(), 4000);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{} unsorted", proc.label());
            let achieved = a.len() as f64 / (*a.last().unwrap() as f64 * 1e-9);
            assert!(
                (achieved - rate).abs() / rate < 0.25,
                "{}: achieved {achieved} vs offered {rate}",
                proc.label()
            );
        }
    }

    #[test]
    fn bursty_concentrates_arrivals() {
        // Coefficient of variation of the gaps: bursty must exceed Poisson
        // (whose CV is 1), uniform must be (near) zero.
        let cv = |t: &[u64]| {
            let gaps: Vec<f64> = t.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let rate = 10_000.0;
        let poisson = ArrivalProcess::Poisson.sample(6000, rate, 21);
        let bursty = ArrivalProcess::bursty_default().sample(6000, rate, 21);
        let uniform = ArrivalProcess::Uniform.sample(6000, rate, 21);
        assert!(
            cv(&bursty) > 1.5 * cv(&poisson),
            "bursty CV {} vs poisson {}",
            cv(&bursty),
            cv(&poisson)
        );
        assert!(cv(&uniform) < 0.01, "uniform CV {}", cv(&uniform));
    }

    #[test]
    fn uniform_at_extreme_rate_produces_simultaneous_arrivals() {
        // Above 1 GHz the rounded gap collapses to zero: multiple requests
        // share one virtual nanosecond. The admission queue must handle it.
        let t = ArrivalProcess::Uniform.sample(16, 4e9, 1);
        assert_eq!(t.len(), 16);
        assert!(t.windows(2).any(|w| w[0] == w[1]), "expected equal timestamps: {t:?}");
    }

    #[test]
    fn labels_name_the_process() {
        assert_eq!(ArrivalProcess::Poisson.label(), "poisson");
        assert_eq!(ArrivalProcess::bursty_default().label(), "bursty(8x)");
        assert_eq!(ArrivalProcess::Uniform.label(), "uniform");
    }

    #[test]
    #[should_panic(expected = "burst factor must exceed 1")]
    fn degenerate_burst_factor_is_rejected() {
        ArrivalProcess::Bursty { burst: 1.0 }.sample(4, 100.0, 1);
    }
}
