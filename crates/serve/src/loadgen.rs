//! Seeded open-loop load generation.
//!
//! The runtime drives an *open-loop* arrival process: requests arrive on a
//! schedule independent of how fast the system drains them, which is what
//! exposes queueing delay and backpressure at high offered load (a
//! closed-loop generator would politely slow down and hide both). Arrival
//! times are virtual nanoseconds derived purely from `(seed, rate)`, so a
//! trace is exactly reproducible and independent of wall-clock jitter.

use defa_tensor::rng::TensorRng;

/// A Poisson arrival trace: exponential inter-arrival gaps at a fixed
/// offered rate.
///
/// # Example
///
/// ```
/// use defa_serve::loadgen::arrival_times;
///
/// let t = arrival_times(100, 1000.0, 7);
/// assert_eq!(t.len(), 100);
/// assert!(t.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
/// ```
pub fn arrival_times(n: usize, rate_per_s: f64, seed: u64) -> Vec<u64> {
    assert!(rate_per_s > 0.0, "offered load must be positive");
    let mut rng = TensorRng::seed_from(seed);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Inverse-CDF exponential draw. The f32 uniform gives ~2^-24
        // granularity — plenty for a load schedule — and keeps the draw
        // identical on every platform.
        let u = f64::from(rng.uniform_value(0.0, 1.0)).min(1.0 - 1e-9);
        let gap_s = -(1.0 - u).ln() / rate_per_s;
        let gap_ns = (gap_s * 1e9).round().max(1.0);
        t = t.saturating_add(gap_ns as u64);
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible() {
        assert_eq!(arrival_times(200, 500.0, 3), arrival_times(200, 500.0, 3));
        assert_ne!(arrival_times(200, 500.0, 3), arrival_times(200, 500.0, 4));
    }

    #[test]
    fn mean_gap_tracks_offered_rate() {
        let rate = 2_000.0;
        let t = arrival_times(4000, rate, 11);
        let span_s = *t.last().unwrap() as f64 * 1e-9;
        let achieved = t.len() as f64 / span_s;
        assert!(
            (achieved - rate).abs() / rate < 0.1,
            "achieved {achieved} vs offered {rate}"
        );
    }

    #[test]
    fn gaps_are_strictly_positive() {
        let t = arrival_times(1000, 1e6, 5);
        assert!(t[0] >= 1);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "offered load must be positive")]
    fn zero_rate_is_rejected() {
        arrival_times(1, 0.0, 1);
    }
}
