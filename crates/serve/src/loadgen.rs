//! Seeded open-loop load generation.
//!
//! The runtime drives an *open-loop* arrival process: requests arrive on a
//! schedule independent of how fast the system drains them, which is what
//! exposes queueing delay and backpressure at high offered load (a
//! closed-loop generator would politely slow down and hide both). Arrival
//! times are virtual nanoseconds derived purely from `(seed, rate)`, so a
//! trace is exactly reproducible and independent of wall-clock jitter.
//!
//! One offered rate hides very different traffic shapes, so the process is
//! pluggable ([`ArrivalProcess`]): memoryless [`ArrivalProcess::Poisson`]
//! (the classic open-loop model), an on/off Markov-modulated
//! [`ArrivalProcess::Bursty`] process that concentrates the same mean rate
//! into bursts (what stresses admission and deadline scheduling), and a
//! jitter-free [`ArrivalProcess::Uniform`] pacer (what isolates batching
//! behaviour from arrival noise — and the only process that can produce
//! *simultaneous* arrivals at extreme rates).
//!
//! A single rate also hides that production traffic is *time-varying*:
//! [`ArrivalProcess::Trace`] drives a piecewise-rate [`TraceSchedule`] —
//! each [`RateSegment`] scales the base rate for a virtual-time window
//! and spaces its arrivals with any of the point processes above. The
//! shipped shapes (diurnal ramp, step surge, sawtooth, seeded random
//! walk) are what the closed-loop controllers in [`crate::control`] are
//! exercised against.

use defa_tensor::rng::TensorRng;

/// A Poisson arrival trace: exponential inter-arrival gaps at a fixed
/// offered rate.
///
/// # Example
///
/// ```
/// use defa_serve::loadgen::arrival_times;
///
/// let t = arrival_times(100, 1000.0, 7);
/// assert_eq!(t.len(), 100);
/// assert!(t.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
/// ```
pub fn arrival_times(n: usize, rate_per_s: f64, seed: u64) -> Vec<u64> {
    assert!(rate_per_s > 0.0, "offered load must be positive");
    let mut rng = TensorRng::seed_from(seed);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        t = t.saturating_add(exp_gap_ns(&mut rng, rate_per_s));
        out.push(t);
    }
    out
}

/// One exponential inter-arrival gap at `rate_per_s`, at least 1 ns.
///
/// The f32 uniform gives ~2^-24 granularity — plenty for a load schedule —
/// and keeps the draw identical on every platform.
fn exp_gap_ns(rng: &mut TensorRng, rate_per_s: f64) -> u64 {
    let u = f64::from(rng.uniform_value(0.0, 1.0)).min(1.0 - 1e-9);
    let gap_s = -(1.0 - u).ln() / rate_per_s;
    (gap_s * 1e9).round().max(1.0) as u64
}

/// Bursty phase length in mean inter-arrival gaps: one on/off cycle spans
/// this many expected arrivals, so burst structure scales with the rate.
const BURSTY_CYCLE_GAPS: f64 = 64.0;

/// How one [`RateSegment`] spaces its arrivals within its window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentProcess {
    /// Memoryless arrivals (exponential gaps).
    Poisson,
    /// On/off bursts at `burst ×` the segment rate (see
    /// [`ArrivalProcess::Bursty`]).
    Bursty {
        /// Peak-to-mean rate ratio of the ON phase (> 1).
        burst: f64,
    },
    /// Deterministic pacing.
    Uniform,
}

/// One window of a [`TraceSchedule`]: a duration, a multiplier on the
/// base offered rate, and the point process spacing arrivals inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Virtual duration of the window in microseconds. Zero-duration
    /// segments are legal and simply skipped (the degenerate case the
    /// epoch math must survive — `tests/tests/control.rs` pins it).
    pub duration_us: u64,
    /// Multiplier applied to the base offered load for this window. Zero
    /// means a silent window (no arrivals).
    pub rate_mult: f64,
    /// How arrivals are spaced inside the window.
    pub process: SegmentProcess,
}

impl RateSegment {
    /// A Poisson-spaced segment — the default building block.
    pub fn poisson(duration_us: u64, rate_mult: f64) -> Self {
        RateSegment { duration_us, rate_mult, process: SegmentProcess::Poisson }
    }
}

/// A named piecewise-rate schedule, cycled until the trace is exhausted.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSchedule {
    /// Display name (`diurnal`, `surge(8x)`, …).
    pub name: String,
    /// The windows, cycled in order.
    pub segments: Vec<RateSegment>,
}

impl TraceSchedule {
    /// A schedule from explicit segments.
    pub fn new(name: impl Into<String>, segments: Vec<RateSegment>) -> Self {
        TraceSchedule { name: name.into(), segments }
    }

    /// A smooth day/night cycle: eight Poisson windows ramping
    /// 0.25× → 1.75× → 0.25× of the base rate over `period_us`.
    pub fn diurnal(period_us: u64) -> Self {
        let mults = [0.25, 0.5, 1.0, 1.5, 1.75, 1.5, 1.0, 0.5];
        let seg = period_us / mults.len() as u64;
        TraceSchedule::new("diurnal", mults.iter().map(|&m| RateSegment::poisson(seg, m)).collect())
    }

    /// A flash crowd: calm at the base rate, then a `surge_mult ×` spike
    /// for `surge_us`, then calm again.
    pub fn step_surge(calm_us: u64, surge_us: u64, surge_mult: f64) -> Self {
        TraceSchedule::new(
            format!("surge({surge_mult:.0}x)"),
            vec![
                RateSegment::poisson(calm_us, 1.0),
                RateSegment::poisson(surge_us, surge_mult),
                RateSegment::poisson(calm_us, 1.0),
            ],
        )
    }

    /// A sawtooth: `steps` Poisson windows ramping linearly from 0.25×
    /// up to `peak ×` over `period_us`, then snapping back down.
    pub fn sawtooth(period_us: u64, steps: usize, peak: f64) -> Self {
        let steps = steps.max(2);
        let seg = period_us / steps as u64;
        let segments = (0..steps)
            .map(|i| {
                let frac = i as f64 / (steps - 1) as f64;
                RateSegment::poisson(seg, 0.25 + (peak - 0.25) * frac)
            })
            .collect();
        TraceSchedule::new("sawtooth", segments)
    }

    /// A seeded multiplicative random walk: `n_segments` Poisson windows
    /// of `segment_us` whose multipliers take ±25 % steps from 1.0,
    /// clamped to `[0.25, 4.0]`. Pure in `walk_seed`.
    pub fn random_walk(n_segments: usize, segment_us: u64, walk_seed: u64) -> Self {
        let mut rng = TensorRng::seed_from(walk_seed ^ 0x7A1C_0FFE_E000_0001);
        let mut mult = 1.0f64;
        let segments = (0..n_segments.max(1))
            .map(|_| {
                let u = f64::from(rng.uniform_value(0.0, 1.0));
                mult = (mult * if u < 0.5 { 0.75 } else { 1.25 }).clamp(0.25, 4.0);
                RateSegment::poisson(segment_us, mult)
            })
            .collect();
        TraceSchedule::new("random-walk", segments)
    }

    /// Total virtual duration of one cycle in nanoseconds.
    pub fn cycle_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.duration_us.saturating_mul(1_000)).sum()
    }

    /// Whether the schedule can ever produce an arrival: at least one
    /// segment with positive duration *and* positive rate (what
    /// `ServeConfig::validate` rejects otherwise — a schedule that can't
    /// arrive would spin the sampler forever).
    pub fn can_arrive(&self) -> bool {
        self.segments.iter().any(|s| s.duration_us > 0 && s.rate_mult > 0.0)
    }

    /// Whether the schedule can produce an arrival *at this base rate*.
    ///
    /// Stricter than [`Self::can_arrive`]: a [`SegmentProcess::Uniform`]
    /// segment whose fixed gap (`1e9 / rate`) is at least as long as its
    /// window deterministically never fires — only the stochastic
    /// processes can eventually land an arrival in any positive window.
    /// `ServeConfig::validate` checks this against the offered load, and
    /// the sampler asserts it, because a schedule that is unproductive at
    /// its rate would cycle forever.
    pub fn productive_at(&self, rate_per_s: f64) -> bool {
        self.segments.iter().any(|s| {
            if s.duration_us == 0 || s.rate_mult <= 0.0 {
                return false;
            }
            match s.process {
                SegmentProcess::Uniform => {
                    let gap = (1e9 / (rate_per_s * s.rate_mult)).round() as u64;
                    gap < s.duration_us.saturating_mul(1_000)
                }
                SegmentProcess::Poisson | SegmentProcess::Bursty { .. } => true,
            }
        })
    }
}

/// A pluggable open-loop arrival process.
///
/// Every variant is a pure function of `(n, rate, seed)` producing a
/// sorted virtual-nanosecond trace — the variants differ only in how the
/// arrivals are *spaced* (and, for [`ArrivalProcess::Trace`], how the
/// instantaneous rate moves around the mean), which is exactly the
/// dimension scheduling, admission and fleet-control policies differ on.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps (the PR 2 default).
    Poisson,
    /// On/off Markov-modulated Poisson: exponentially-distributed ON
    /// phases arriving at `burst × rate` alternate with silent OFF phases
    /// sized so the long-run mean stays `rate`. `burst` must exceed 1.
    Bursty {
        /// Peak-to-mean rate ratio of the ON phase (> 1).
        burst: f64,
    },
    /// Deterministic pacing at exactly the offered rate. At rates above
    /// 1 GHz the rounded gap is 0 ns, i.e. genuinely simultaneous
    /// arrivals — the admission queue's hardest case.
    Uniform,
    /// Time-varying load: the [`TraceSchedule`]'s segments scale the
    /// offered rate window by window, cycling until `n` arrivals exist.
    Trace(TraceSchedule),
}

impl ArrivalProcess {
    /// The default bursty operating point: 8× peak-to-mean.
    pub fn bursty_default() -> Self {
        ArrivalProcess::Bursty { burst: 8.0 }
    }

    /// Short display name for tables (`poisson`, `bursty(8x)`, `uniform`,
    /// `trace(diurnal)`).
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson => "poisson".into(),
            ArrivalProcess::Bursty { burst } => format!("bursty({burst:.0}x)"),
            ArrivalProcess::Uniform => "uniform".into(),
            ArrivalProcess::Trace(t) => format!("trace({})", t.name),
        }
    }

    /// Samples `n` sorted arrival times at mean rate `rate_per_s` (for
    /// [`ArrivalProcess::Trace`], the *base* rate the segments multiply).
    ///
    /// Pure in `(n, rate_per_s, seed)`; the Poisson variant reproduces
    /// [`arrival_times`] bit-for-bit, which is what keeps pre-policy
    /// serving traces byte-identical. Since the discrete-event rewrite
    /// this is literally `stream(…).take(n).collect()` — the lazy
    /// iterator is the single source of truth, and
    /// `tests/tests/engine_equivalence.rs` pins the streams that the
    /// materialized form produced before the refactor.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate, a `Bursty` factor ≤ 1, or a trace
    /// schedule that can never arrive (the serving layer validates all of
    /// these in `ServeConfig::validate` first).
    pub fn sample(&self, n: usize, rate_per_s: f64, seed: u64) -> Vec<u64> {
        self.stream(rate_per_s, seed).take(n).collect()
    }

    /// The lazy, unbounded form of [`Self::sample`]: an iterator yielding
    /// the same virtual-nanosecond sequence draw for draw, generated on
    /// demand in O(1) state instead of a materialized `Vec`.
    ///
    /// This is what lets the serving runtime pull 10M-request traces
    /// without holding them: live memory is the iterator's cursor, not
    /// the trace.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::sample`].
    pub fn stream(&self, rate_per_s: f64, seed: u64) -> ArrivalIter {
        assert!(rate_per_s > 0.0, "offered load must be positive");
        let mut rng = TensorRng::seed_from(seed);
        let state = match *self {
            ArrivalProcess::Poisson => IterState::Poisson { t: 0 },
            ArrivalProcess::Uniform => {
                IterState::Uniform { gap: (1e9 / rate_per_s).round() as u64, k: 0 }
            }
            ArrivalProcess::Bursty { burst } => {
                assert!(burst > 1.0, "burst factor must exceed 1, got {burst}");
                // Start inside an ON phase so short traces still arrive.
                IterState::Bursty(BurstyState::enter(&mut rng, rate_per_s, burst, 0))
            }
            ArrivalProcess::Trace(ref schedule) => {
                assert!(schedule.can_arrive(), "trace schedule can never produce an arrival");
                assert!(
                    schedule.productive_at(rate_per_s),
                    "trace schedule can never produce an arrival at base rate {rate_per_s} \
                     (every productive window is uniform-paced with a gap longer than itself)"
                );
                IterState::Trace { schedule: schedule.clone(), seg: 0, t0: 0, window: None }
            }
        };
        ArrivalIter { rng, rate: rate_per_s, state }
    }
}

/// On/off MMPP cursor shared by the standalone bursty process and bursty
/// trace segments: the current time and the end of the current ON phase.
#[derive(Debug, Clone)]
struct BurstyState {
    rate_on: f64,
    tau_on: f64,
    tau_off: f64,
    t: u64,
    phase_end: u64,
}

impl BurstyState {
    /// Opens a bursty stretch at `t`: derives the phase constants and
    /// draws the first ON-phase length (one rng draw, exactly like the
    /// materialized sampler does on window entry).
    fn enter(rng: &mut TensorRng, rate_per_s: f64, burst: f64, t: u64) -> Self {
        assert!(burst > 1.0, "burst factor must exceed 1, got {burst}");
        let cycle_s = BURSTY_CYCLE_GAPS / rate_per_s;
        let tau_on = cycle_s / burst; // duty cycle 1/burst keeps the mean
        let tau_off = cycle_s - tau_on;
        let phase_end = t.saturating_add(exp_gap_ns(rng, 1.0 / tau_on));
        BurstyState { rate_on: rate_per_s * burst, tau_on, tau_off, t, phase_end }
    }

    /// One unbounded arrival: draws gaps, skipping OFF phases, until one
    /// lands inside an ON phase.
    fn next_unbounded(&mut self, rng: &mut TensorRng) -> u64 {
        loop {
            let gap = exp_gap_ns(rng, self.rate_on);
            if self.t.saturating_add(gap) <= self.phase_end {
                self.t = self.t.saturating_add(gap);
                return self.t;
            }
            // ON phase exhausted: skip the silent OFF phase and open the
            // next ON phase.
            let off = exp_gap_ns(rng, 1.0 / self.tau_off);
            self.t = self.phase_end.saturating_add(off);
            self.phase_end = self.t.saturating_add(exp_gap_ns(rng, 1.0 / self.tau_on));
        }
    }

    /// One arrival bounded by the window end `t1`, or `None` once the
    /// cursor leaves the window (same draw sequence as
    /// `SegmentProcess::sample_window`).
    fn next_in_window(&mut self, rng: &mut TensorRng, t1: u64) -> Option<u64> {
        while self.t < t1 {
            let gap = exp_gap_ns(rng, self.rate_on);
            if self.t.saturating_add(gap) <= self.phase_end {
                self.t = self.t.saturating_add(gap);
                if self.t >= t1 {
                    return None;
                }
                return Some(self.t);
            }
            let off = exp_gap_ns(rng, 1.0 / self.tau_off);
            self.t = self.phase_end.saturating_add(off);
            self.phase_end = self.t.saturating_add(exp_gap_ns(rng, 1.0 / self.tau_on));
        }
        None
    }
}

/// Point-process cursor inside one entered trace window.
#[derive(Debug, Clone)]
enum WindowState {
    Poisson { t: u64 },
    Uniform { gap: u64, k: u64 },
    Bursty(BurstyState),
}

/// Iterator state per [`ArrivalProcess`] variant.
#[derive(Debug, Clone)]
enum IterState {
    Poisson {
        t: u64,
    },
    Uniform {
        gap: u64,
        k: u64,
    },
    Bursty(BurstyState),
    Trace {
        schedule: TraceSchedule,
        /// Index of the segment the cursor sits in (cycles).
        seg: usize,
        /// Virtual start of that segment's window.
        t0: u64,
        /// `(t0, t1, rate, cursor)` of an entered productive window.
        window: Option<(u64, u64, f64, WindowState)>,
    },
}

/// A lazy, unbounded arrival-time stream — the pull form of
/// [`ArrivalProcess::sample`], built by [`ArrivalProcess::stream`].
///
/// Yields an infinite non-decreasing sequence of virtual nanoseconds;
/// `next()` never returns `None`. Each pull performs O(1) amortized rng
/// draws and the whole iterator is O(1) state (a time cursor, a phase
/// cursor and — for traces — a segment index), so consumers decide how
/// much trace exists. The draw *order* matches the materialized sampler
/// exactly: taking `n` arrivals consumes the same rng stream as
/// `sample(n, …)`, which keeps every engine digest pinned across the
/// lazy/materialized boundary.
#[derive(Debug, Clone)]
pub struct ArrivalIter {
    rng: TensorRng,
    rate: f64,
    state: IterState,
}

impl Iterator for ArrivalIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match self.state {
            IterState::Poisson { ref mut t } => {
                *t = t.saturating_add(exp_gap_ns(&mut self.rng, self.rate));
                Some(*t)
            }
            IterState::Uniform { gap, ref mut k } => {
                *k += 1;
                Some(k.saturating_mul(gap).max(1))
            }
            IterState::Bursty(ref mut b) => Some(b.next_unbounded(&mut self.rng)),
            IterState::Trace { ref schedule, ref mut seg, ref mut t0, ref mut window } => {
                loop {
                    if let Some((w_t0, t1, rate, cursor)) = window.as_mut() {
                        let hit = match cursor {
                            WindowState::Poisson { t } => {
                                *t = t.saturating_add(exp_gap_ns(&mut self.rng, *rate));
                                if *t >= *t1 {
                                    None
                                } else {
                                    Some(*t)
                                }
                            }
                            WindowState::Uniform { gap, k } => {
                                // A rounded gap of 0 ns means genuinely
                                // simultaneous arrivals; the consumer's
                                // take() bounds the yield count, exactly
                                // like the `n` bound did in the
                                // materialized sampler.
                                *k += 1;
                                let t = w_t0.saturating_add(k.saturating_mul(*gap));
                                if t >= *t1 {
                                    None
                                } else {
                                    Some(t)
                                }
                            }
                            WindowState::Bursty(b) => b.next_in_window(&mut self.rng, *t1),
                        };
                        if let Some(t) = hit {
                            return Some(t);
                        }
                        // Window exhausted: the cursor crosses into the
                        // next segment.
                        *t0 = *t1;
                        *seg = (*seg + 1) % schedule.segments.len();
                        *window = None;
                        continue;
                    }
                    let s = &schedule.segments[*seg];
                    let dur_ns = s.duration_us.saturating_mul(1_000);
                    let t1 = t0.saturating_add(dur_ns);
                    // Zero-duration or silent windows contribute nothing —
                    // they only advance (or hold) the clock.
                    if dur_ns > 0 && s.rate_mult > 0.0 {
                        let rate = self.rate * s.rate_mult;
                        let cursor = match s.process {
                            SegmentProcess::Poisson => WindowState::Poisson { t: *t0 },
                            SegmentProcess::Uniform => {
                                WindowState::Uniform { gap: (1e9 / rate).round() as u64, k: 0 }
                            }
                            SegmentProcess::Bursty { burst } => WindowState::Bursty(
                                BurstyState::enter(&mut self.rng, rate, burst, *t0),
                            ),
                        };
                        *window = Some((*t0, t1, rate, cursor));
                    } else {
                        *t0 = t1;
                        *seg = (*seg + 1) % schedule.segments.len();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible() {
        assert_eq!(arrival_times(200, 500.0, 3), arrival_times(200, 500.0, 3));
        assert_ne!(arrival_times(200, 500.0, 3), arrival_times(200, 500.0, 4));
    }

    #[test]
    fn mean_gap_tracks_offered_rate() {
        let rate = 2_000.0;
        let t = arrival_times(4000, rate, 11);
        let span_s = *t.last().unwrap() as f64 * 1e-9;
        let achieved = t.len() as f64 / span_s;
        assert!((achieved - rate).abs() / rate < 0.1, "achieved {achieved} vs offered {rate}");
    }

    #[test]
    fn gaps_are_strictly_positive() {
        let t = arrival_times(1000, 1e6, 5);
        assert!(t[0] >= 1);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "offered load must be positive")]
    fn zero_rate_is_rejected() {
        arrival_times(1, 0.0, 1);
    }

    #[test]
    fn poisson_process_matches_the_legacy_function() {
        let p = ArrivalProcess::Poisson.sample(300, 1234.5, 99);
        assert_eq!(p, arrival_times(300, 1234.5, 99));
    }

    #[test]
    fn every_process_is_sorted_reproducible_and_rate_faithful() {
        for proc in
            [ArrivalProcess::Poisson, ArrivalProcess::bursty_default(), ArrivalProcess::Uniform]
        {
            let rate = 5_000.0;
            let a = proc.sample(4000, rate, 7);
            let b = proc.sample(4000, rate, 7);
            assert_eq!(a, b, "{} not reproducible", proc.label());
            assert_eq!(a.len(), 4000);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{} unsorted", proc.label());
            let achieved = a.len() as f64 / (*a.last().unwrap() as f64 * 1e-9);
            assert!(
                (achieved - rate).abs() / rate < 0.25,
                "{}: achieved {achieved} vs offered {rate}",
                proc.label()
            );
        }
    }

    #[test]
    fn bursty_concentrates_arrivals() {
        // Coefficient of variation of the gaps: bursty must exceed Poisson
        // (whose CV is 1), uniform must be (near) zero.
        let cv = |t: &[u64]| {
            let gaps: Vec<f64> = t.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let rate = 10_000.0;
        let poisson = ArrivalProcess::Poisson.sample(6000, rate, 21);
        let bursty = ArrivalProcess::bursty_default().sample(6000, rate, 21);
        let uniform = ArrivalProcess::Uniform.sample(6000, rate, 21);
        assert!(
            cv(&bursty) > 1.5 * cv(&poisson),
            "bursty CV {} vs poisson {}",
            cv(&bursty),
            cv(&poisson)
        );
        assert!(cv(&uniform) < 0.01, "uniform CV {}", cv(&uniform));
    }

    #[test]
    fn uniform_at_extreme_rate_produces_simultaneous_arrivals() {
        // Above 1 GHz the rounded gap collapses to zero: multiple requests
        // share one virtual nanosecond. The admission queue must handle it.
        let t = ArrivalProcess::Uniform.sample(16, 4e9, 1);
        assert_eq!(t.len(), 16);
        assert!(t.windows(2).any(|w| w[0] == w[1]), "expected equal timestamps: {t:?}");
    }

    #[test]
    fn labels_name_the_process() {
        assert_eq!(ArrivalProcess::Poisson.label(), "poisson");
        assert_eq!(ArrivalProcess::bursty_default().label(), "bursty(8x)");
        assert_eq!(ArrivalProcess::Uniform.label(), "uniform");
    }

    #[test]
    #[should_panic(expected = "burst factor must exceed 1")]
    fn degenerate_burst_factor_is_rejected() {
        ArrivalProcess::Bursty { burst: 1.0 }.sample(4, 100.0, 1);
    }

    #[test]
    fn traces_are_sorted_reproducible_and_cycle() {
        for schedule in [
            TraceSchedule::diurnal(40_000),
            TraceSchedule::step_surge(10_000, 5_000, 8.0),
            TraceSchedule::sawtooth(40_000, 4, 2.0),
            TraceSchedule::random_walk(6, 8_000, 9),
        ] {
            let proc = ArrivalProcess::Trace(schedule.clone());
            let a = proc.sample(500, 20_000.0, 3);
            let b = proc.sample(500, 20_000.0, 3);
            assert_eq!(a, b, "{} not reproducible", proc.label());
            assert_eq!(a.len(), 500);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{} unsorted", proc.label());
            // 500 arrivals at ~20k/s is ~25 ms of trace — several cycles
            // of a ≤40 ms... (40_000 µs = 40 ms) at least reaches past one
            // segment; the last arrival must sit beyond the first window.
            assert!(
                *a.last().unwrap() > schedule.segments[0].duration_us * 1_000,
                "{}: trace never left its first window",
                proc.label()
            );
        }
    }

    #[test]
    fn surge_concentrates_arrivals_in_the_spike_window() {
        // calm 20 ms at 1x, surge 10 ms at 8x: the spike window covers
        // 1/5 of each 50 ms cycle but ~8/10 of its arrivals.
        let schedule = TraceSchedule::step_surge(20_000, 10_000, 8.0);
        let t = ArrivalProcess::Trace(schedule).sample(2_000, 10_000.0, 5);
        let cycle = 50_000_000u64;
        let in_surge = t
            .iter()
            .filter(|&&x| {
                let phase = x % cycle;
                (20_000_000..30_000_000).contains(&phase)
            })
            .count();
        let frac = in_surge as f64 / t.len() as f64;
        assert!(frac > 0.6, "surge window holds only {frac:.2} of arrivals");
    }

    #[test]
    fn zero_duration_segments_are_skipped() {
        let schedule = TraceSchedule::new(
            "degenerate",
            vec![
                RateSegment::poisson(0, 4.0),     // zero-length: skipped
                RateSegment::poisson(5_000, 0.0), // silent: clock advances
                RateSegment::poisson(5_000, 1.0),
            ],
        );
        assert!(schedule.can_arrive());
        let t = ArrivalProcess::Trace(schedule).sample(64, 50_000.0, 7);
        assert_eq!(t.len(), 64);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        // The silent first window of each 10 ms cycle holds nothing.
        assert!(t.iter().all(|&x| (x % 10_000_000) >= 5_000_000), "arrival in silent window");
    }

    #[test]
    fn schedules_that_cannot_arrive_are_detected() {
        assert!(!TraceSchedule::new("dead", vec![RateSegment::poisson(0, 1.0)]).can_arrive());
        assert!(!TraceSchedule::new("dead", vec![RateSegment::poisson(1_000, 0.0)]).can_arrive());
        assert!(TraceSchedule::new("ok", vec![RateSegment::poisson(1_000, 0.5)]).can_arrive());
    }

    #[test]
    #[should_panic(expected = "can never produce an arrival")]
    fn dead_schedules_panic_at_sample_time() {
        let dead = TraceSchedule::new("dead", vec![RateSegment::poisson(1_000, 0.0)]);
        ArrivalProcess::Trace(dead).sample(1, 100.0, 1);
    }

    /// A uniform-paced window whose fixed gap outlasts the window can
    /// never fire; sampling such a schedule must fail loudly instead of
    /// cycling forever.
    #[test]
    #[should_panic(expected = "at base rate")]
    fn uniform_gap_longer_than_its_window_panics_instead_of_hanging() {
        // 1 ms window, 100 req/s -> 10 ms gap: deterministically silent.
        let stuck = TraceSchedule::new(
            "stuck",
            vec![RateSegment {
                duration_us: 1_000,
                rate_mult: 1.0,
                process: SegmentProcess::Uniform,
            }],
        );
        assert!(stuck.can_arrive(), "rate-independent check cannot see it");
        assert!(!stuck.productive_at(100.0));
        ArrivalProcess::Trace(stuck).sample(1, 100.0, 1);
    }

    #[test]
    fn productivity_depends_on_the_base_rate() {
        let schedule = TraceSchedule::new(
            "uniform",
            vec![RateSegment {
                duration_us: 1_000,
                rate_mult: 1.0,
                process: SegmentProcess::Uniform,
            }],
        );
        assert!(!schedule.productive_at(100.0), "10 ms gap vs 1 ms window");
        assert!(schedule.productive_at(10_000.0), "0.1 ms gap vs 1 ms window");
        // A stochastic segment rescues the schedule at any positive rate.
        let mixed = TraceSchedule::new(
            "mixed",
            vec![
                RateSegment {
                    duration_us: 1_000,
                    rate_mult: 1.0,
                    process: SegmentProcess::Uniform,
                },
                RateSegment::poisson(1_000, 1.0),
            ],
        );
        assert!(mixed.productive_at(100.0));
        let t = ArrivalProcess::Trace(mixed).sample(16, 100.0, 3);
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn segment_processes_cover_the_point_process_family() {
        // Each point process works inside a window and respects bounds.
        for process in [
            SegmentProcess::Poisson,
            SegmentProcess::Bursty { burst: 8.0 },
            SegmentProcess::Uniform,
        ] {
            let schedule = TraceSchedule::new(
                "mixed",
                vec![RateSegment { duration_us: 10_000, rate_mult: 1.0, process }],
            );
            let t = ArrivalProcess::Trace(schedule).sample(200, 30_000.0, 11);
            assert_eq!(t.len(), 200);
            assert!(t.windows(2).all(|w| w[0] <= w[1]), "{process:?} unsorted");
        }
    }

    #[test]
    fn trace_labels_carry_the_schedule_name() {
        assert_eq!(ArrivalProcess::Trace(TraceSchedule::diurnal(1_000)).label(), "trace(diurnal)");
        assert_eq!(
            ArrivalProcess::Trace(TraceSchedule::step_surge(1_000, 500, 8.0)).label(),
            "trace(surge(8x))"
        );
    }
}
