//! Error type for the serving runtime.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running the serving runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The functional model failed.
    Model(defa_model::ModelError),
    /// The pruning pipeline failed.
    Prune(defa_prune::PruneError),
    /// The accelerator simulation failed.
    Core(defa_core::CoreError),
    /// A serving configuration failed validation.
    InvalidConfig(String),
    /// A single configuration field holds a zero/degenerate value that
    /// must never reach the runtime loop (the field is named so callers
    /// can match on it).
    DegenerateConfig {
        /// The offending `ServeConfig` field.
        field: &'static str,
        /// The rejected value, with the constraint it violated.
        got: String,
    },
    /// The fleet handed to `run_fleet` does not match the configuration.
    FleetMismatch {
        /// Backends in the fleet.
        fleet: usize,
        /// Shards the configuration asks for.
        shards: usize,
    },
    /// A worker shard died before delivering its batch.
    WorkerLost(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Prune(e) => write!(f, "pruning error: {e}"),
            ServeError::Core(e) => write!(f, "accelerator error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serving configuration: {msg}"),
            ServeError::DegenerateConfig { field, got } => {
                write!(f, "degenerate serving configuration: {field} = {got}")
            }
            ServeError::FleetMismatch { fleet, shards } => write!(
                f,
                "fleet of {fleet} backend(s) cannot serve {shards} shard(s): \
                 pass exactly one backend per shard"
            ),
            ServeError::WorkerLost(msg) => write!(f, "worker shard lost: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            ServeError::Prune(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::InvalidConfig(_)
            | ServeError::DegenerateConfig { .. }
            | ServeError::FleetMismatch { .. }
            | ServeError::WorkerLost(_) => None,
        }
    }
}

impl From<defa_model::ModelError> for ServeError {
    fn from(e: defa_model::ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<defa_prune::PruneError> for ServeError {
    fn from(e: defa_prune::PruneError) -> Self {
        ServeError::Prune(e)
    }
}

impl From<defa_core::CoreError> for ServeError {
    fn from(e: defa_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}
