//! Tensor shapes and row-major index arithmetic.

use crate::TensorError;
use std::fmt;

/// A tensor shape of rank 1..=4, stored inline.
///
/// Shapes are row-major: the last axis varies fastest. Rank-0 shapes are not
/// supported; scalars are represented by plain `f32` throughout the
/// workspace.
///
/// # Example
///
/// ```
/// use defa_tensor::Shape;
///
/// let s = Shape::from([3, 4]);
/// assert_eq!(s.volume(), 12);
/// assert_eq!(s.strides(), vec![4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of axis lengths.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or longer than 4 axes; the workspace never
    /// needs higher ranks and keeping the bound tight catches bugs early.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= 4,
            "shape rank must be 1..=4, got {}",
            dims.len()
        );
        Shape { dims: dims.to_vec() }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Axis lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Length of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims.get(axis).copied().ok_or(TensorError::InvalidAxis { axis, rank: self.rank() })
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any coordinate exceeds
    /// its axis length, and [`TensorError::ShapeMismatch`] if the index rank
    /// differs from the shape rank.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::ShapeMismatch {
                op: "offset",
                lhs: format!("{self}"),
                rhs: format!("{index:?}"),
            });
        }
        let strides = self.strides();
        let mut off = 0;
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Self {
        Shape::new(&[n])
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides_match_row_major_layout() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn rank_one_shape_has_unit_stride() {
        let s = Shape::from(7);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.strides(), vec![1]);
        assert_eq!(s.volume(), 7);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { index: 2, len: 2 })
        ));
    }

    #[test]
    fn offset_rejects_rank_mismatch() {
        let s = Shape::from([2, 3]);
        assert!(matches!(s.offset(&[1]), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn dim_accessor_validates_axis() {
        let s = Shape::from([5, 6]);
        assert_eq!(s.dim(1).unwrap(), 6);
        assert!(matches!(s.dim(2), Err(TensorError::InvalidAxis { axis: 2, rank: 2 })));
    }

    #[test]
    #[should_panic(expected = "shape rank")]
    fn empty_shape_panics() {
        let _ = Shape::new(&[]);
    }

    #[test]
    fn zero_length_axis_gives_zero_volume() {
        let s = Shape::from([3, 0]);
        assert_eq!(s.volume(), 0);
    }
}
