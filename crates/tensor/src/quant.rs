//! Symmetric fixed-point quantization.
//!
//! The paper quantizes the MSDeformAttn modules to **INT12** during
//! inference and reports that INT8 costs an unacceptable 9.7 AP on average
//! (§5.2). [`QuantParams`] captures a symmetric per-tensor scheme:
//! `q = clamp(round(x / scale), -2^(bits-1), 2^(bits-1) - 1)`.

use crate::{Tensor, TensorError};

/// Parameters of a symmetric per-tensor quantizer.
///
/// # Example
///
/// ```
/// use defa_tensor::{QuantParams, Tensor};
///
/// # fn main() -> Result<(), defa_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![-1.0, 0.5, 1.0], [3])?;
/// let params = QuantParams::fit(&t, 12)?;
/// let q = params.quantize(&t);
/// let back = params.dequantize(&q);
/// assert!(back.relative_l2_error(&t)? < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    bits: u8,
}

impl QuantParams {
    /// Creates quantizer parameters from an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidQuantParams`] if `scale` is not a
    /// positive finite number or `bits` is outside `2..=16`.
    pub fn new(scale: f32, bits: u8) -> Result<Self, TensorError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TensorError::InvalidQuantParams(format!(
                "scale must be positive and finite, got {scale}"
            )));
        }
        if !(2..=16).contains(&bits) {
            return Err(TensorError::InvalidQuantParams(format!(
                "bit width must be in 2..=16, got {bits}"
            )));
        }
        Ok(QuantParams { scale, bits })
    }

    /// Fits a symmetric scale to a tensor so the largest magnitude maps to
    /// the most positive code.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidQuantParams`] for unsupported bit
    /// widths. An all-zero tensor fits a unit scale.
    pub fn fit(t: &Tensor, bits: u8) -> Result<Self, TensorError> {
        let max = t.max_abs();
        let qmax = ((1i32 << (bits.min(16) - 1)) - 1) as f32;
        let scale = if max > 0.0 { max / qmax } else { 1.0 };
        QuantParams::new(scale, bits)
    }

    /// The quantization step size.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The bit width of the integer codes.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Most negative representable code.
    pub fn qmin(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Most positive representable code.
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Quantizes a single value to its integer code.
    pub fn quantize_value(&self, x: f32) -> i32 {
        let q = (x / self.scale).round() as i64;
        q.clamp(self.qmin() as i64, self.qmax() as i64) as i32
    }

    /// Dequantizes a single code back to `f32`.
    pub fn dequantize_value(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a whole tensor.
    pub fn quantize(&self, t: &Tensor) -> QTensor {
        let codes = t.as_slice().iter().map(|&x| self.quantize_value(x)).collect();
        QTensor { params: *self, shape: t.shape().clone(), codes }
    }

    /// Dequantizes a [`QTensor`] produced by this (or an equal) quantizer.
    pub fn dequantize(&self, q: &QTensor) -> Tensor {
        let data = q.codes.iter().map(|&c| self.dequantize_value(c)).collect();
        Tensor::from_vec(data, q.shape.clone()).expect("codes length matches shape by construction")
    }

    /// Quantize–dequantize round trip ("fake quantization"), used by the
    /// functional model to emulate INT-N inference in `f32` arithmetic.
    pub fn fake_quantize(&self, t: &Tensor) -> Tensor {
        let data =
            t.as_slice().iter().map(|&x| self.dequantize_value(self.quantize_value(x))).collect();
        Tensor::from_vec(data, t.shape().clone()).expect("same shape")
    }
}

/// A tensor of integer quantization codes plus its quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    params: QuantParams,
    shape: crate::Shape,
    codes: Vec<i32>,
}

impl QTensor {
    /// The quantizer that produced these codes.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Shape of the quantized tensor.
    pub fn shape(&self) -> &crate::Shape {
        &self.shape
    }

    /// The raw integer codes.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Converts back to `f32` using the stored parameters.
    pub fn to_tensor(&self) -> Tensor {
        self.params.dequantize(self)
    }

    /// Storage footprint in bits (codes only, ignoring metadata).
    pub fn storage_bits(&self) -> u64 {
        self.codes.len() as u64 * self.params.bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn int12_range_is_symmetric() {
        let p = QuantParams::new(0.01, 12).unwrap();
        assert_eq!(p.qmin(), -2048);
        assert_eq!(p.qmax(), 2047);
    }

    #[test]
    fn fit_maps_extreme_to_qmax() {
        let t = Tensor::from_vec(vec![-3.0, 0.0, 1.5], [3]).unwrap();
        let p = QuantParams::fit(&t, 12).unwrap();
        assert_eq!(p.quantize_value(-3.0), -2047);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = TensorRng::seed_from(42);
        let t = rng.uniform([64, 8], -2.0, 2.0);
        let p = QuantParams::fit(&t, 12).unwrap();
        let back = p.fake_quantize(&t);
        let step = p.scale();
        for (&a, &b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step * 0.5 + 1e-7);
        }
    }

    #[test]
    fn int8_is_much_coarser_than_int12() {
        let mut rng = TensorRng::seed_from(1);
        let t = rng.uniform([128, 4], -1.0, 1.0);
        let e12 =
            QuantParams::fit(&t, 12).unwrap().fake_quantize(&t).relative_l2_error(&t).unwrap();
        let e8 = QuantParams::fit(&t, 8).unwrap().fake_quantize(&t).relative_l2_error(&t).unwrap();
        assert!(e8 > e12 * 8.0, "e8={e8} e12={e12}");
    }

    #[test]
    fn zero_tensor_fits_unit_scale() {
        let t = Tensor::zeros([4]);
        let p = QuantParams::fit(&t, 12).unwrap();
        assert_eq!(p.scale(), 1.0);
        assert_eq!(p.quantize_value(0.0), 0);
    }

    #[test]
    fn clamps_out_of_range_values() {
        let p = QuantParams::new(1.0, 4).unwrap();
        assert_eq!(p.quantize_value(100.0), 7);
        assert_eq!(p.quantize_value(-100.0), -8);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(QuantParams::new(0.0, 12).is_err());
        assert!(QuantParams::new(f32::NAN, 12).is_err());
        assert!(QuantParams::new(1.0, 1).is_err());
        assert!(QuantParams::new(1.0, 17).is_err());
    }

    #[test]
    fn storage_bits_counts_codes() {
        let t = Tensor::zeros([10]);
        let q = QuantParams::fit(&t, 12).unwrap().quantize(&t);
        assert_eq!(q.storage_bits(), 120);
    }

    #[test]
    fn qtensor_to_tensor_round_trips() {
        let t = Tensor::from_vec(vec![0.5, -0.25], [2]).unwrap();
        let p = QuantParams::fit(&t, 12).unwrap();
        let q = p.quantize(&t);
        assert_eq!(q.shape().dims(), &[2]);
        let back = q.to_tensor();
        assert!(back.relative_l2_error(&t).unwrap() < 1e-3);
    }
}
