//! Integer fixed-point scalar arithmetic.
//!
//! The DEFA datapath (40 nm, INT12) performs bilinear interpolation and
//! aggregation on fixed-point values. [`Fixed`] models a signed
//! `i32`-backed value with a compile-time-free fractional width, rounding
//! to nearest on multiplication. The hardware models in `defa-arch` use it
//! to produce bit-faithful interpolation results that can be compared
//! against the `f32` reference within quantization error.

use std::fmt;

/// Signed fixed-point number with `frac` fractional bits, stored in `i32`.
///
/// # Example
///
/// ```
/// use defa_tensor::Fixed;
///
/// let a = Fixed::from_f32(1.5, 8);
/// let b = Fixed::from_f32(2.0, 8);
/// assert_eq!((a * b).to_f32(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fixed {
    raw: i32,
    frac: u8,
}

impl Fixed {
    /// Creates a fixed-point value from raw integer representation.
    pub fn from_raw(raw: i32, frac: u8) -> Self {
        assert!(frac < 31, "fractional width must be < 31");
        Fixed { raw, frac }
    }

    /// Converts an `f32` by rounding to the nearest representable value.
    pub fn from_f32(x: f32, frac: u8) -> Self {
        assert!(frac < 31, "fractional width must be < 31");
        let scaled = (x as f64 * (1i64 << frac) as f64).round();
        Fixed { raw: scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32, frac }
    }

    /// Raw integer representation.
    pub fn raw(&self) -> i32 {
        self.raw
    }

    /// Number of fractional bits.
    pub fn frac(&self) -> u8 {
        self.frac
    }

    /// Converts back to `f32`.
    pub fn to_f32(&self) -> f32 {
        self.raw as f32 / (1i64 << self.frac) as f32
    }

    /// Fixed-point multiply with round-to-nearest, keeping `self.frac`.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different fractional widths; mixing
    /// formats silently is exactly the kind of bug this type exists to stop.
    #[allow(clippy::should_implement_trait)] // panics on format mismatch by design
    pub fn mul(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.frac, rhs.frac, "fixed-point format mismatch");
        let prod = self.raw as i64 * rhs.raw as i64;
        let rounded =
            if self.frac == 0 { prod } else { (prod + (1i64 << (self.frac - 1))) >> self.frac };
        Fixed { raw: rounded as i32, frac: self.frac }
    }

    /// Saturating fixed-point addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different fractional widths.
    #[allow(clippy::should_implement_trait)] // panics on format mismatch by design
    pub fn add(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.frac, rhs.frac, "fixed-point format mismatch");
        Fixed { raw: self.raw.saturating_add(rhs.raw), frac: self.frac }
    }

    /// Saturating fixed-point subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different fractional widths.
    #[allow(clippy::should_implement_trait)] // panics on format mismatch by design
    pub fn sub(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.frac, rhs.frac, "fixed-point format mismatch");
        Fixed { raw: self.raw.saturating_sub(rhs.raw), frac: self.frac }
    }
}

impl std::ops::Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        Fixed::mul(self, rhs)
    }
}

impl std::ops::Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed::add(self, rhs)
    }
}

impl std::ops::Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed::sub(self, rhs)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q{}", self.to_f32(), self.frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip_is_exact_for_representable_values() {
        let x = Fixed::from_f32(0.25, 8);
        assert_eq!(x.to_f32(), 0.25);
        assert_eq!(x.raw(), 64);
    }

    #[test]
    fn multiplication_matches_float_within_one_ulp() {
        let a = Fixed::from_f32(1.375, 10);
        let b = Fixed::from_f32(-2.5, 10);
        let p = (a * b).to_f32();
        assert!((p - (-3.4375)).abs() <= 1.0 / 1024.0);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Fixed::from_f32(1.0, 6);
        let b = Fixed::from_f32(0.5, 6);
        assert_eq!((a + b).to_f32(), 1.5);
        assert_eq!((a - b).to_f32(), 0.5);
    }

    #[test]
    fn addition_saturates_instead_of_wrapping() {
        let a = Fixed::from_raw(i32::MAX, 0);
        let b = Fixed::from_raw(1, 0);
        assert_eq!((a + b).raw(), i32::MAX);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn mixing_formats_panics() {
        let _ = Fixed::from_f32(1.0, 4) + Fixed::from_f32(1.0, 8);
    }

    #[test]
    fn display_shows_value_and_format() {
        let x = Fixed::from_f32(1.5, 4);
        assert_eq!(x.to_string(), "1.5q4");
    }

    #[test]
    fn zero_frac_behaves_like_integers() {
        let a = Fixed::from_f32(3.0, 0);
        let b = Fixed::from_f32(4.0, 0);
        assert_eq!((a * b).to_f32(), 12.0);
    }
}
