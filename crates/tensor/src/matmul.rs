//! Matrix multiplication kernels.
//!
//! The functional reference model multiplies large activation matrices
//! (`Q·Wᴬ`, `Q·Wˢ`, `X·Wᵥ`), so a fast kernel matters. Three
//! implementations are provided:
//!
//! * [`matmul`] / [`matmul_row_masked`] — the production kernel: a
//!   register-tiled micro-kernel ([`MR`]×[`NR`] accumulators held in
//!   registers, packed-B panels, an unrolled FMA inner loop that
//!   auto-vectorizes) with the row dimension parallelized across threads
//!   via `defa-parallel`. Packing buffers come from a [`Scratch`] arena
//!   (thread-local for the convenience entry points), so steady-state
//!   calls allocate nothing beyond the output tensor — and the `_into`
//!   variants not even that.
//! * [`matmul_blocked`] — the original cache-blocked triple loop kept as
//!   the performance baseline the benches compare against.
//! * [`matmul_naive`] — the golden reference for tests.
//!
//! Results are **bit-identical for any thread count**: every `MR`-row band
//! of the output is produced by the same pure accumulation over `k` in the
//! same order regardless of how bands are distributed over threads.

use crate::scratch::{with_thread_scratch, Scratch};
use crate::{Tensor, TensorError};

/// Block edge used by [`matmul_blocked`]. 64×64 f32 blocks fit in L1/L2.
const BLOCK: usize = 64;

/// Rows of A processed at once by the micro-kernel. Six rows give the FMA
/// units 12 independent accumulator registers at every panel width (2
/// vectors per row), enough to hide the FMA latency chain.
const MR: usize = 6;

/// Below this many multiply–accumulates the row-parallel split is not worth
/// a thread spawn; the kernel runs sequentially. Results are identical
/// either way — the threshold only affects wall clock.
const PAR_MIN_MACS: u64 = 1 << 18;

/// Instruction set the micro-kernel was dispatched to at runtime.
///
/// The kernel body is generic over panel width and FMA use; this enum
/// picks the widest instantiation the CPU supports. Detection is done once
/// (std caches the CPUID result), and the choice is a pure function of the
/// host CPU, so results stay deterministic run to run on a given machine —
/// and thread-count invariant always.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// AVX-512F: 32-column panels, FMA.
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// AVX2 + FMA: 16-column panels, FMA.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// Portable: 8-column panels, mul + add (auto-vectorizes to the
    /// baseline SIMD of the target, e.g. SSE2 on x86-64).
    Portable,
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Isa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2Fma;
        }
    }
    Isa::Portable
}

/// Packed-panel width (columns of B per panel) for the dispatched ISA.
fn panel_width(isa: Isa) -> usize {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => 32,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => 16,
        Isa::Portable => 8,
    }
}

fn check_dims(
    a: &Tensor,
    b: &Tensor,
    op: &'static str,
) -> Result<(usize, usize, usize), TensorError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: format!("{}", a.shape()),
            rhs: format!("{}", b.shape()),
        });
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: format!("{}", a.shape()),
            rhs: format!("{}", b.shape()),
        });
    }
    Ok((m, k, n))
}

/// Naive triple-loop GEMM, kept as the golden reference for tests.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_dims(a, b, "matmul_naive")?;
    let mut out = Tensor::zeros([m, n]);
    let (av, bv, ov) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == 0.0 {
                continue;
            }
            for j in 0..n {
                ov[i * n + j] += aip * bv[p * n + j];
            }
        }
    }
    Ok(out)
}

/// The seed's cache-blocked GEMM, kept as the benchmark baseline the tiled
/// kernel is measured against.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_dims(a, b, "matmul_blocked")?;
    let mut out = Tensor::zeros([m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let aip = av[i * k + p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &bv[p * n + j0..p * n + j1];
                        let orow = &mut ov[i * n + j0..i * n + j1];
                        for (o, &bx) in orow.iter_mut().zip(brow) {
                            *o += aip * bx;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Packs B (`[k, n]` row-major) into zero-padded `nr`-column panels:
/// panel `pj` holds columns `pj·nr .. pj·nr+nr`, laid out `[p][jr]` so the
/// micro-kernel streams it contiguously. Panels are packed in parallel
/// when the caller's work-size gate says the GEMM is worth threading.
fn pack_b(bv: &[f32], k: usize, n: usize, nr: usize, parallel: bool, packed: &mut [f32]) {
    let panel_len = k * nr;
    defa_parallel::par_chunks_mut_if(parallel, packed, panel_len.max(1), |pj, panel| {
        let j0 = pj * nr;
        let w = nr.min(n - j0);
        for p in 0..k {
            let brow = &bv[p * n + j0..p * n + j0 + w];
            let dst = &mut panel[p * nr..p * nr + w];
            dst.copy_from_slice(brow);
            // Zero-pad ragged panels so the kernel can always run full
            // width (padding columns are simply not written back).
            for x in &mut panel[p * nr + w..p * nr + nr] {
                *x = 0.0;
            }
        }
    });
}

/// The register-tiled `MR`×`W` micro-kernel: six rows of A against one
/// packed B panel, accumulators kept in registers across the whole `k`
/// reduction. The `j`-loops over fixed-size arrays auto-vectorize; with
/// `FMA` the `mul_add` lowers to fused multiply–add vector instructions
/// (the caller only instantiates `FMA = true` under a matching
/// `#[target_feature]` context, where it is a single instruction).
#[inline(always)]
fn kernel_6<const W: usize, const FMA: bool>(
    rows: &[&[f32]; MR],
    panel: &[f32],
    kdim: usize,
) -> [[f32; W]; MR] {
    let a: [&[f32]; MR] = std::array::from_fn(|r| &rows[r][..kdim]);
    let panel = &panel[..kdim * W];
    let mut acc = [[0.0f32; W]; MR];
    for p in 0..kdim {
        let b = &panel[p * W..p * W + W];
        for r in 0..MR {
            let x = a[r][p];
            let c = &mut acc[r];
            if FMA {
                for j in 0..W {
                    c[j] = x.mul_add(b[j], c[j]);
                }
            } else {
                for j in 0..W {
                    c[j] += x * b[j];
                }
            }
        }
    }
    acc
}

/// Ragged-edge micro-kernel: 1–5 rows of A against one packed panel.
#[inline(always)]
fn kernel_small<const W: usize, const FMA: bool>(
    rows: &[&[f32]],
    panel: &[f32],
    kdim: usize,
) -> [[f32; W]; MR] {
    let panel = &panel[..kdim * W];
    let mut acc = [[0.0f32; W]; MR];
    for p in 0..kdim {
        let b = &panel[p * W..p * W + W];
        for (r, row) in rows.iter().enumerate() {
            let x = row[p];
            let c = &mut acc[r];
            if FMA {
                for j in 0..W {
                    c[j] = x.mul_add(b[j], c[j]);
                }
            } else {
                for j in 0..W {
                    c[j] += x * b[j];
                }
            }
        }
    }
    acc
}

/// Computes one `MR`-row band of the output across all packed panels.
///
/// `band_rows` holds the A-row slice of each *kept* row of the band and
/// `band_out` the matching output row index within `out_chunk`; rows of
/// the band not listed are left untouched (the masked path zeroes them
/// beforehand).
#[inline(always)]
fn compute_band_impl<const W: usize, const FMA: bool>(
    band_rows: &[&[f32]],
    band_out: &[usize],
    out_chunk: &mut [f32],
    packed: &[f32],
    k: usize,
    n: usize,
) {
    let n_panels = n.div_ceil(W);
    let panel_len = k * W;
    for pj in 0..n_panels {
        let j0 = pj * W;
        let w = W.min(n - j0);
        let panel = &packed[pj * panel_len..(pj + 1) * panel_len];
        let acc = if let Ok(full) = <&[&[f32]; MR]>::try_from(band_rows) {
            kernel_6::<W, FMA>(full, panel, k)
        } else {
            kernel_small::<W, FMA>(band_rows, panel, k)
        };
        for (r, &or) in band_out.iter().enumerate() {
            out_chunk[or * n + j0..or * n + j0 + w].copy_from_slice(&acc[r][..w]);
        }
    }
}

/// AVX-512 instantiation of the band computation (32-wide panels, FMA).
///
/// # Safety
///
/// Callers must have verified `avx512f` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn compute_band_avx512(
    band_rows: &[&[f32]],
    band_out: &[usize],
    out_chunk: &mut [f32],
    packed: &[f32],
    k: usize,
    n: usize,
) {
    compute_band_impl::<32, true>(band_rows, band_out, out_chunk, packed, k, n);
}

/// AVX2+FMA instantiation of the band computation (16-wide panels, FMA).
///
/// # Safety
///
/// Callers must have verified `avx2` and `fma` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn compute_band_avx2(
    band_rows: &[&[f32]],
    band_out: &[usize],
    out_chunk: &mut [f32],
    packed: &[f32],
    k: usize,
    n: usize,
) {
    compute_band_impl::<16, true>(band_rows, band_out, out_chunk, packed, k, n);
}

/// Dispatches one output band to the widest kernel the CPU supports.
fn compute_band(
    isa: Isa,
    band_rows: &[&[f32]],
    band_out: &[usize],
    out_chunk: &mut [f32],
    packed: &[f32],
    k: usize,
    n: usize,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` is only Avx512/Avx2Fma when `detect_isa` verified
        // the corresponding CPU features at runtime.
        Isa::Avx512 => unsafe { compute_band_avx512(band_rows, band_out, out_chunk, packed, k, n) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` is only Avx2Fma when `detect_isa` verified avx2
        // and fma support at runtime.
        Isa::Avx2Fma => unsafe { compute_band_avx2(band_rows, band_out, out_chunk, packed, k, n) },
        Isa::Portable => {
            compute_band_impl::<8, false>(band_rows, band_out, out_chunk, packed, k, n)
        }
    }
}

/// Shared implementation of the dense and row-masked tiled GEMM.
///
/// Dimensions are taken from the already-validated operands: `a` is
/// `[m, k]`, `b` is `[k, n]`, and `out` has `m·n` elements.
fn gemm_tiled(
    a: &Tensor,
    b: &Tensor,
    row_mask: Option<&[bool]>,
    out: &mut [f32],
    scratch: &mut Scratch,
) {
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let n = b.shape().dims()[1];
    let (av, bv) = (a.as_slice(), b.as_slice());
    if m == 0 || n == 0 {
        return;
    }
    let isa = detect_isa();
    let nr = panel_width(isa);
    let n_panels = n.div_ceil(nr);
    let macs = m as u64 * k as u64 * n as u64;
    let parallel = macs >= PAR_MIN_MACS;
    let packed = scratch.packed_b(n_panels * k * nr);
    pack_b(bv, k, n, nr, parallel, packed);
    let packed: &[f32] = packed;

    let band = |g: usize, out_chunk: &mut [f32]| {
        let i0 = g * MR;
        let rows_here = out_chunk.len() / n;
        let mut band_rows: [&[f32]; MR] = [&[]; MR];
        let mut band_out = [0usize; MR];
        let mut kept = 0;
        for r in 0..rows_here {
            let i = i0 + r;
            if row_mask.is_none_or(|mask| mask[i]) {
                band_rows[kept] = &av[i * k..(i + 1) * k];
                band_out[kept] = r;
                kept += 1;
            } else {
                out_chunk[r * n..(r + 1) * n].fill(0.0);
            }
        }
        if kept > 0 {
            compute_band(isa, &band_rows[..kept], &band_out[..kept], out_chunk, packed, k, n);
        }
    };

    defa_parallel::par_chunks_mut_if(parallel, out, MR * n, band);
}

/// Tiled GEMM `C = A · B` with `A: [m, k]`, `B: [k, n]`, writing into a
/// caller-provided output tensor using a caller-provided [`Scratch`] arena
/// — zero allocations in steady state.
///
/// `out` is resized (allocation reused when possible) to `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
pub fn matmul_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    scratch: &mut Scratch,
) -> Result<(), TensorError> {
    let (m, _, n) = check_dims(a, b, "matmul_into")?;
    out.resize_reuse([m, n]);
    gemm_tiled(a, b, None, out.as_mut_slice(), scratch);
    Ok(())
}

/// Tiled, row-parallel GEMM: `C = A · B` with `A: [m, k]`, `B: [k, n]`.
///
/// Packing buffers come from a thread-local [`Scratch`] arena, so repeated
/// calls allocate only the output tensor. Use [`matmul_into`] to eliminate
/// that allocation too.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
///
/// # Example
///
/// ```
/// use defa_tensor::{Tensor, matmul::matmul};
///
/// # fn main() -> Result<(), defa_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2])?;
/// let b = Tensor::from_vec(vec![3.0, 4.0], [2, 1])?;
/// assert_eq!(matmul(&a, &b)?.as_slice(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, _, n) = check_dims(a, b, "matmul")?;
    let mut out = Tensor::zeros([m, n]);
    with_thread_scratch(|scratch| {
        gemm_tiled(a, b, None, out.as_mut_slice(), scratch);
    });
    Ok(out)
}

/// Row-masked GEMM: rows of `a` where `row_mask` is `false` are skipped and
/// the corresponding output rows stay zero.
///
/// This models the effect of FWP/PAP masking on the linear projections: the
/// accelerator never reads masked rows, so neither do we. Kept rows run
/// through the same tiled, row-parallel micro-kernel as [`matmul`], so
/// masked projections produce *identical* bits to the dense kernel on the
/// surviving rows.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the mask length differs from
/// the row count of `a`, or on inner-dimension mismatch.
pub fn matmul_row_masked(a: &Tensor, b: &Tensor, row_mask: &[bool]) -> Result<Tensor, TensorError> {
    let mut out = Tensor::zeros([0]);
    with_thread_scratch(|scratch| matmul_row_masked_scratch(a, b, row_mask, &mut out, scratch))?;
    Ok(out)
}

/// [`matmul_row_masked`] with caller-provided output and scratch — zero
/// allocations in steady state.
///
/// # Errors
///
/// Same conditions as [`matmul_row_masked`].
pub fn matmul_row_masked_into(
    a: &Tensor,
    b: &Tensor,
    row_mask: &[bool],
    out: &mut Tensor,
    scratch: &mut Scratch,
) -> Result<(), TensorError> {
    matmul_row_masked_scratch(a, b, row_mask, out, scratch)
}

fn matmul_row_masked_scratch(
    a: &Tensor,
    b: &Tensor,
    row_mask: &[bool],
    out: &mut Tensor,
    scratch: &mut Scratch,
) -> Result<(), TensorError> {
    let (m, _, n) = check_dims(a, b, "matmul_row_masked")?;
    if row_mask.len() != m {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_row_masked",
            lhs: format!("[{m} rows]"),
            rhs: format!("[{} mask bits]", row_mask.len()),
        });
    }
    out.resize_reuse([m, n]);
    gemm_tiled(a, b, Some(row_mask), out.as_mut_slice(), scratch);
    Ok(())
}

/// Number of multiply–accumulate operations performed by a dense `[m,k]·[k,n]`
/// product.
pub fn gemm_macs(m: usize, k: usize, n: usize) -> u64 {
    m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn tiled_matches_naive_on_random_inputs() {
        let mut rng = TensorRng::seed_from(7);
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 2), (4, 8, 8), (65, 70, 67), (128, 64, 33), (7, 1, 9), (2, 130, 5)]
        {
            let a = rng.uniform([m, k], -1.0, 1.0);
            let b = rng.uniform([k, n], -1.0, 1.0);
            let fast = matmul(&a, &b).unwrap();
            let gold = matmul_naive(&a, &b).unwrap();
            let err = fast.relative_l2_error(&gold).unwrap();
            assert!(err < 1e-5, "({m},{k},{n}) err={err}");
        }
    }

    #[test]
    fn blocked_baseline_matches_naive() {
        let mut rng = TensorRng::seed_from(8);
        let a = rng.uniform([65, 70], -1.0, 1.0);
        let b = rng.uniform([70, 67], -1.0, 1.0);
        let blocked = matmul_blocked(&a, &b).unwrap();
        let gold = matmul_naive(&a, &b).unwrap();
        assert!(blocked.relative_l2_error(&gold).unwrap() < 1e-5);
    }

    #[test]
    fn tiled_is_thread_count_invariant() {
        let mut rng = TensorRng::seed_from(21);
        let a = rng.uniform([131, 67], -1.0, 1.0);
        let b = rng.uniform([67, 59], -1.0, 1.0);
        let multi = defa_parallel::with_num_threads(4, || matmul(&a, &b).unwrap());
        let single = defa_parallel::with_num_threads(1, || matmul(&a, &b).unwrap());
        assert_eq!(multi, single, "parallel GEMM must be bit-identical");
    }

    #[test]
    fn into_variant_reuses_buffers() {
        let mut rng = TensorRng::seed_from(31);
        let a = rng.uniform([16, 24], -1.0, 1.0);
        let b = rng.uniform([24, 10], -1.0, 1.0);
        let mut scratch = Scratch::new();
        let mut out = Tensor::zeros([1]);
        matmul_into(&a, &b, &mut out, &mut scratch).unwrap();
        assert_eq!(out.shape().dims(), &[16, 10]);
        let gold = matmul_naive(&a, &b).unwrap();
        assert!(out.relative_l2_error(&gold).unwrap() < 1e-5);
        // Second call with identical shapes must not grow the arena.
        let cap = scratch.capacity();
        matmul_into(&a, &b, &mut out, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::seed_from(3);
        let a = rng.uniform([4, 4], -2.0, 2.0);
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        assert!(c.relative_l2_error(&a).unwrap() < 1e-7);
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn rejects_non_matrix_operands() {
        let a = Tensor::zeros([6]);
        let b = Tensor::zeros([6, 1]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn row_masked_skips_rows() {
        let mut rng = TensorRng::seed_from(11);
        let a = rng.uniform([4, 3], -1.0, 1.0);
        let b = rng.uniform([3, 2], -1.0, 1.0);
        let mask = vec![true, false, true, false];
        let masked = matmul_row_masked(&a, &b, &mask).unwrap();
        let full = matmul(&a, &b).unwrap();
        for (r, &keep) in mask.iter().enumerate() {
            if keep {
                assert_eq!(masked.row(r).unwrap(), full.row(r).unwrap());
            } else {
                assert!(masked.row(r).unwrap().iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn row_masked_matches_dense_on_kept_rows_at_scale() {
        let mut rng = TensorRng::seed_from(12);
        let a = rng.uniform([93, 41], -1.0, 1.0);
        let b = rng.uniform([41, 57], -1.0, 1.0);
        let mask: Vec<bool> = (0..93).map(|i| i % 3 != 1).collect();
        let masked = matmul_row_masked(&a, &b, &mask).unwrap();
        let full = matmul(&a, &b).unwrap();
        for (r, &keep) in mask.iter().enumerate() {
            if keep {
                assert_eq!(masked.row(r).unwrap(), full.row(r).unwrap(), "row {r}");
            } else {
                assert!(masked.row(r).unwrap().iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn row_masked_into_zeroes_stale_rows() {
        let mut rng = TensorRng::seed_from(13);
        let a = rng.uniform([8, 5], -1.0, 1.0);
        let b = rng.uniform([5, 6], -1.0, 1.0);
        let mut out = Tensor::full([8, 6], 7.0);
        let mut scratch = Scratch::new();
        let mask = vec![false; 8];
        matmul_row_masked_into(&a, &b, &mask, &mut out, &mut scratch).unwrap();
        assert_eq!(out.max_abs(), 0.0);
    }

    #[test]
    fn row_masked_validates_mask_length() {
        let a = Tensor::zeros([4, 3]);
        let b = Tensor::zeros([3, 2]);
        assert!(matmul_row_masked(&a, &b, &[true; 3]).is_err());
    }

    #[test]
    fn gemm_macs_counts() {
        assert_eq!(gemm_macs(2, 3, 4), 24);
    }
}
