//! Matrix multiplication kernels.
//!
//! The functional reference model multiplies large activation matrices
//! (`Q·Wᴬ`, `Q·Wˢ`, `X·Wᵥ`), so a cache-blocked kernel is provided alongside
//! a naive one used as a golden reference in tests.

use crate::{Tensor, TensorError};

/// Block edge used by [`matmul`]. 64×64 f32 blocks fit comfortably in L1/L2.
const BLOCK: usize = 64;

fn check_dims(a: &Tensor, b: &Tensor, op: &'static str) -> Result<(usize, usize, usize), TensorError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: format!("{}", a.shape()),
            rhs: format!("{}", b.shape()),
        });
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: format!("{}", a.shape()),
            rhs: format!("{}", b.shape()),
        });
    }
    Ok((m, k, n))
}

/// Naive triple-loop GEMM, kept as the golden reference for tests.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_dims(a, b, "matmul_naive")?;
    let mut out = Tensor::zeros([m, n]);
    let (av, bv, ov) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == 0.0 {
                continue;
            }
            for j in 0..n {
                ov[i * n + j] += aip * bv[p * n + j];
            }
        }
    }
    Ok(out)
}

/// Cache-blocked GEMM: `C = A · B` with `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
///
/// # Example
///
/// ```
/// use defa_tensor::{Tensor, matmul::matmul};
///
/// # fn main() -> Result<(), defa_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2])?;
/// let b = Tensor::from_vec(vec![3.0, 4.0], [2, 1])?;
/// assert_eq!(matmul(&a, &b)?.as_slice(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_dims(a, b, "matmul")?;
    let mut out = Tensor::zeros([m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let aip = av[i * k + p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &bv[p * n + j0..p * n + j1];
                        let orow = &mut ov[i * n + j0..i * n + j1];
                        for (o, &bx) in orow.iter_mut().zip(brow) {
                            *o += aip * bx;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Row-masked GEMM: rows of `a` where `row_mask` is `false` are skipped and
/// the corresponding output rows stay zero.
///
/// This models the effect of FWP/PAP masking on the linear projections: the
/// accelerator never reads masked rows, so neither do we.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the mask length differs from
/// the row count of `a`, or on inner-dimension mismatch.
pub fn matmul_row_masked(
    a: &Tensor,
    b: &Tensor,
    row_mask: &[bool],
) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_dims(a, b, "matmul_row_masked")?;
    if row_mask.len() != m {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_row_masked",
            lhs: format!("[{m} rows]"),
            rhs: format!("[{} mask bits]", row_mask.len()),
        });
    }
    let mut out = Tensor::zeros([m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i in 0..m {
        if !row_mask[i] {
            continue;
        }
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == 0.0 {
                continue;
            }
            for j in 0..n {
                ov[i * n + j] += aip * bv[p * n + j];
            }
        }
    }
    Ok(out)
}

/// Number of multiply–accumulate operations performed by a dense `[m,k]·[k,n]`
/// product.
pub fn gemm_macs(m: usize, k: usize, n: usize) -> u64 {
    m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn blocked_matches_naive_on_random_inputs() {
        let mut rng = TensorRng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (65, 70, 67), (128, 64, 33)] {
            let a = rng.uniform([m, k], -1.0, 1.0);
            let b = rng.uniform([k, n], -1.0, 1.0);
            let fast = matmul(&a, &b).unwrap();
            let gold = matmul_naive(&a, &b).unwrap();
            let err = fast.relative_l2_error(&gold).unwrap();
            assert!(err < 1e-5, "({m},{k},{n}) err={err}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::seed_from(3);
        let a = rng.uniform([4, 4], -2.0, 2.0);
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        assert!(c.relative_l2_error(&a).unwrap() < 1e-7);
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn rejects_non_matrix_operands() {
        let a = Tensor::zeros([6]);
        let b = Tensor::zeros([6, 1]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn row_masked_skips_rows() {
        let mut rng = TensorRng::seed_from(11);
        let a = rng.uniform([4, 3], -1.0, 1.0);
        let b = rng.uniform([3, 2], -1.0, 1.0);
        let mask = vec![true, false, true, false];
        let masked = matmul_row_masked(&a, &b, &mask).unwrap();
        let full = matmul(&a, &b).unwrap();
        for r in 0..4 {
            if mask[r] {
                assert_eq!(masked.row(r).unwrap(), full.row(r).unwrap());
            } else {
                assert!(masked.row(r).unwrap().iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn row_masked_validates_mask_length() {
        let a = Tensor::zeros([4, 3]);
        let b = Tensor::zeros([3, 2]);
        assert!(matmul_row_masked(&a, &b, &[true; 3]).is_err());
    }

    #[test]
    fn gemm_macs_counts() {
        assert_eq!(gemm_macs(2, 3, 4), 24);
    }
}
