//! Integer linear algebra on quantized tensors.
//!
//! The DEFA datapath is INT12 end to end: activations and weights enter the
//! PE array as integer codes and accumulate in wide registers. This module
//! provides the integer GEMM the hardware actually performs, so the
//! simulator can be checked bit-for-bit against a software integer
//! reference rather than only against fake-quantized `f32`.

use crate::{QTensor, QuantParams, Tensor, TensorError};

/// Integer GEMM: multiplies two quantized matrices with `i64` accumulation
/// and returns the result as `f32` (`acc · scale_a · scale_b`), plus the
/// raw accumulators.
///
/// This mirrors the hardware exactly: INT12 × INT12 products accumulated
/// in a wide register, with one combined scale applied at the output.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
pub fn matmul_q(a: &QTensor, b: &QTensor) -> Result<(Tensor, Vec<i64>), TensorError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_q",
            lhs: format!("{}", a.shape()),
            rhs: format!("{}", b.shape()),
        });
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_q",
            lhs: format!("{}", a.shape()),
            rhs: format!("{}", b.shape()),
        });
    }
    let (ac, bc) = (a.codes(), b.codes());
    let mut acc = vec![0i64; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = ac[i * k + p] as i64;
            if aip == 0 {
                continue;
            }
            for j in 0..n {
                acc[i * n + j] += aip * bc[p * n + j] as i64;
            }
        }
    }
    let scale = a.params().scale() * b.params().scale();
    let data = acc.iter().map(|&v| v as f32 * scale).collect();
    Ok((Tensor::from_vec(data, [m, n])?, acc))
}

/// Maximum possible accumulator magnitude of a `k`-deep INT-`bits` dot
/// product — used to size the hardware accumulator register.
pub fn accumulator_bound(k: usize, bits: u8) -> i64 {
    let qmax = (1i64 << (bits - 1)) - 1;
    let qmin = 1i64 << (bits - 1);
    k as i64 * qmin * qmax.max(qmin)
}

/// Bits needed for a signed accumulator holding `accumulator_bound`.
pub fn accumulator_bits(k: usize, bits: u8) -> u32 {
    let bound = accumulator_bound(k, bits).unsigned_abs();
    64 - bound.leading_zeros() + 1
}

/// Quantizes both operands with fitted symmetric scales and multiplies in
/// the integer domain.
///
/// # Errors
///
/// Propagates quantizer-fit and shape errors.
pub fn quantized_matmul(a: &Tensor, b: &Tensor, bits: u8) -> Result<Tensor, TensorError> {
    let qa = QuantParams::fit(a, bits)?.quantize(a);
    let qb = QuantParams::fit(b, bits)?.quantize(b);
    Ok(matmul_q(&qa, &qb)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;
    use crate::rng::TensorRng;

    #[test]
    fn integer_gemm_tracks_float_gemm() {
        let mut rng = TensorRng::seed_from(5);
        let a = rng.uniform([20, 16], -1.0, 1.0);
        let b = rng.uniform([16, 12], -1.0, 1.0);
        let exact = matmul(&a, &b).unwrap();
        let q = quantized_matmul(&a, &b, 12).unwrap();
        let err = q.relative_l2_error(&exact).unwrap();
        assert!(err < 5e-3, "INT12 GEMM error {err}");
    }

    #[test]
    fn int8_is_coarser_than_int12() {
        let mut rng = TensorRng::seed_from(6);
        let a = rng.uniform([16, 16], -1.0, 1.0);
        let b = rng.uniform([16, 16], -1.0, 1.0);
        let exact = matmul(&a, &b).unwrap();
        let e12 = quantized_matmul(&a, &b, 12).unwrap().relative_l2_error(&exact).unwrap();
        let e8 = quantized_matmul(&a, &b, 8).unwrap().relative_l2_error(&exact).unwrap();
        assert!(e8 > e12 * 4.0, "e8={e8} e12={e12}");
    }

    #[test]
    fn integer_gemm_is_exact_in_the_integer_domain() {
        // Values already on the quantization grid multiply exactly.
        let pa = QuantParams::new(1.0, 12).unwrap();
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let qa = pa.quantize(&a);
        let (out, acc) = matmul_q(&qa, &qa).unwrap();
        assert_eq!(acc, vec![7, 10, 15, 22]);
        assert_eq!(out.as_slice(), &[7.0, 10.0, 15.0, 22.0]);
    }

    #[test]
    fn accumulator_sizing_matches_depth() {
        // 256-deep INT12: |acc| <= 256 * 2048 * 2047 < 2^31.
        assert!(accumulator_bound(256, 12) < (1i64 << 31));
        assert!(accumulator_bits(256, 12) <= 32);
        // One-deep INT12 product needs 24 bits.
        assert!(accumulator_bits(1, 12) <= 24);
        // Deeper accumulations need more bits.
        assert!(accumulator_bits(4096, 12) > accumulator_bits(16, 12));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let p = QuantParams::new(1.0, 12).unwrap();
        let a = p.quantize(&Tensor::zeros([2, 3]));
        let b = p.quantize(&Tensor::zeros([2, 3]));
        assert!(matmul_q(&a, &b).is_err());
        let v = p.quantize(&Tensor::zeros([3]));
        assert!(matmul_q(&v, &b).is_err());
    }
}
