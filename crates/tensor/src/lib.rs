//! Dense tensor substrate for the DEFA reproduction.
//!
//! This crate provides the numerical foundation used by every other crate in
//! the workspace:
//!
//! * [`Shape`] / [`Tensor`] — a small row-major dense tensor over `f32`,
//!   sufficient for the matrices that appear in multi-scale deformable
//!   attention (queries, weights, feature maps, probabilities).
//! * [`matmul`] — GEMM kernels used by the functional reference model and
//!   by the accelerator's matrix-mode golden checks: a register-tiled,
//!   row-parallel production kernel plus the naive golden reference and
//!   the original blocked kernel as benchmark baseline.
//! * [`scratch`] — a reusable [`Scratch`] arena so the hot kernels stop
//!   allocating per call.
//! * [`softmax`] — numerically stable softmax over the trailing axis.
//! * [`quant`] — symmetric fixed-point quantization (the paper quantizes the
//!   MSDeformAttn modules to INT12) with round-trip helpers.
//! * [`fixed`] — an integer fixed-point scalar type used by the cycle-level
//!   datapath models in `defa-arch`.
//! * [`rng`] — deterministic random tensor generation for synthetic
//!   workloads.
//!
//! # Example
//!
//! ```
//! use defa_tensor::{Tensor, matmul::matmul, softmax::softmax_rows};
//!
//! # fn main() -> Result<(), defa_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! let p = softmax_rows(&c)?;
//! assert!((p.row(0)?.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod fixed;
pub mod matmul;
pub mod qlinear;
pub mod quant;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod softmax;
pub mod tensor;

pub use error::TensorError;
pub use fixed::Fixed;
pub use quant::{QTensor, QuantParams};
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;
