//! Numerically stable softmax.

use crate::{Tensor, TensorError};

/// Softmax over a single slice, in place.
///
/// Uses the max-subtraction trick for numerical stability. An empty slice is
/// a no-op.
pub fn softmax_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Softmax over one slice, returning a new vector.
pub fn softmax(row: &[f32]) -> Vec<f32> {
    let mut out = row.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Row-wise softmax of a rank-2 tensor.
///
/// Each row is normalized independently, matching the per-query
/// normalization of the `N_l·N_p` attention logits in MSDeformAttn.
///
/// # Errors
///
/// Returns [`TensorError::InvalidAxis`] for tensors that are not rank 2.
pub fn softmax_rows(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.shape().rank() != 2 {
        return Err(TensorError::InvalidAxis { axis: 1, rank: t.shape().rank() });
    }
    let mut out = t.clone();
    let rows = out.shape().dims()[0];
    for r in 0..rows {
        softmax_inplace(out.row_mut(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let t = Tensor::from_fn_2d(3, 5, |r, c| (r as f32) - (c as f32) * 0.3);
        let p = softmax_rows(&t).unwrap();
        for r in 0..3 {
            let s: f32 = p.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn probabilities_are_positive_and_ordered() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!(p.iter().all(|&x| x > 0.0));
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn stable_under_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let p = softmax(&[0.5; 8]);
        for &x in &p {
            assert!((x - 0.125).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_row_is_noop() {
        let mut row: [f32; 0] = [];
        softmax_inplace(&mut row);
    }

    #[test]
    fn rejects_rank_one_tensor() {
        let t = Tensor::zeros([4]);
        assert!(softmax_rows(&t).is_err());
    }

    #[test]
    fn dominant_logit_takes_almost_all_mass() {
        let p = softmax(&[10.0, 0.0, 0.0]);
        assert!(p[0] > 0.99);
    }
}
