//! A small row-major dense `f32` tensor.

use crate::{Shape, TensorError};

/// Dense row-major tensor over `f32`.
///
/// [`Tensor`] deliberately supports only the operations the DEFA workloads
/// need: construction, element access, row views for rank-2 tensors and a few
/// elementwise reductions. Matrix multiplication lives in
/// [`crate::matmul`] and softmax in [`crate::softmax`].
///
/// # Example
///
/// ```
/// use defa_tensor::Tensor;
///
/// # fn main() -> Result<(), defa_tensor::TensorError> {
/// let t = Tensor::zeros([2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.as_slice().len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-2 tensor by evaluating `f(row, col)`.
    pub fn from_fn_2d(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { shape: Shape::from([rows, cols]), data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor to `shape`, reusing the existing allocation
    /// when it is large enough.
    ///
    /// Contents after the call are unspecified (kernels that fully
    /// overwrite their output use this to recycle buffers); growing the
    /// buffer zero-fills the new tail.
    pub fn resize_reuse(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.data.resize(shape.volume(), 0.0);
        self.shape = shape;
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Borrowed view of row `r` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] for tensors that are not rank 2
    /// and [`TensorError::IndexOutOfBounds`] if the row is out of range.
    pub fn row(&self, r: usize) -> Result<&[f32], TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: self.shape.rank() });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds { index: r, len: rows });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Mutable view of row `r` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::row`].
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32], TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: self.shape.rank() });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds { index: r, len: rows });
        }
        Ok(&mut self.data[r * cols..(r + 1) * cols])
    }

    /// Largest absolute element, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm (square root of the sum of squares).
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Relative L2 error of `self` against a reference tensor.
    ///
    /// Defined as `||self − reference||₂ / max(||reference||₂, ε)`, the
    /// fidelity metric used by the accuracy-proxy experiments.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn relative_l2_error(&self, reference: &Tensor) -> Result<f32, TensorError> {
        if self.shape != reference.shape {
            return Err(TensorError::ShapeMismatch {
                op: "relative_l2_error",
                lhs: format!("{}", self.shape),
                rhs: format!("{}", reference.shape),
            });
        }
        let mut diff_sq = 0.0f64;
        for (&a, &b) in self.data.iter().zip(&reference.data) {
            let d = (a - b) as f64;
            diff_sq += d * d;
        }
        let denom = (reference.frob_norm() as f64).max(1e-12);
        Ok((diff_sq.sqrt() / denom) as f32)
    }

    /// Elementwise in-place scaling.
    pub fn scale(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: format!("{}", self.shape),
                rhs: format!("{}", other.shape),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full_have_expected_contents() {
        let z = Tensor::zeros([2, 2]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full([3], 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_is_identity() {
        let e = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert_eq!(e.get(&[r, c]).unwrap(), expect);
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], [2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], [2, 3]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn row_views_slice_correctly() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]).unwrap();
        assert_eq!(t.row(0).unwrap(), &[0.0, 1.0, 2.0]);
        assert_eq!(t.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn row_rejects_non_matrix() {
        let t = Tensor::zeros([4]);
        assert!(t.row(0).is_err());
    }

    #[test]
    fn relative_l2_error_zero_for_identical() {
        let t = Tensor::from_fn_2d(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(t.relative_l2_error(&t).unwrap(), 0.0);
    }

    #[test]
    fn relative_l2_error_matches_hand_computation() {
        let a = Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 0.0], [2]).unwrap();
        // ||a - b|| = 5, ||b|| = 0 -> clamped denominator keeps it finite.
        assert!(a.relative_l2_error(&b).unwrap().is_finite());
        // And against a nonzero reference:
        let c = Tensor::from_vec(vec![3.0, 0.0], [2]).unwrap();
        let err = a.relative_l2_error(&c).unwrap();
        assert!((err - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::full([2, 2], 1.0);
        let b = Tensor::full([2, 2], 2.0);
        let mut c = a.add(&b).unwrap();
        c.scale(2.0);
        assert!(c.as_slice().iter().all(|&x| x == 6.0));
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn frob_norm_and_max_abs() {
        let t = Tensor::from_vec(vec![3.0, -4.0], [2]).unwrap();
        assert!((t.frob_norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.max_abs(), 4.0);
    }
}
