//! Error types shared by the tensor substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and tensor algebra.
///
/// The `Display` representation is lowercase and concise, following the
/// Rust API guidelines for error types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the length of
    /// the provided buffer.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand side shape rendered as text.
        lhs: String,
        /// Right-hand side shape rendered as text.
        rhs: String,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Axis length the index was checked against.
        len: usize,
    },
    /// A quantization parameter was invalid (e.g. non-positive scale).
    InvalidQuantParams(String),
    /// An axis argument referred to a non-existent axis.
    InvalidAxis {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for axis of length {len}")
            }
            TensorError::InvalidQuantParams(msg) => {
                write!(f, "invalid quantization parameters: {msg}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} invalid for tensor of rank {rank}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::LengthMismatch { expected: 4, actual: 3 };
        let s = err.to_string();
        assert!(s.contains('4') && s.contains('3'));
        assert!(s.chars().next().is_some_and(|c| c.is_lowercase()));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn shape_mismatch_mentions_operation() {
        let err =
            TensorError::ShapeMismatch { op: "matmul", lhs: "[2, 3]".into(), rhs: "[4, 5]".into() };
        assert!(err.to_string().contains("matmul"));
    }
}
