//! Reusable scratch memory for the compute kernels.
//!
//! The hot path of the pruned-encoder pipeline calls GEMM several times per
//! block; without an arena every call would heap-allocate a packed-panel
//! buffer (and, for `_into` callers, an output tensor). [`Scratch`] owns
//! those buffers and hands out resized views, so steady-state kernel calls
//! perform **zero** allocations once the high-water mark is reached.
//!
//! Kernels that keep the allocating convenience signature (e.g.
//! [`crate::matmul::matmul`]) draw from a thread-local `Scratch` instead,
//! which amortizes the same way across repeated calls on one thread.

use std::cell::RefCell;

/// Arena of reusable `f32` buffers for GEMM packing and kernel staging.
///
/// # Example
///
/// ```
/// use defa_tensor::{Scratch, Tensor, matmul::matmul_into};
///
/// # fn main() -> Result<(), defa_tensor::TensorError> {
/// let mut scratch = Scratch::new();
/// let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2])?;
/// let b = Tensor::from_vec(vec![3.0, 4.0], [2, 1])?;
/// let mut out = Tensor::zeros([1, 1]);
/// matmul_into(&a, &b, &mut out, &mut scratch)?;
/// assert_eq!(out.as_slice(), &[11.0]);
/// // Subsequent same-shape calls reuse every buffer.
/// matmul_into(&a, &b, &mut out, &mut scratch)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    packed_b: Vec<f32>,
}

impl Scratch {
    /// Creates an empty arena; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// A packed-operand buffer of exactly `len` elements.
    ///
    /// Contents are **unspecified** (stale data from earlier calls) —
    /// packing fully overwrites the buffer, including zero-padding ragged
    /// panel tails, so re-zeroing here would be a redundant memset on the
    /// hot path. The buffer keeps its high-water-mark capacity between
    /// calls, so steady-state use never reallocates.
    pub(crate) fn packed_b(&mut self, len: usize) -> &mut [f32] {
        if self.packed_b.len() < len {
            self.packed_b.resize(len, 0.0);
        }
        &mut self.packed_b[..len]
    }

    /// Current capacity of the packing buffer in elements (its allocation
    /// high-water mark).
    pub fn capacity(&self) -> usize {
        self.packed_b.capacity()
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's shared [`Scratch`] arena.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    TLS_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_without_reallocation() {
        let mut s = Scratch::new();
        {
            let b = s.packed_b(16);
            assert_eq!(b.len(), 16);
            b[3] = 5.0;
        }
        // Shrinking or same-size requests reuse the allocation (contents
        // unspecified — callers fully overwrite).
        let cap = s.capacity();
        let b = s.packed_b(8);
        assert_eq!(b.len(), 8);
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn thread_scratch_is_reentrant_per_call() {
        let cap = with_thread_scratch(|s| {
            s.packed_b(1024);
            s.capacity()
        });
        assert!(cap >= 1024);
        // Second borrow sees the same arena.
        let cap2 = with_thread_scratch(|s| s.capacity());
        assert_eq!(cap, cap2);
    }
}
