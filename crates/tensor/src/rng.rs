//! Deterministic random tensor generation.
//!
//! Every synthetic workload in the workspace is seeded, so experiments are
//! exactly reproducible run to run. [`TensorRng`] wraps a small, fast PRNG
//! (xoshiro256++, seeded via SplitMix64 — self-contained so the workspace
//! builds without the `rand` crate) and offers the distributions the
//! workload generator needs: uniform, Gaussian (Box–Muller), and a
//! heavy-tailed "popularity" distribution used to emulate the non-uniform
//! pixel-access statistics the paper observes.

use crate::{Shape, Tensor};

/// One SplitMix64 step from `state`: adds the golden-gamma increment and
/// applies the finalizer (public domain construction by Steele et al.).
///
/// This doubles as the workspace's keyed hash — callers that need a
/// deterministic, well-mixed value per `(seed, index)` pair fold the key
/// into `state` and take one step, without carrying generator state.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state (<https://prng.di.unimi.it/>), public domain
/// construction by Blackman & Vigna.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into full state with SplitMix64, the
    /// recommended seeding procedure for the xoshiro family.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            let out = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            out
        };
        Xoshiro256pp { s: [next(), next(), next(), next()] }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeded random generator producing tensors and common scalar draws.
///
/// # Example
///
/// ```
/// use defa_tensor::rng::TensorRng;
///
/// let mut rng = TensorRng::seed_from(1);
/// let t = rng.uniform([2, 2], 0.0, 1.0);
/// assert!(t.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: Xoshiro256pp,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng { rng: Xoshiro256pp::seed_from_u64(seed) }
    }

    /// Uniform scalar in `[lo, hi)`.
    pub fn uniform_value(&mut self, lo: f32, hi: f32) -> f32 {
        let v = lo + (hi - lo) * self.rng.next_f32();
        // Float rounding can land exactly on `hi`; fold back to keep the
        // half-open contract.
        if v < hi || hi <= lo {
            v
        } else {
            lo
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        (self.rng.next_u64() % n as u64) as usize
    }

    /// Standard normal scalar via Box–Muller.
    pub fn normal_value(&mut self) -> f32 {
        let u1 = self.rng.next_f32().max(f32::EPSILON);
        let u2 = self.rng.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Tensor of i.i.d. uniform values in `[lo, hi)`.
    pub fn uniform(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.volume()).map(|_| self.uniform_value(lo, hi)).collect();
        Tensor::from_vec(data, shape).expect("volume matches by construction")
    }

    /// Tensor of i.i.d. `N(mean, std²)` values.
    pub fn normal(&mut self, shape: impl Into<Shape>, mean: f32, std: f32) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.volume()).map(|_| mean + std * self.normal_value()).collect();
        Tensor::from_vec(data, shape).expect("volume matches by construction")
    }

    /// Draws from a Zipf-like popularity distribution over `n` items with
    /// exponent `s > 0`: item `k` has weight `(k+1)^-s`.
    ///
    /// The paper observes that "a small proportion of pixels has a much
    /// higher probability of being accessed" (§3.1); sampling targets drawn
    /// from this distribution reproduce that skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    pub fn zipf_index(&mut self, n: usize, s: f32) -> usize {
        assert!(n > 0, "zipf over empty support");
        assert!(s > 0.0, "zipf exponent must be positive");
        // Inverse-CDF on the normalized weights. n is at most a few
        // thousand per fmap level, so a linear scan is fine.
        let total: f64 = (1..=n).map(|k| (k as f64).powf(-s as f64)).sum();
        let mut u = self.rng.next_f64() * total;
        for k in 0..n {
            let w = ((k + 1) as f64).powf(-s as f64);
            if u < w {
                return k;
            }
            u -= w;
        }
        n - 1
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.rng.next_f32() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(99);
        let mut b = TensorRng::seed_from(99);
        assert_eq!(a.uniform([8], 0.0, 1.0), b.uniform([8], 0.0, 1.0));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        assert_ne!(a.uniform([8], 0.0, 1.0), b.uniform([8], 0.0, 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(5);
        let t = rng.uniform([1000], -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = TensorRng::seed_from(7);
        let t = rng.normal([10_000], 1.0, 2.0);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / 10_000.0;
        let var: f32 =
            t.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = TensorRng::seed_from(11);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[rng.zipf_index(100, 1.0)] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(head > tail * 5, "head={head} tail={tail}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut rng = TensorRng::seed_from(13);
        for _ in 0..1000 {
            assert!(rng.zipf_index(7, 1.2) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = TensorRng::seed_from(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn index_covers_range() {
        let mut rng = TensorRng::seed_from(19);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
