//! End-to-end accelerator runs: functional pruning + cycle/energy model.

use crate::dataflow::{simulate_block, BlockPruning};
use crate::msgs::{MsgsEngine, MsgsSettings, MsgsStats};
use crate::report::RunReport;
use crate::trace::StageCycles;
use crate::CoreError;
use defa_arch::area::SramInventory;
use defa_arch::maskgen::FREQ_COUNTER_BITS;
use defa_arch::{AreaModel, EnergyModel, EventCounters, PeArray, CLOCK_HZ, PRECISION_BITS};
use defa_model::encoder::run_encoder_from;
use defa_model::flops::BlockFlops;
use defa_model::workload::SyntheticWorkload;
use defa_model::MsdaConfig;
use defa_prune::pipeline::{run_pruned_encoder_observed_from, PruneSettings};
use defa_prune::RangeConfig;

/// A hardware run plus the functional output it computed.
///
/// [`DefaAccelerator::run_workload_from`] returns both so serving callers
/// can account cycles *and* hand the features back as the response without
/// re-running the functional pipeline.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The cycle/energy/area report.
    pub report: RunReport,
    /// Final features of the pruned functional run.
    pub final_features: defa_tensor::Tensor,
}

/// The simulated DEFA instance: feature switches plus technology models.
#[derive(Debug, Clone)]
pub struct DefaAccelerator {
    /// MSGS engine configuration (mapping, fusion, reuse).
    pub msgs: MsgsSettings,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Area constants.
    pub area: AreaModel,
    /// PE array size.
    pub pe: PeArray,
    /// Whether to also evaluate the exact encoder for a fidelity number
    /// (doubles the functional work; on by default).
    pub measure_fidelity: bool,
}

impl DefaAccelerator {
    /// The paper's design point: inter-level parallelism, operator fusion,
    /// fmap reuse, 16×16 PE array, 40 nm constants.
    pub fn paper_default() -> Self {
        DefaAccelerator {
            msgs: MsgsSettings::paper_default(),
            energy: EnergyModel::forty_nm(),
            area: AreaModel::forty_nm(),
            pe: PeArray::new(),
            measure_fidelity: true,
        }
    }

    /// On-chip SRAM inventory for a model configuration (documented in
    /// DESIGN.md; drives the area model).
    ///
    /// * MSGS row buffers: double-buffered, per-head channels
    ///   (`D_h · 12 b`) of every level's bounded rows.
    /// * Weight buffer: double-buffered 16-column weight tiles.
    /// * Activation staging: one 16-query tile of Q plus its logits/probs.
    /// * Masks: fmap mask + one query tile's point masks.
    /// * FWP counters: one per pixel.
    pub fn sram_inventory(cfg: &MsdaConfig) -> SramInventory {
        let ranges = RangeConfig::paper_defaults(cfg);
        let dh = cfg.head_dim() as u64;
        let d = cfg.d_model as u64;
        let n = cfg.n_in() as u64;
        let ppq = cfg.points_per_query() as u64;
        SramInventory {
            msgs_buffer_bits: 2 * ranges.storage_pixels(cfg) * dh * PRECISION_BITS,
            weight_buffer_bits: 2 * d * 16 * PRECISION_BITS,
            activation_buffer_bits: 16 * (d + 2 * ppq) * PRECISION_BITS,
            mask_bits: n + 16 * ppq,
            counter_bits: n * FREQ_COUNTER_BITS,
        }
    }

    /// Runs a benchmark workload end to end.
    ///
    /// The functional pruned pipeline executes every block; each block's
    /// intermediates drive the cycle-level simulation via the observer
    /// hook, so the hardware sees the *actual* masks, sampling locations
    /// and conflicts of that workload.
    ///
    /// # Errors
    ///
    /// Propagates functional-model and hardware-model failures.
    pub fn run_workload(
        &self,
        wl: &SyntheticWorkload,
        prune: &PruneSettings,
    ) -> Result<RunReport, CoreError> {
        self.run_workload_from(wl, wl.initial_fmap(), prune).map(|run| run.report)
    }

    /// [`DefaAccelerator::run_workload`] over a caller-provided initial
    /// feature pyramid, also returning the functional output.
    ///
    /// This is the serving entry point: one workload (weights, warp) is
    /// shared by a stream of requests, each contributing its own backbone
    /// features, and the caller gets both the hardware report and the
    /// final features the accelerator computed for that request.
    ///
    /// # Errors
    ///
    /// Propagates functional-model and hardware-model failures.
    pub fn run_workload_from(
        &self,
        wl: &SyntheticWorkload,
        initial: &defa_model::FmapPyramid,
        prune: &PruneSettings,
    ) -> Result<WorkloadRun, CoreError> {
        let cfg = wl.config();
        let engine = MsgsEngine::new(cfg, self.msgs)?;
        let pe = self.pe;
        let flops = BlockFlops::for_config(cfg);

        let mut counters = EventCounters::new();
        let mut msgs_total = MsgsStats::default();
        let mut stages_total = StageCycles::default();
        let mut sim_error: Option<CoreError> = None;

        let run = run_pruned_encoder_observed_from(wl, prune, initial, |_k, out, info| {
            if sim_error.is_some() {
                return;
            }
            let pruning = BlockPruning {
                point_keep: info.point_mask.keep_fraction(),
                pixel_keep: info.fmap_mask.keep_fraction(),
            };
            match simulate_block(
                cfg,
                &engine,
                &pe,
                &out.locations,
                info.point_mask.as_bools(),
                pruning,
                &mut counters,
            ) {
                Ok((stats, stages)) => {
                    stages_total += stages;
                    msgs_total.groups += stats.groups;
                    msgs_total.points += stats.points;
                    msgs_total.cycles += stats.cycles;
                    msgs_total.conflicts += stats.conflicts;
                    msgs_total.fmap_fetch_bits += stats.fmap_fetch_bits;
                    msgs_total.spill_bits += stats.spill_bits;
                }
                Err(e) => sim_error = Some(e),
            }
        })?;
        if let Some(e) = sim_error {
            return Err(e);
        }

        let fidelity_error = if self.measure_fidelity {
            let exact = run_encoder_from(wl, initial)?;
            Some(
                run.final_features
                    .relative_l2_error(&exact.final_features)
                    .map_err(defa_model::ModelError::from)?,
            )
        } else {
            None
        };

        let energy = self.energy.price(&counters);
        let area = self.area.price(&Self::sram_inventory(cfg), &self.pe);
        let report = RunReport {
            benchmark: wl.benchmark(),
            counters,
            msgs: msgs_total,
            energy,
            area,
            reduction: run.stats,
            stages: stages_total,
            fidelity_error,
            dense_flops: flops.attention_only() * cfg.n_layers as u64,
            clock_hz: CLOCK_HZ,
        };
        Ok(WorkloadRun { report, final_features: run.final_features })
    }

    /// Runs a decoder workload (cross-attention over a fixed encoder
    /// memory) on the hardware model — the extension beyond the paper's
    /// encoder-only evaluation (§5.1.1).
    ///
    /// PAP masks are generated per decoder layer from the cross-attention
    /// probabilities; FWP propagates memory masks between decoder layers
    /// from the sampled frequencies, exactly as in the encoder schedule.
    ///
    /// # Errors
    ///
    /// Propagates functional and hardware failures.
    pub fn run_decoder_workload(
        &self,
        dec: &defa_model::decoder::DecoderWorkload,
        memory: &defa_model::FmapPyramid,
        prune: &PruneSettings,
    ) -> Result<RunReport, CoreError> {
        use defa_prune::fwp::SampleFrequency;
        use defa_prune::pap::point_mask;
        use defa_prune::BitMask;

        let first = dec
            .layers()
            .first()
            .ok_or_else(|| CoreError::Inconsistent("decoder workload has no layers".into()))?;
        let cfg = first.inner().config().clone();
        let nq = first.n_queries();
        let ppq = cfg.points_per_query();
        let engine = MsgsEngine::new(&cfg, self.msgs)?;

        let mut counters = EventCounters::new();
        let mut msgs_total = MsgsStats::default();
        let mut stages_total = StageCycles::default();
        let mut reduction = defa_prune::ReductionStats::new();
        let flops = BlockFlops::for_config(&cfg);

        let mut q = dec.initial_queries().clone();
        let mut memory_mask = BitMask::keep_all(cfg.n_in());
        for layer in dec.layers() {
            let out = layer.forward(&q, memory, Some(memory_mask.as_bools()), None)?;
            let pmask = match prune.pap {
                Some(pap) => point_mask(&out.probs, pap)?,
                None => BitMask::keep_all(nq * ppq),
            };
            let pruning = crate::dataflow::BlockPruning {
                point_keep: pmask.keep_fraction(),
                pixel_keep: memory_mask.keep_fraction(),
            };
            let (stats, stages) = crate::dataflow::simulate_cross_block(
                &cfg,
                nq,
                &engine,
                &self.pe,
                &out.locations,
                pmask.as_bools(),
                pruning,
                &mut counters,
            )?;
            stages_total += stages;
            msgs_total.groups += stats.groups;
            msgs_total.points += stats.points;
            msgs_total.cycles += stats.cycles;
            msgs_total.conflicts += stats.conflicts;
            msgs_total.fmap_fetch_bits += stats.fmap_fetch_bits;
            msgs_total.spill_bits += stats.spill_bits;

            reduction.record_block(
                &flops,
                (nq * ppq) as u64,
                pmask.kept() as u64,
                cfg.n_in() as u64,
                memory_mask.kept() as u64,
                prune.fwp.is_some(),
                0,
                1.0,
            );

            if let Some(fwp) = prune.fwp {
                let mut freq = SampleFrequency::new(&cfg)?;
                freq.record_all(&cfg, &out.locations, Some(pmask.as_bools()))?;
                memory_mask = freq.fmap_mask(fwp)?;
            }
            q = defa_model::encoder::block_update(&q, &out.output)?;
        }

        let energy = self.energy.price(&counters);
        let area = self.area.price(&Self::sram_inventory(&cfg), &self.pe);
        Ok(RunReport {
            benchmark: defa_model::workload::Benchmark::DeformableDetr,
            counters,
            msgs: msgs_total,
            energy,
            area,
            reduction,
            stages: stages_total,
            fidelity_error: None,
            dense_flops: flops.attention_only() * dec.layers().len() as u64,
            clock_hz: CLOCK_HZ,
        })
    }
}

impl Default for DefaAccelerator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_arch::BankMapping;
    use defa_model::workload::Benchmark;

    fn tiny_run(msgs: MsgsSettings, prune: &PruneSettings) -> RunReport {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 5).unwrap();
        let accel = DefaAccelerator { msgs, ..DefaAccelerator::paper_default() };
        accel.run_workload(&wl, prune).unwrap()
    }

    #[test]
    fn paper_config_produces_complete_report() {
        let r = tiny_run(MsgsSettings::paper_default(), &PruneSettings::paper_defaults());
        assert!(r.counters.total_cycles() > 0);
        assert!(r.energy.total_pj() > 0.0);
        assert!(r.area.total_mm2() > 0.0);
        assert!(r.fidelity_error.is_some());
        assert!(r.fps() > 0.0);
        assert_eq!(r.counters.bank_conflicts, 0, "inter-level must be conflict-free");
    }

    #[test]
    fn pruning_makes_runs_faster_and_cheaper() {
        let pruned = tiny_run(MsgsSettings::paper_default(), &PruneSettings::paper_defaults());
        let dense = tiny_run(MsgsSettings::paper_default(), &PruneSettings::disabled());
        assert!(pruned.counters.total_cycles() < dense.counters.total_cycles());
        assert!(pruned.energy.total_pj() < dense.energy.total_pj());
    }

    #[test]
    fn intra_level_mapping_is_slower() {
        let inter = tiny_run(MsgsSettings::paper_default(), &PruneSettings::disabled());
        let intra = tiny_run(
            MsgsSettings { mapping: BankMapping::IntraLevel, ..MsgsSettings::paper_default() },
            &PruneSettings::disabled(),
        );
        assert!(intra.msgs.cycles > inter.msgs.cycles);
        assert!(intra.counters.bank_conflicts > 0);
    }

    #[test]
    fn fusion_and_reuse_save_energy() {
        let full = tiny_run(MsgsSettings::paper_default(), &PruneSettings::paper_defaults());
        let unfused = tiny_run(
            MsgsSettings { fused: false, ..MsgsSettings::paper_default() },
            &PruneSettings::paper_defaults(),
        );
        let no_reuse = tiny_run(
            MsgsSettings { fmap_reuse: false, ..MsgsSettings::paper_default() },
            &PruneSettings::paper_defaults(),
        );
        assert!(unfused.energy.total_pj() > full.energy.total_pj());
        assert!(no_reuse.energy.total_pj() > full.energy.total_pj());
    }

    #[test]
    fn sram_inventory_scales_with_config() {
        let tiny = DefaAccelerator::sram_inventory(&MsdaConfig::tiny());
        let full = DefaAccelerator::sram_inventory(&MsdaConfig::full());
        assert!(full.total_bits() > tiny.total_bits());
        // Paper-scale inventory should be in the hundreds-of-KiB range.
        let kib = full.total_kib();
        assert!(kib > 100.0 && kib < 2048.0, "inventory {kib} KiB");
    }

    #[test]
    fn run_workload_from_returns_matching_features() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 5).unwrap();
        let accel = DefaAccelerator::paper_default();
        let run = accel
            .run_workload_from(&wl, wl.initial_fmap(), &PruneSettings::paper_defaults())
            .unwrap();
        let plain = accel.run_workload(&wl, &PruneSettings::paper_defaults()).unwrap();
        assert_eq!(format!("{:?}", run.report), format!("{plain:?}"));
        assert_eq!(run.final_features.shape().dims(), &[cfg.n_in(), cfg.d_model]);
        // A different initial pyramid changes the simulated activity.
        let gen = defa_model::RequestGenerator::new(
            vec![defa_model::RequestScenario::from_workload(wl.clone())],
            2,
        )
        .unwrap();
        let other = accel
            .run_workload_from(&wl, &gen.request(1).fmap, &PruneSettings::paper_defaults())
            .unwrap();
        assert_ne!(other.final_features, run.final_features);
    }

    #[test]
    fn fidelity_can_be_disabled() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::Dino, &cfg, 9).unwrap();
        let accel = DefaAccelerator { measure_fidelity: false, ..DefaAccelerator::paper_default() };
        let r = accel.run_workload(&wl, &PruneSettings::paper_defaults()).unwrap();
        assert!(r.fidelity_error.is_none());
    }

    #[test]
    fn decoder_workload_runs_on_hardware() {
        use defa_model::decoder::{DecoderConfig, DecoderWorkload};
        let cfg = MsdaConfig::tiny();
        let enc = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 4).unwrap();
        let dec =
            DecoderWorkload::generate(Benchmark::DeformableDetr, &cfg, DecoderConfig::tiny(), 4)
                .unwrap();
        let accel = DefaAccelerator::paper_default();
        let report = accel
            .run_decoder_workload(&dec, enc.initial_fmap(), &PruneSettings::paper_defaults())
            .unwrap();
        assert!(report.counters.total_cycles() > 0);
        assert_eq!(report.counters.bank_conflicts, 0);
        assert!(report.reduction.point_reduction() > 0.3);
        // The decoder is much cheaper than the encoder: far fewer queries.
        let enc_report = accel.run_workload(&enc, &PruneSettings::paper_defaults()).unwrap();
        assert!(report.msgs.points < enc_report.msgs.points);
    }
}
