//! One MSDeformAttn block on the DEFA hardware (§4.1 dataflow).
//!
//! The paper rearranges the block so both masks act before the heavy work:
//!
//! 1. `Q·Wᴬ` (MM mode) → softmax unit → **point mask** (PAP);
//! 2. masked `ΔP = Q·Wˢ` (MM mode);
//! 3. `V = X·Wᵥ` under the previous block's **fmap mask** (MM mode), with
//!    the compression unit shrinking the masked DRAM traffic;
//! 4. fused MSGS + aggregation (BA mode) while the fmap mask generator
//!    counts frequencies for the next block.
//!
//! DRAM transfers overlap with compute; only the excess shows up as stall
//! cycles.

use crate::msgs::{MsgsEngine, MsgsStats};
use crate::trace::StageCycles;
use crate::CoreError;
use defa_arch::compress::compressed_bits;
use defa_arch::maskgen::{FmapMaskGenerator, PointMaskGenerator};
use defa_arch::softmax_unit::SoftmaxUnit;
use defa_arch::{Dram, EventCounters, PeArray, PRECISION_BITS};
use defa_model::{MsdaConfig, SamplePoint};

/// Pruning fractions steering one block's simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPruning {
    /// Fraction of sampling points surviving PAP.
    pub point_keep: f64,
    /// Fraction of fmap pixels surviving FWP (this block's input mask).
    pub pixel_keep: f64,
}

impl BlockPruning {
    /// No pruning.
    pub fn dense() -> Self {
        BlockPruning { point_keep: 1.0, pixel_keep: 1.0 }
    }
}

/// Simulates one block, returning the MSGS statistics and the per-stage
/// cycle timeline.
///
/// `locations`/`keep` describe the block's sampling points after range
/// clamping; `pruning` carries the keep fractions for the matrix stages.
/// The dominant stage-4 sampling pipeline is simulated query-tile-parallel
/// inside [`MsgsEngine::run_block`] with a deterministic reduction, so the
/// returned stats and counters are identical for any thread count.
///
/// # Errors
///
/// Propagates engine errors; returns [`CoreError::Inconsistent`] on length
/// mismatches.
pub fn simulate_block(
    cfg: &MsdaConfig,
    engine: &MsgsEngine,
    pe: &PeArray,
    locations: &[SamplePoint],
    keep: &[bool],
    pruning: BlockPruning,
    counters: &mut EventCounters,
) -> Result<(MsgsStats, StageCycles), CoreError> {
    let mut stages = StageCycles::default();
    let n = cfg.n_in() as u64;
    let d = cfg.d_model as u64;
    let ppq = cfg.points_per_query() as u64;
    let softmax = SoftmaxUnit::new();
    let mut dram = Dram::hbm2();
    let start = *counters;

    // ---- DRAM input streams -------------------------------------------
    // Weights for the three projections. The weight buffer holds one
    // 16-column tile (reused across all N_in rows), so each weight matrix
    // streams exactly once per block.
    let weight_bits = (d * ppq + d * 2 * ppq + d * d) * PRECISION_BITS;
    dram.read(weight_bits);
    // Input features: X (N_in × D at INT12 ≈ megabytes) exceeds on-chip
    // capacity, so the output-stationary MM re-streams it once per
    // 16-column output tile — the "large data transfer in MM" that makes
    // DRAM dominate the paper's energy breakdown (Fig. 8). The value
    // projection streams only FWP-surviving rows, compressed (mask +
    // payload) by the compression unit.
    let kept_pixels = (n as f64 * pruning.pixel_keep).round() as u64;
    // The activation re-stream granularity: the weight buffer holds two
    // 16-column tiles, so X streams once per 32 output columns.
    let tile = 32u64;
    let x_row_bits = n * d * PRECISION_BITS;
    // Stage-1 stream: attention-logit projection reads all rows.
    dram.read(x_row_bits * ppq.div_ceil(tile));
    // Stage-2 stream: offset projection; PAP prunes output columns, which
    // skips whole tiles in proportion.
    let offset_tiles = ((2 * ppq).div_ceil(tile) as f64 * pruning.point_keep).ceil() as u64;
    dram.read(x_row_bits * offset_tiles.max(1));
    // Stage-3 stream: value projection reads surviving rows per tile.
    let x_masked_bits = compressed_bits(n, kept_pixels * d, PRECISION_BITS);
    dram.read(x_masked_bits * d.div_ceil(tile));

    // ---- Stage 1: attention logits + softmax + PAP ----------------------
    let mm1 = n * d * ppq;
    stages.attn_proj = pe.run_matmul(mm1, counters);
    counters.sram_read_bits += (n * d * ppq.div_ceil(tile) + d * ppq) * PRECISION_BITS;
    counters.sram_write_bits += (n * d * ppq.div_ceil(tile) + n * ppq) * PRECISION_BITS;
    stages.softmax = softmax.run(n * ppq, counters);
    PointMaskGenerator::new().run(n * ppq, counters);

    // ---- Stage 2: masked sampling offsets -------------------------------
    let mm2 = ((n * d * 2 * ppq) as f64 * pruning.point_keep).round() as u64;
    stages.offset_proj = pe.run_matmul(mm2, counters);
    counters.sram_read_bits += (n * d * offset_tiles.max(1) + d * 2 * ppq) * PRECISION_BITS;
    counters.sram_write_bits += (n * d * offset_tiles.max(1)) * PRECISION_BITS
        + ((n * 2 * ppq) as f64 * pruning.point_keep).round() as u64 * PRECISION_BITS;

    // ---- Stage 3: masked value projection -------------------------------
    let mm3 = ((n * d * d) as f64 * pruning.pixel_keep).round() as u64;
    stages.value_proj = pe.run_matmul(mm3, counters);
    counters.sram_read_bits += (kept_pixels * d * d.div_ceil(tile) + d * d) * PRECISION_BITS;
    counters.sram_write_bits += (kept_pixels * d * (d.div_ceil(tile) + 1)) * PRECISION_BITS;
    // V spills to DRAM for the MSGS sweep (it exceeds on-chip capacity).
    dram.write(kept_pixels * d * PRECISION_BITS);

    // ---- Stage 4: fused MSGS + aggregation + FWP ------------------------
    let stats = engine.run_block(locations, keep, pruning.pixel_keep, counters)?;
    FmapMaskGenerator::new().run(4 * stats.points, n, counters);

    // ---- DRAM overlap ----------------------------------------------------
    let transfer_cycles = dram.read_bits().div_ceil(dram.bits_per_cycle())
        + dram.write_bits().div_ceil(dram.bits_per_cycle());
    let compute_cycles = (counters.mm_cycles - start.mm_cycles)
        + (counters.msgs_cycles - start.msgs_cycles)
        + (counters.softmax_cycles - start.softmax_cycles);
    stages.dram_stall = transfer_cycles.saturating_sub(compute_cycles);
    counters.dram_stall_cycles += stages.dram_stall;
    stages.msgs = stats.cycles + (counters.conflict_stall_cycles - start.conflict_stall_cycles);
    dram.drain_into(counters);
    Ok((stats, stages))
}

/// Simulates one *decoder* cross-attention block: `n_queries` object
/// queries sample the `cfg`-shaped encoder memory.
///
/// The Q-side stages (logit/offset projections, softmax) scale with the
/// query count, while the value projection and fmap traffic scale with the
/// memory — the reason decoder MSDeformAttn is far cheaper than encoder
/// self-attention despite the identical operator.
///
/// # Errors
///
/// Propagates engine errors; returns [`CoreError::Inconsistent`] on length
/// mismatches.
#[allow(clippy::too_many_arguments)] // mirrors simulate_block plus the query count
pub fn simulate_cross_block(
    cfg: &MsdaConfig,
    n_queries: usize,
    engine: &MsgsEngine,
    pe: &PeArray,
    locations: &[SamplePoint],
    keep: &[bool],
    pruning: BlockPruning,
    counters: &mut EventCounters,
) -> Result<(MsgsStats, StageCycles), CoreError> {
    let mut stages = StageCycles::default();
    let nq = n_queries as u64;
    let nmem = cfg.n_in() as u64;
    let d = cfg.d_model as u64;
    let ppq = cfg.points_per_query() as u64;
    if locations.len() != n_queries * ppq as usize {
        return Err(CoreError::Inconsistent(format!(
            "{} locations for {} queries x {ppq} points",
            locations.len(),
            n_queries
        )));
    }
    let softmax = SoftmaxUnit::new();
    let mut dram = Dram::hbm2();
    let start = *counters;

    // Weights stream once; queries are small enough to stay resident, so
    // only the memory re-streams per value-projection tile.
    let weight_bits = (d * ppq + d * 2 * ppq + d * d) * PRECISION_BITS;
    dram.read(weight_bits);
    let tile = 32u64;
    let kept_pixels = (nmem as f64 * pruning.pixel_keep).round() as u64;
    dram.read(nq * d * PRECISION_BITS); // queries, once
    let x_masked_bits = compressed_bits(nmem, kept_pixels * d, PRECISION_BITS);
    dram.read(x_masked_bits * d.div_ceil(tile));

    // Stage 1: logits + softmax + PAP over the query set.
    stages.attn_proj = pe.run_matmul(nq * d * ppq, counters);
    counters.sram_read_bits += (nq * d + d * ppq) * PRECISION_BITS;
    counters.sram_write_bits += nq * ppq * PRECISION_BITS;
    stages.softmax = softmax.run(nq * ppq, counters);
    PointMaskGenerator::new().run(nq * ppq, counters);

    // Stage 2: masked offsets.
    let mm2 = ((nq * d * 2 * ppq) as f64 * pruning.point_keep).round() as u64;
    stages.offset_proj = pe.run_matmul(mm2, counters);
    counters.sram_read_bits += nq * d * PRECISION_BITS;
    counters.sram_write_bits +=
        ((nq * 2 * ppq) as f64 * pruning.point_keep).round() as u64 * PRECISION_BITS;

    // Stage 3: masked value projection of the *memory*.
    let mm3 = ((nmem * d * d) as f64 * pruning.pixel_keep).round() as u64;
    stages.value_proj = pe.run_matmul(mm3, counters);
    counters.sram_read_bits += (kept_pixels * d * d.div_ceil(tile) + d * d) * PRECISION_BITS;
    counters.sram_write_bits += kept_pixels * d * PRECISION_BITS;
    dram.write(kept_pixels * d * PRECISION_BITS);

    // Stage 4: fused MSGS + aggregation over the query samples.
    let stats = engine.run_block(locations, keep, pruning.pixel_keep, counters)?;
    FmapMaskGenerator::new().run(4 * stats.points, nmem, counters);

    let transfer_cycles = dram.read_bits().div_ceil(dram.bits_per_cycle())
        + dram.write_bits().div_ceil(dram.bits_per_cycle());
    let compute_cycles = (counters.mm_cycles - start.mm_cycles)
        + (counters.msgs_cycles - start.msgs_cycles)
        + (counters.softmax_cycles - start.softmax_cycles);
    stages.dram_stall = transfer_cycles.saturating_sub(compute_cycles);
    counters.dram_stall_cycles += stages.dram_stall;
    stages.msgs = stats.cycles + (counters.conflict_stall_cycles - start.conflict_stall_cycles);
    dram.drain_into(counters);
    Ok((stats, stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::MsgsSettings;
    use defa_model::workload::{Benchmark, SyntheticWorkload};

    fn setup(cfg: &MsdaConfig) -> (MsgsEngine, Vec<SamplePoint>, Vec<bool>) {
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, cfg, 1).unwrap();
        let out = wl.layer(0).unwrap().forward(wl.initial_fmap(), Some(wl.warp())).unwrap();
        let keep = vec![true; out.locations.len()];
        let engine = MsgsEngine::new(cfg, MsgsSettings::paper_default()).unwrap();
        (engine, out.locations, keep)
    }

    #[test]
    fn dense_block_accumulates_all_stages() {
        let cfg = MsdaConfig::tiny();
        let (engine, locs, keep) = setup(&cfg);
        let mut c = EventCounters::new();
        let (stats, stages) = simulate_block(
            &cfg,
            &engine,
            &PeArray::new(),
            &locs,
            &keep,
            BlockPruning::dense(),
            &mut c,
        )
        .unwrap();
        assert!(stages.total() > 0);
        assert!(stages.attn_proj > 0 && stages.msgs > 0);
        assert!(c.mm_macs > 0);
        assert!(c.msgs_cycles > 0);
        assert!(c.softmax_elems > 0);
        assert!(c.dram_bits() > 0);
        assert!(stats.points > 0);
    }

    #[test]
    fn pruning_reduces_macs_and_traffic() {
        let cfg = MsdaConfig::tiny();
        let (engine, locs, keep) = setup(&cfg);
        let mut dense = EventCounters::new();
        simulate_block(
            &cfg,
            &engine,
            &PeArray::new(),
            &locs,
            &keep,
            BlockPruning::dense(),
            &mut dense,
        )
        .unwrap();
        // Prune 84% of points and 43% of pixels.
        let sparse_keep: Vec<bool> = keep.iter().enumerate().map(|(i, _)| i % 6 == 0).collect();
        let mut sparse = EventCounters::new();
        simulate_block(
            &cfg,
            &engine,
            &PeArray::new(),
            &locs,
            &sparse_keep,
            BlockPruning { point_keep: 0.16, pixel_keep: 0.57 },
            &mut sparse,
        )
        .unwrap();
        assert!(sparse.mm_macs < dense.mm_macs);
        assert!(sparse.msgs_cycles < dense.msgs_cycles);
        assert!(sparse.dram_bits() < dense.dram_bits());
    }

    #[test]
    fn stall_cycles_appear_when_memory_bound() {
        // A tiny config is heavily memory bound (little compute to hide
        // the weight streaming behind).
        let cfg = MsdaConfig::tiny();
        let (engine, locs, keep) = setup(&cfg);
        let mut c = EventCounters::new();
        simulate_block(&cfg, &engine, &PeArray::new(), &locs, &keep, BlockPruning::dense(), &mut c)
            .unwrap();
        // Either stalls exist or compute fully hides the traffic; both are
        // legal, but total cycles must dominate pure-MM cycles.
        assert!(c.total_cycles() >= c.mm_cycles);
    }
}
