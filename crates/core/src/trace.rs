//! Per-stage execution timeline of the DEFA dataflow.
//!
//! The §4.1 schedule has five phases per block; this module records where
//! the cycles went, giving the utilization view an architect would pull
//! from a waveform: which stage bounds the block, and how much DRAM time
//! the compute failed to hide.

use std::fmt;
use std::ops::AddAssign;

/// Cycles spent per dataflow stage (one block, or summed over a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCycles {
    /// Stage 1: `Q·Wᴬ` matrix multiply.
    pub attn_proj: u64,
    /// Stage 1b: softmax + PAP mask generation.
    pub softmax: u64,
    /// Stage 2: masked offset projection.
    pub offset_proj: u64,
    /// Stage 3: masked value projection.
    pub value_proj: u64,
    /// Stage 4: fused MSGS + aggregation (BA mode).
    pub msgs: u64,
    /// DRAM transfer cycles that compute could not hide.
    pub dram_stall: u64,
}

impl StageCycles {
    /// Total cycles across stages.
    pub fn total(&self) -> u64 {
        self.attn_proj
            + self.softmax
            + self.offset_proj
            + self.value_proj
            + self.msgs
            + self.dram_stall
    }

    /// The stage with the most cycles, as `(name, cycles)`.
    pub fn bottleneck(&self) -> (&'static str, u64) {
        let entries = [
            ("attn_proj", self.attn_proj),
            ("softmax", self.softmax),
            ("offset_proj", self.offset_proj),
            ("value_proj", self.value_proj),
            ("msgs", self.msgs),
            ("dram_stall", self.dram_stall),
        ];
        // Last max wins on ties, matching `max_by_key`, without an
        // Option to unwrap on this provably non-empty array.
        let mut best = entries[0];
        for e in entries {
            if e.1 >= best.1 {
                best = e;
            }
        }
        best
    }

    /// Fraction of cycles in MSGS + aggregation — the quantity DEFA's
    /// architecture drives down from the GPU's 60 %+ (Fig. 1(b)).
    pub fn msgs_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.msgs as f64 / t as f64
        }
    }
}

impl AddAssign for StageCycles {
    fn add_assign(&mut self, rhs: Self) {
        self.attn_proj += rhs.attn_proj;
        self.softmax += rhs.softmax;
        self.offset_proj += rhs.offset_proj;
        self.value_proj += rhs.value_proj;
        self.msgs += rhs.msgs;
        self.dram_stall += rhs.dram_stall;
    }
}

impl fmt::Display for StageCycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total().max(1) as f64;
        writeln!(f, "stage cycles:")?;
        for (name, c) in [
            ("Q*Wa projection", self.attn_proj),
            ("softmax + PAP", self.softmax),
            ("offset projection", self.offset_proj),
            ("value projection", self.value_proj),
            ("MSGS + aggregation", self.msgs),
            ("DRAM stall", self.dram_stall),
        ] {
            writeln!(f, "  {name:<20} {c:>12}  ({:>5.1}%)", c as f64 / t * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_bottleneck() {
        let s = StageCycles {
            attn_proj: 10,
            softmax: 1,
            offset_proj: 5,
            value_proj: 20,
            msgs: 8,
            dram_stall: 2,
        };
        assert_eq!(s.total(), 46);
        assert_eq!(s.bottleneck(), ("value_proj", 20));
        assert!((s.msgs_fraction() - 8.0 / 46.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = StageCycles { msgs: 5, ..Default::default() };
        a += StageCycles { msgs: 7, dram_stall: 1, ..Default::default() };
        assert_eq!(a.msgs, 12);
        assert_eq!(a.dram_stall, 1);
    }

    #[test]
    fn display_shows_every_stage() {
        let s = StageCycles { attn_proj: 100, ..Default::default() };
        let text = s.to_string();
        for key in ["projection", "softmax", "MSGS", "DRAM"] {
            assert!(text.contains(key), "missing {key}");
        }
    }

    #[test]
    fn empty_timeline_is_safe() {
        let s = StageCycles::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.msgs_fraction(), 0.0);
    }
}
