//! DEFA: the accelerator top level.
//!
//! This crate assembles the algorithm layer (`defa-model`, `defa-prune`)
//! and the hardware layer (`defa-arch`) into the full accelerator of the
//! paper:
//!
//! * [`msgs`] — the multi-scale grid-sampling engine: schedules sampling
//!   points into 4-point groups under either intra-level or inter-level
//!   parallelism (§4.2) and accounts bank conflicts, fetch cycles and
//!   memory traffic, with fine-grained operator fusion (§4.3) and fmap
//!   reuse (§4.1) as togglable features.
//! * [`dataflow`] — one MSDeformAttn block on the hardware: the rearranged
//!   operator schedule of §4.1 (probabilities → PAP → masked offsets →
//!   FWP-masked value projection → fused MSGS + aggregation).
//! * [`runner`] — end-to-end execution of a benchmark workload, combining
//!   the functional pruned pipeline with the cycle/energy model.
//! * [`report`] — performance, energy and area reports.
//!
//! # Example
//!
//! ```
//! use defa_core::runner::DefaAccelerator;
//! use defa_model::{MsdaConfig, workload::{Benchmark, SyntheticWorkload}};
//! use defa_prune::pipeline::PruneSettings;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MsdaConfig::tiny();
//! let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 7)?;
//! let accel = DefaAccelerator::paper_default();
//! let report = accel.run_workload(&wl, &PruneSettings::paper_defaults())?;
//! assert!(report.counters.total_cycles() > 0);
//! # Ok(())
//! # }
//! ```

pub mod dataflow;
pub mod error;
pub mod msgs;
pub mod report;
pub mod runner;
pub mod trace;

pub use error::CoreError;
pub use msgs::{MsgsEngine, MsgsSettings, MsgsStats};
pub use report::RunReport;
pub use runner::DefaAccelerator;
pub use trace::StageCycles;
