//! Performance, energy and area reports for accelerator runs.

use crate::msgs::MsgsStats;
use crate::trace::StageCycles;
use defa_arch::{AreaBreakdown, EnergyBreakdown, EventCounters, CLOCK_HZ};
use defa_model::workload::Benchmark;
use defa_prune::ReductionStats;
use std::fmt;

/// The result of running one benchmark workload through the accelerator.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// Aggregate hardware activity.
    pub counters: EventCounters,
    /// Aggregate MSGS statistics.
    pub msgs: MsgsStats,
    /// Energy split by component.
    pub energy: EnergyBreakdown,
    /// Core area of the simulated design.
    pub area: AreaBreakdown,
    /// Algorithm-level pruning statistics.
    pub reduction: ReductionStats,
    /// Per-stage cycle timeline summed over all blocks.
    pub stages: StageCycles,
    /// Relative L2 error of the pruned output vs. the exact encoder
    /// (`None` when the exact reference was not evaluated).
    pub fidelity_error: Option<f32>,
    /// Dense-equivalent attention FLOPs the run completed (the numerator
    /// of effective-throughput metrics, as sparse accelerators report).
    pub dense_flops: u64,
    /// Clock frequency used for time conversion.
    pub clock_hz: u64,
}

impl RunReport {
    /// Wall-clock seconds of the run.
    pub fn seconds(&self) -> f64 {
        self.counters.seconds_at(self.clock_hz)
    }

    /// Encoder inferences per second (0 for an empty run).
    pub fn fps(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            1.0 / s
        }
    }

    /// Effective throughput in GOPS (dense-equivalent work / time; 0 for an
    /// empty run).
    pub fn effective_gops(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.dense_flops as f64 / s / 1e9
        }
    }

    /// Average power in watts (dynamic energy / time; 0 for an empty run —
    /// a zero-cycle run consumed no time, not astronomical power).
    pub fn average_power_w(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.energy.total_joules() / s
        }
    }

    /// Energy efficiency in GOPS/W: work per energy, which both divides the
    /// run's seconds away — so it is defined whenever any energy was spent,
    /// and 0 for a run that spent none.
    pub fn gops_per_watt(&self) -> f64 {
        let joules = self.energy.total_joules();
        if joules == 0.0 {
            0.0
        } else {
            self.dense_flops as f64 / 1e9 / joules
        }
    }

    /// Energy per encoder inference in millijoules.
    pub fn energy_per_run_mj(&self) -> f64 {
        self.energy.total_joules() * 1e3
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DEFA run report — {}", self.benchmark)?;
        writeln!(f, "  cycles          : {}", self.counters.total_cycles())?;
        writeln!(f, "  time            : {:.3} ms", self.seconds() * 1e3)?;
        writeln!(f, "  effective GOPS  : {:.1}", self.effective_gops())?;
        writeln!(f, "  avg power       : {:.1} mW", self.average_power_w() * 1e3)?;
        writeln!(f, "  efficiency      : {:.0} GOPS/W", self.gops_per_watt())?;
        writeln!(f, "  energy          : {:.3} mJ", self.energy_per_run_mj())?;
        let (dram, sram, logic) = self.energy.shares();
        writeln!(
            f,
            "  energy shares   : DRAM {:.1}% / SRAM {:.1}% / logic {:.1}%",
            dram * 100.0,
            sram * 100.0,
            logic * 100.0
        )?;
        writeln!(f, "  core area       : {:.2} mm²", self.area.total_mm2())?;
        writeln!(
            f,
            "  pruning         : points -{:.1}% / pixels -{:.1}% / FLOPs -{:.1}%",
            self.reduction.point_reduction() * 100.0,
            self.reduction.pixel_reduction() * 100.0,
            self.reduction.flop_reduction() * 100.0
        )?;
        if let Some(err) = self.fidelity_error {
            writeln!(f, "  fidelity error  : {err:.4}")?;
        }
        writeln!(f, "  bank conflicts  : {}", self.counters.bank_conflicts)?;
        let (stage, cycles) = self.stages.bottleneck();
        writeln!(
            f,
            "  bottleneck      : {stage} ({:.1}% of cycles); MSGS share {:.1}%",
            cycles as f64 / self.stages.total().max(1) as f64 * 100.0,
            self.stages.msgs_fraction() * 100.0
        )?;
        Ok(())
    }
}

/// A default-clock constructor helper used by the runner.
pub fn paper_clock() -> u64 {
    CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            benchmark: Benchmark::DeformableDetr,
            counters: EventCounters { mm_cycles: 400_000, ..Default::default() },
            msgs: MsgsStats::default(),
            energy: EnergyBreakdown { pe_pj: 1e9, softmax_pj: 0.0, sram_pj: 1e9, dram_pj: 8e9 },
            area: AreaBreakdown { sram_mm2: 1.9, pe_softmax_mm2: 0.6, other_mm2: 0.13 },
            reduction: ReductionStats::default(),
            stages: StageCycles { attn_proj: 100, ..Default::default() },
            fidelity_error: Some(0.1),
            dense_flops: 1_000_000_000,
            clock_hz: 400_000_000,
        }
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let r = dummy();
        assert!((r.seconds() - 1e-3).abs() < 1e-9);
        assert!((r.fps() - 1000.0).abs() < 1.0);
        assert!((r.effective_gops() - 1000.0).abs() < 1.0);
        // 10 mJ over 1 ms = 10 W.
        assert!((r.average_power_w() - 10.0).abs() < 1e-6);
        assert!((r.gops_per_watt() - 100.0).abs() < 0.1);
    }

    #[test]
    fn zero_cycle_run_reports_zero_rates_not_infinities() {
        // Regression: the old `.max(1e-18)` guard made an empty run report
        // ~1e18x inflated power/fps, and gops_per_watt inherited the
        // nonsense. Empty means zero, full stop.
        let r = RunReport {
            counters: EventCounters::default(),
            energy: EnergyBreakdown::default(),
            dense_flops: 0,
            ..dummy()
        };
        assert_eq!(r.seconds(), 0.0);
        assert_eq!(r.fps(), 0.0);
        assert_eq!(r.effective_gops(), 0.0);
        assert_eq!(r.average_power_w(), 0.0);
        assert_eq!(r.gops_per_watt(), 0.0);
        // Zero time but nonzero (e.g. static) energy must still not panic
        // or explode: power is undefined-as-zero, efficiency well-defined.
        let r = RunReport { counters: EventCounters::default(), ..dummy() };
        assert_eq!(r.average_power_w(), 0.0);
        assert!((r.gops_per_watt() - 100.0).abs() < 0.1);
    }

    #[test]
    fn display_mentions_key_sections() {
        let s = dummy().to_string();
        for key in ["cycles", "GOPS", "area", "pruning", "fidelity"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
