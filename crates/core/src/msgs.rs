//! The multi-scale grid-sampling engine.
//!
//! Schedules one block's surviving sampling points onto the BA-mode
//! pipeline. The natural hardware schedule groups the points of one
//! `(query, head)` pair:
//!
//! * **inter-level** (§4.2, Fig. 5b): group `p` holds point `p` of *every*
//!   level — up to 4 points from 4 different levels, whose Neighbor-Window
//!   banks are disjoint by construction → one SRAM service cycle per
//!   channel.
//! * **intra-level** (Fig. 5a): group `l` holds the `N_p` points of level
//!   `l` — same-level footprints collide in the 4×4 interleaving, and each
//!   conflict serializes every channel cycle of the group.
//!
//! The engine also accounts the feature's memory policies: fine-grained
//! operator fusion (sampling values never round-trip through SRAM/DRAM)
//! and fmap reuse (bounded-range row buffers instead of per-query window
//! refetch).

use crate::CoreError;
use defa_arch::{BankMapping, BankedSram, Dram, EventCounters, PeArray, N_BANKS, PRECISION_BITS};
use defa_model::bilinear::Footprint;
use defa_model::{MsdaConfig, SamplePoint};
use defa_prune::RangeConfig;

/// Queries per parallel simulation tile of [`MsgsEngine::run_block`].
///
/// Tiles are simulated concurrently with private SRAM/counter models and
/// reduced in tile order; the value trades scheduling granularity against
/// per-tile setup and does not affect results (which are bit-identical for
/// any tile size or thread count).
const QUERY_TILE: usize = 64;

/// Feature switches of the MSGS engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgsSettings {
    /// Bank mapping / parallelization scheme.
    pub mapping: BankMapping,
    /// Fine-grained operator fusion of MSGS and aggregation (§4.3).
    pub fused: bool,
    /// Fmap reuse between overlapping bounded ranges (§4.1, Fig. 4 right).
    pub fmap_reuse: bool,
}

impl MsgsSettings {
    /// The full DEFA design point.
    pub fn paper_default() -> Self {
        MsgsSettings { mapping: BankMapping::InterLevel, fused: true, fmap_reuse: true }
    }
}

impl Default for MsgsSettings {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Statistics of one MSGS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsgsStats {
    /// Point groups issued to the pipeline.
    pub groups: u64,
    /// Surviving sampling points processed.
    pub points: u64,
    /// Cycles spent in the BA pipeline (including conflict serialization).
    pub cycles: u64,
    /// Bank conflicts observed.
    pub conflicts: u64,
    /// Fmap pixels fetched from DRAM for sampling.
    pub fmap_fetch_bits: u64,
    /// Sampling-value round-trip bits (zero when fused).
    pub spill_bits: u64,
}

impl MsgsStats {
    /// Throughput in points per cycle.
    pub fn points_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.points as f64 / self.cycles as f64
        }
    }
}

/// The grid-sampling engine bound to one configuration.
#[derive(Debug, Clone)]
pub struct MsgsEngine {
    cfg: MsdaConfig,
    ranges: RangeConfig,
    settings: MsgsSettings,
}

impl MsgsEngine {
    /// Creates an engine for a model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if the configuration is invalid.
    pub fn new(cfg: &MsdaConfig, settings: MsgsSettings) -> Result<Self, CoreError> {
        cfg.validate()?;
        Ok(MsgsEngine { ranges: RangeConfig::paper_defaults(cfg), cfg: cfg.clone(), settings })
    }

    /// The engine's settings.
    pub fn settings(&self) -> MsgsSettings {
        self.settings
    }

    /// Simulates one block's MSGS + aggregation.
    ///
    /// `locations` holds all `n_in · points_per_query` sampling points in
    /// layer order; `keep` the PAP survival of each. Counters receive the
    /// cycle and traffic activity; the returned stats summarize the run.
    ///
    /// The sampling-point pipeline is simulated in parallel over
    /// contiguous *query tiles*: each tile accumulates its own
    /// [`MsgsStats`] and [`EventCounters`] against a private
    /// [`BankedSram`] model, and the partial results are reduced in tile
    /// order. Every per-group quantity (service cycles, conflicts,
    /// traffic) depends only on that group's own sampling points, so the
    /// reduction is exact: stats and counters are **bit-identical** to the
    /// sequential simulation for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Inconsistent`] on length mismatches and
    /// [`CoreError::Arch`] if a bank index cannot be computed (more levels
    /// than bank groups in inter-level mode).
    pub fn run_block(
        &self,
        locations: &[SamplePoint],
        keep: &[bool],
        pixel_keep_fraction: f64,
        counters: &mut EventCounters,
    ) -> Result<MsgsStats, CoreError> {
        let cfg = &self.cfg;
        let ppq = cfg.points_per_query();
        if locations.is_empty()
            || !locations.len().is_multiple_of(ppq)
            || keep.len() != locations.len()
        {
            return Err(CoreError::Inconsistent(format!(
                "locations ({}) must be a non-empty multiple of {ppq} and match keep bits ({})",
                locations.len(),
                keep.len()
            )));
        }
        // Queries = N_in for encoder self-attention; the object-query
        // count for decoder cross-attention.
        let n = locations.len() / ppq;

        let word_bits = defa_arch::BA_CHANNELS_PER_BEAT * PRECISION_BITS;
        let dh = cfg.head_dim();

        // --- Sampling-point pipeline (query-tile parallel) ----------------
        let n_tiles = n.div_ceil(QUERY_TILE);
        let tiles = defa_parallel::par_map_collect(n_tiles, |t| {
            let q0 = t * QUERY_TILE;
            let q1 = ((t + 1) * QUERY_TILE).min(n);
            self.run_query_tile(locations, keep, q0, q1)
        });
        let mut stats = MsgsStats::default();
        let mut sram = BankedSram::new(N_BANKS, word_bits)?;
        let mut dram = Dram::hbm2();
        for tile in tiles {
            let (tile_stats, tile_counters) = tile?;
            stats.cycles += tile_stats.cycles;
            stats.groups += tile_stats.groups;
            stats.points += tile_stats.points;
            stats.conflicts += tile_stats.conflicts;
            *counters += tile_counters;
        }

        // --- Fmap fetch traffic (DRAM -> SRAM row buffers) ---------------
        let fetch_bits = self.fmap_fetch_bits(n, keep, pixel_keep_fraction);
        dram.read(fetch_bits);
        sram.write_stream(fetch_bits / word_bits);
        stats.fmap_fetch_bits = fetch_bits;

        // --- Operator fusion --------------------------------------------
        if !self.settings.fused {
            // Sampling values round-trip: SRAM write + DRAM write, then
            // DRAM read + SRAM read before aggregation.
            let bits = stats.points * dh as u64 * PRECISION_BITS;
            sram.write_stream(bits / word_bits);
            sram.read_stream(bits / word_bits);
            dram.write(bits);
            dram.read(bits);
            stats.spill_bits = 2 * bits;
        }

        // --- Aggregated output ------------------------------------------
        let out_bits = (n * cfg.d_model) as u64 * PRECISION_BITS;
        sram.write_stream(out_bits / word_bits);
        dram.write(out_bits);

        sram.drain_into(counters);
        dram.drain_into(counters);
        Ok(stats)
    }

    /// Simulates the BA-pipeline groups of queries `q0..q1` against a
    /// tile-private SRAM model, returning the tile's stats and counter
    /// deltas (SRAM activity already drained into the counters).
    fn run_query_tile(
        &self,
        locations: &[SamplePoint],
        keep: &[bool],
        q0: usize,
        q1: usize,
    ) -> Result<(MsgsStats, EventCounters), CoreError> {
        let cfg = &self.cfg;
        let ppq = cfg.points_per_query();
        let pe = PeArray::new();
        let word_bits = defa_arch::BA_CHANNELS_PER_BEAT * PRECISION_BITS;
        let mut sram = BankedSram::new(N_BANKS, word_bits)?;
        let mut counters = EventCounters::new();
        let mut stats = MsgsStats::default();
        let dh = cfg.head_dim();
        let n_levels = cfg.n_levels();
        let n_points = cfg.n_points;

        // Group points per (query, head): inter-level groups take one point
        // per level; intra-level groups take the N_p points of one level.
        let mut group_banks: Vec<usize> = Vec::with_capacity(4 * N_BANKS);
        for q in q0..q1 {
            for h in 0..cfg.n_heads {
                let base = q * ppq + h * n_levels * n_points;
                let group_count = match self.settings.mapping {
                    BankMapping::InterLevel => n_points,
                    BankMapping::IntraLevel => n_levels,
                };
                for g in 0..group_count {
                    group_banks.clear();
                    let mut pts_in_group = 0usize;
                    let members = match self.settings.mapping {
                        BankMapping::InterLevel => n_levels,
                        BankMapping::IntraLevel => n_points,
                    };
                    for m in 0..members {
                        let slot = match self.settings.mapping {
                            BankMapping::InterLevel => base + m * n_points + g,
                            BankMapping::IntraLevel => base + g * n_points + m,
                        };
                        if !keep[slot] {
                            continue;
                        }
                        let pt = locations[slot];
                        let fp = Footprint::at(pt.x, pt.y);
                        let (y0, x0) = (fp.neighbors[0].y, fp.neighbors[0].x);
                        let banks =
                            self.settings.mapping.footprint_banks(pt.level as usize, y0, x0)?;
                        group_banks.extend_from_slice(&banks);
                        pts_in_group += 1;
                    }
                    if pts_in_group == 0 {
                        continue;
                    }
                    let service = sram.read_group(&group_banks)?;
                    let cycles = pe.run_ba_group(pts_in_group, dh, service, &mut counters);
                    stats.cycles += cycles;
                    stats.groups += 1;
                    stats.points += pts_in_group as u64;
                    // The group's reads repeat every beat; the first beat
                    // was charged by read_group.
                    let beats = (dh as u64).div_ceil(defa_arch::BA_CHANNELS_PER_BEAT);
                    sram.read_stream((beats - 1) * group_banks.len() as u64);
                }
            }
        }
        stats.conflicts = sram.conflicts();
        sram.drain_into(&mut counters);
        Ok((stats, counters))
    }

    /// DRAM bits fetched to feed MSGS with fmap pixels.
    ///
    /// * With fmap reuse, each level keeps a row buffer of its bounded rows
    ///   and sweeps it across the level once per head: every surviving
    ///   pixel channel is fetched once → `kept_pixels · D` channels.
    /// * Without reuse, every query whose level has surviving points
    ///   fetches the fresh bounded-range columns (`window_h` pixels, `D_h`
    ///   channels, per head) because nothing is retained between
    ///   consecutive reference points.
    fn fmap_fetch_bits(&self, n_queries: usize, keep: &[bool], pixel_keep_fraction: f64) -> u64 {
        let cfg = &self.cfg;
        let d = cfg.d_model as u64;
        if self.settings.fmap_reuse {
            // Pixels fetched belong to the *memory*, not the query set.
            let kept_pixels = (cfg.n_in() as f64 * pixel_keep_fraction).round() as u64;
            return kept_pixels * d * PRECISION_BITS;
        }
        let dh = cfg.head_dim() as u64;
        let ppq = cfg.points_per_query();
        let n_points = cfg.n_points;
        let n_levels = cfg.n_levels();
        let mut fetches = 0u64;
        for q in 0..n_queries {
            for h in 0..cfg.n_heads {
                for (l, range) in self.ranges.ranges().iter().enumerate().take(n_levels) {
                    let base = q * ppq + (h * n_levels + l) * n_points;
                    let any = (0..n_points).any(|p| keep[base + p]);
                    if any {
                        let window_h = 2 * range.half_h as u64 + 2;
                        fetches += window_h * dh;
                    }
                }
            }
        }
        fetches * PRECISION_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::workload::{Benchmark, SyntheticWorkload};

    fn block_inputs(cfg: &MsdaConfig, seed: u64) -> (Vec<SamplePoint>, Vec<bool>) {
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, cfg, seed).unwrap();
        let out = wl.layer(0).unwrap().forward(wl.initial_fmap(), Some(wl.warp())).unwrap();
        let keep = vec![true; out.locations.len()];
        (out.locations, keep)
    }

    #[test]
    fn inter_level_is_conflict_free() {
        let cfg = MsdaConfig::small(); // 4 levels
        let (locs, keep) = block_inputs(&cfg, 1);
        let engine = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let mut c = EventCounters::new();
        let stats = engine.run_block(&locs, &keep, 1.0, &mut c).unwrap();
        assert_eq!(stats.conflicts, 0);
        assert_eq!(c.bank_conflicts, 0);
        assert!(stats.points > 0);
    }

    #[test]
    fn intra_level_suffers_conflicts_and_runs_slower() {
        let cfg = MsdaConfig::small();
        let (locs, keep) = block_inputs(&cfg, 2);
        let inter = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let intra = MsgsEngine::new(
            &cfg,
            MsgsSettings { mapping: BankMapping::IntraLevel, ..MsgsSettings::paper_default() },
        )
        .unwrap();
        let mut ci = EventCounters::new();
        let si = inter.run_block(&locs, &keep, 1.0, &mut ci).unwrap();
        let mut ca = EventCounters::new();
        let sa = intra.run_block(&locs, &keep, 1.0, &mut ca).unwrap();
        assert!(sa.conflicts > 0, "intra-level should conflict");
        let boost = sa.cycles as f64 / si.cycles as f64;
        assert!(boost > 1.5, "throughput boost {boost} too small");
    }

    #[test]
    fn fusion_eliminates_spill_traffic() {
        let cfg = MsdaConfig::tiny();
        let (locs, keep) = block_inputs(&cfg, 3);
        let fused = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let unfused =
            MsgsEngine::new(&cfg, MsgsSettings { fused: false, ..MsgsSettings::paper_default() })
                .unwrap();
        let mut cf = EventCounters::new();
        let sf = fused.run_block(&locs, &keep, 1.0, &mut cf).unwrap();
        let mut cu = EventCounters::new();
        let su = unfused.run_block(&locs, &keep, 1.0, &mut cu).unwrap();
        assert_eq!(sf.spill_bits, 0);
        assert!(su.spill_bits > 0);
        assert!(cu.dram_bits() > cf.dram_bits());
        assert!(cu.sram_bits() > cf.sram_bits());
    }

    #[test]
    fn reuse_cuts_fmap_fetch_traffic() {
        let cfg = MsdaConfig::tiny();
        let (locs, keep) = block_inputs(&cfg, 4);
        let reuse = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let no_reuse = MsgsEngine::new(
            &cfg,
            MsgsSettings { fmap_reuse: false, ..MsgsSettings::paper_default() },
        )
        .unwrap();
        let mut cr = EventCounters::new();
        let sr = reuse.run_block(&locs, &keep, 1.0, &mut cr).unwrap();
        let mut cn = EventCounters::new();
        let sn = no_reuse.run_block(&locs, &keep, 1.0, &mut cn).unwrap();
        assert!(
            sn.fmap_fetch_bits > 2 * sr.fmap_fetch_bits,
            "no-reuse {} vs reuse {}",
            sn.fmap_fetch_bits,
            sr.fmap_fetch_bits
        );
    }

    #[test]
    fn pruned_points_are_skipped() {
        let cfg = MsdaConfig::tiny();
        let (locs, _) = block_inputs(&cfg, 5);
        let engine = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let all = vec![true; locs.len()];
        let none = vec![false; locs.len()];
        let mut c1 = EventCounters::new();
        let s_all = engine.run_block(&locs, &all, 1.0, &mut c1).unwrap();
        let mut c2 = EventCounters::new();
        let s_none = engine.run_block(&locs, &none, 1.0, &mut c2).unwrap();
        assert_eq!(s_none.points, 0);
        assert_eq!(s_none.groups, 0);
        assert!(s_all.cycles > s_none.cycles);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let cfg = MsdaConfig::tiny();
        let engine = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let mut c = EventCounters::new();
        assert!(engine.run_block(&[], &[], 1.0, &mut c).is_err());
    }

    #[test]
    fn points_per_cycle_peaks_near_group_parallelism() {
        // With 4 levels, no pruning and conflict-free banking, the engine
        // approaches n_levels points per head_dim-cycle group.
        let cfg = MsdaConfig::small();
        let (locs, keep) = block_inputs(&cfg, 6);
        let engine = MsgsEngine::new(&cfg, MsgsSettings::paper_default()).unwrap();
        let mut c = EventCounters::new();
        let stats = engine.run_block(&locs, &keep, 1.0, &mut c).unwrap();
        let per_group = stats.points as f64 / stats.groups as f64;
        assert!(per_group > 3.9, "avg points per group {per_group}");
    }
}
