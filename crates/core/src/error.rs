//! Error type for the accelerator crate.

use std::error::Error;
use std::fmt;

/// Errors produced while simulating the accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The functional model failed.
    Model(defa_model::ModelError),
    /// The pruning pipeline failed.
    Prune(defa_prune::PruneError),
    /// The hardware model failed.
    Arch(defa_arch::ArchError),
    /// Inconsistent simulation inputs.
    Inconsistent(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Prune(e) => write!(f, "pruning error: {e}"),
            CoreError::Arch(e) => write!(f, "hardware error: {e}"),
            CoreError::Inconsistent(msg) => write!(f, "inconsistent simulation input: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Prune(e) => Some(e),
            CoreError::Arch(e) => Some(e),
            CoreError::Inconsistent(_) => None,
        }
    }
}

impl From<defa_model::ModelError> for CoreError {
    fn from(e: defa_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<defa_prune::PruneError> for CoreError {
    fn from(e: defa_prune::PruneError) -> Self {
        CoreError::Prune(e)
    }
}

impl From<defa_arch::ArchError> for CoreError {
    fn from(e: defa_arch::ArchError) -> Self {
        CoreError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_source() {
        let e: CoreError = defa_arch::ArchError::InvalidParameter("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
