//! Residual MSDeformAttn encoder stack.
//!
//! The Deformable-DETR-family encoders apply MSDeformAttn as self-attention
//! over the flattened pyramid tokens: the output of block *k* (after a
//! residual connection and normalization) becomes the feature map of block
//! *k+1*. This inter-block data dependence is what lets FWP use block *k*'s
//! sampling frequencies to prune block *k+1*'s pixels.

use crate::reference::{LayerMasks, LayerOutput};
use crate::workload::SyntheticWorkload;
use crate::{FmapPyramid, ModelError};
use defa_tensor::Tensor;

/// Applies the residual + RMS-normalization update between encoder blocks.
///
/// Real encoders use LayerNorm; per-token RMS normalization keeps the
/// activation scale stable across blocks (which LayerNorm also does) without
/// learnable parameters, so stacked blocks neither explode nor vanish.
///
/// # Errors
///
/// Returns [`ModelError::Tensor`] if shapes disagree.
pub fn block_update(x: &Tensor, attn_out: &Tensor) -> Result<Tensor, ModelError> {
    let mut next = x.add(attn_out)?;
    let d = next.shape().dims()[1];
    let rows = next.shape().dims()[0];
    for r in 0..rows {
        let row = next.row_mut(r)?;
        let ms: f32 = row.iter().map(|&v| v * v).sum::<f32>() / d as f32;
        let scale = 1.0 / ms.sqrt().max(1e-6);
        for v in row.iter_mut() {
            *v *= scale;
        }
    }
    Ok(next)
}

/// The trace of a full encoder run: every block's intermediates plus the
/// feature pyramid entering each block.
#[derive(Debug, Clone)]
pub struct EncoderTrace {
    /// Per-block layer outputs, in execution order.
    pub blocks: Vec<LayerOutput>,
    /// The final feature tensor after the last residual update.
    pub final_features: Tensor,
}

impl EncoderTrace {
    /// Output tensor of the last block (before the final residual update).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, which `run_encoder` never produces.
    pub fn last_output(&self) -> &Tensor {
        &self.blocks.last().expect("encoder ran at least one block").output
    }
}

/// Runs every block of a workload's encoder exactly (no pruning).
///
/// # Errors
///
/// Propagates shape errors from the layer evaluations.
pub fn run_encoder(wl: &SyntheticWorkload) -> Result<EncoderTrace, ModelError> {
    run_encoder_masked(wl, |_, _| LayerMasks::default())
}

/// [`run_encoder`] over a caller-provided initial feature pyramid.
///
/// The workload contributes weights, reference points and the saliency
/// warp; `initial` replaces the workload's own backbone features. This is
/// the serving entry point: one workload (scenario) handles many requests,
/// each with its own input pyramid.
///
/// # Errors
///
/// Propagates shape errors from the layer evaluations (including a
/// pyramid/configuration mismatch).
pub fn run_encoder_from(
    wl: &SyntheticWorkload,
    initial: &FmapPyramid,
) -> Result<EncoderTrace, ModelError> {
    run_encoder_masked_from(wl, initial, |_, _| LayerMasks::default())
}

/// Runs the encoder, asking `mask_for` for the masks of each block.
///
/// `mask_for(block_index, previous_output)` is called before each block;
/// for block 0 the previous output is `None`. The returned masks must
/// borrow from state owned by the caller (typically mask buffers it updates
/// as blocks complete).
///
/// # Errors
///
/// Propagates shape errors from the layer evaluations.
pub fn run_encoder_masked<'a, F>(
    wl: &SyntheticWorkload,
    mask_for: F,
) -> Result<EncoderTrace, ModelError>
where
    F: FnMut(usize, Option<&LayerOutput>) -> LayerMasks<'a>,
{
    run_encoder_masked_from(wl, wl.initial_fmap(), mask_for)
}

/// [`run_encoder_masked`] over a caller-provided initial feature pyramid.
///
/// # Errors
///
/// Propagates shape errors from the layer evaluations.
pub fn run_encoder_masked_from<'a, F>(
    wl: &SyntheticWorkload,
    initial: &FmapPyramid,
    mut mask_for: F,
) -> Result<EncoderTrace, ModelError>
where
    F: FnMut(usize, Option<&LayerOutput>) -> LayerMasks<'a>,
{
    let cfg = wl.config();
    let mut x = initial.clone();
    let mut blocks: Vec<LayerOutput> = Vec::with_capacity(cfg.n_layers);
    for k in 0..cfg.n_layers {
        let masks = mask_for(k, blocks.last());
        let out = wl.layer(k)?.forward_masked(&x, Some(wl.warp()), &masks)?;
        let next = block_update(x.tensor(), &out.output)?;
        x = FmapPyramid::from_tensor(cfg, next)?;
        blocks.push(out);
    }
    let final_features = x.into_tensor();
    Ok(EncoderTrace { blocks, final_features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Benchmark;
    use crate::MsdaConfig;

    #[test]
    fn trace_has_one_entry_per_block() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 1).unwrap();
        let trace = run_encoder(&wl).unwrap();
        assert_eq!(trace.blocks.len(), cfg.n_layers);
        assert_eq!(trace.final_features.shape().dims(), &[cfg.n_in(), cfg.d_model]);
    }

    #[test]
    fn block_update_normalizes_rows() {
        let x = Tensor::full([3, 4], 2.0);
        let o = Tensor::full([3, 4], 2.0);
        let next = block_update(&x, &o).unwrap();
        for r in 0..3 {
            let ms: f32 = next.row(r).unwrap().iter().map(|&v| v * v).sum::<f32>() / 4.0;
            assert!((ms - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn activations_stay_bounded_across_blocks() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::Dino, &cfg, 2).unwrap();
        let trace = run_encoder(&wl).unwrap();
        assert!(trace.final_features.max_abs() < 50.0);
        assert!(trace.final_features.max_abs() > 1e-3);
    }

    #[test]
    fn masked_run_with_trivial_masks_matches_exact() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DnDetr, &cfg, 3).unwrap();
        let exact = run_encoder(&wl).unwrap();
        let masked = run_encoder_masked(&wl, |_, _| LayerMasks::default()).unwrap();
        let err = masked.final_features.relative_l2_error(&exact.final_features).unwrap();
        assert!(err < 1e-6);
    }

    #[test]
    fn explicit_initial_fmap_matches_and_diverges() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 8).unwrap();
        // The workload's own pyramid reproduces run_encoder exactly.
        let own = run_encoder_from(&wl, wl.initial_fmap()).unwrap();
        let plain = run_encoder(&wl).unwrap();
        assert_eq!(own.final_features, plain.final_features);
        // A different request pyramid produces different features.
        let gen = crate::workload::RequestGenerator::new(
            vec![crate::workload::RequestScenario::from_workload(wl.clone())],
            3,
        )
        .unwrap();
        let req = gen.request(0);
        let other = run_encoder_from(&wl, &req.fmap).unwrap();
        assert!(other.final_features.relative_l2_error(&plain.final_features).unwrap() > 1e-3);
    }

    #[test]
    fn consecutive_blocks_differ() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 4).unwrap();
        let trace = run_encoder(&wl).unwrap();
        let a = &trace.blocks[0].output;
        let b = &trace.blocks[1].output;
        assert!(a.relative_l2_error(b).unwrap() > 1e-3);
    }
}
