//! Bilinear interpolation (the BI kernel of MSGS).
//!
//! Sampling locations are continuous pixel coordinates; the value at a
//! fractional point `S = (x, y)` is blended from its four integer neighbors
//! `N0..N3` (Eq. 3 of the paper). Out-of-range neighbors contribute zero,
//! matching `grid_sample(..., padding_mode="zeros")` in the official
//! implementation.

use crate::LevelShape;

/// One integer neighbor touched by a bilinear sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Column of the neighbor pixel.
    pub x: i64,
    /// Row of the neighbor pixel.
    pub y: i64,
    /// Interpolation weight in `[0, 1]`.
    pub weight: f32,
}

/// The ≤4 integer pixels a sample touches, with their weights.
///
/// Neighbors are reported in the paper's `N0..N3` order: top-left,
/// top-right, bottom-left, bottom-right. Out-of-bounds neighbors are still
/// listed (the hardware address generator computes them before the bounds
/// check) but carry `in_bounds == false`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// The four corner neighbors.
    pub neighbors: [Neighbor; 4],
    /// Fractional row offset `t0 = y − y0`.
    pub t0: f32,
    /// Fractional column offset `t1 = x − x0`.
    pub t1: f32,
}

impl Footprint {
    /// Computes the footprint of a sample at continuous `(x, y)`.
    pub fn at(x: f32, y: f32) -> Self {
        let x0 = x.floor();
        let y0 = y.floor();
        let t1 = x - x0;
        let t0 = y - y0;
        let (x0, y0) = (x0 as i64, y0 as i64);
        let neighbors = [
            Neighbor { x: x0, y: y0, weight: (1.0 - t1) * (1.0 - t0) },
            Neighbor { x: x0 + 1, y: y0, weight: t1 * (1.0 - t0) },
            Neighbor { x: x0, y: y0 + 1, weight: (1.0 - t1) * t0 },
            Neighbor { x: x0 + 1, y: y0 + 1, weight: t1 * t0 },
        ];
        Footprint { neighbors, t0, t1 }
    }

    /// Neighbors that fall inside a level of the given shape.
    pub fn in_bounds(&self, shape: LevelShape) -> impl Iterator<Item = Neighbor> + '_ {
        self.neighbors.iter().copied().filter(move |n| {
            n.x >= 0 && n.y >= 0 && (n.x as usize) < shape.w && (n.y as usize) < shape.h
        })
    }

    /// Whether all four neighbors are inside the level.
    pub fn fully_inside(&self, shape: LevelShape) -> bool {
        self.neighbors
            .iter()
            .all(|n| n.x >= 0 && n.y >= 0 && (n.x as usize) < shape.w && (n.y as usize) < shape.h)
    }
}

/// Bilinearly samples a `D`-channel value from a level stored row-major as
/// `rows × cols` pixel vectors, accumulating `weight * sample` into `out`.
///
/// `level_data` must contain `shape.pixels() * d` contiguous values
/// (pixel-major). Out-of-bounds neighbors contribute zero.
///
/// # Panics
///
/// Panics in debug builds if `out.len() != d` or the level slice is too
/// short; callers inside this workspace always pass conforming slices.
pub fn sample_accumulate(
    level_data: &[f32],
    shape: LevelShape,
    d: usize,
    x: f32,
    y: f32,
    weight: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), d);
    debug_assert!(level_data.len() >= shape.pixels() * d);
    let fp = Footprint::at(x, y);
    for n in fp.in_bounds(shape) {
        if n.weight == 0.0 {
            continue;
        }
        let base = (n.y as usize * shape.w + n.x as usize) * d;
        let px = &level_data[base..base + d];
        let w = weight * n.weight;
        for (o, &v) in out.iter_mut().zip(px) {
            *o += w * v;
        }
    }
}

/// Bilinearly samples a value, returning a freshly allocated vector.
pub fn sample(level_data: &[f32], shape: LevelShape, d: usize, x: f32, y: f32) -> Vec<f32> {
    let mut out = vec![0.0; d];
    sample_accumulate(level_data, shape, d, x, y, 1.0, &mut out);
    out
}

/// Evaluates the factored bilinear form of Eq. 4:
/// `S = N0 + (N2 − N0)·t0 + [(N1 − N0) + (N3 − N2 − N1 + N0)·t0]·t1`.
///
/// This is the 3-multiplier/7-adder datapath the BI operator implements in
/// hardware; it must agree exactly (in real arithmetic) with the 4-term
/// form of Eq. 3, which the tests verify.
pub fn factored_form(n: [f32; 4], t0: f32, t1: f32) -> f32 {
    let [n0, n1, n2, n3] = n;
    n0 + (n2 - n0) * t0 + ((n1 - n0) + (n3 - n2 - n1 + n0) * t0) * t1
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: LevelShape = LevelShape { h: 3, w: 4 };

    /// Single-channel level: value = 10*y + x for easy hand computation.
    fn level() -> Vec<f32> {
        let mut v = Vec::new();
        for y in 0..3 {
            for x in 0..4 {
                v.push((10 * y + x) as f32);
            }
        }
        v
    }

    #[test]
    fn integer_points_return_exact_pixels() {
        let data = level();
        assert_eq!(sample(&data, SHAPE, 1, 2.0, 1.0), vec![12.0]);
        assert_eq!(sample(&data, SHAPE, 1, 0.0, 0.0), vec![0.0]);
    }

    #[test]
    fn midpoint_averages_four_neighbors() {
        let data = level();
        // Neighbors of (0.5, 0.5): 0, 1, 10, 11 -> mean 5.5.
        assert_eq!(sample(&data, SHAPE, 1, 0.5, 0.5), vec![5.5]);
    }

    #[test]
    fn linear_field_is_reproduced_exactly() {
        let data = level();
        // The field is linear in x and y, so BI must reproduce it anywhere inside.
        for &(x, y) in &[(1.25, 0.75), (2.9, 1.1), (0.0, 1.9)] {
            let got = sample(&data, SHAPE, 1, x, y)[0];
            assert!((got - (10.0 * y + x)).abs() < 1e-5, "({x},{y}) got {got}");
        }
    }

    #[test]
    fn out_of_bounds_contributes_zero() {
        let data = level();
        // x = -0.5: left neighbors are out of bounds, half the mass is lost.
        let got = sample(&data, SHAPE, 1, -0.5, 0.0)[0];
        assert_eq!(got, 0.0 * 0.5 + 0.0); // only N1 (0,0)=0 contributes with w=0.5
        let far = sample(&data, SHAPE, 1, 100.0, 100.0)[0];
        assert_eq!(far, 0.0);
    }

    #[test]
    fn weights_sum_to_one_inside() {
        let fp = Footprint::at(1.3, 0.6);
        let sum: f32 = fp.neighbors.iter().map(|n| n.weight).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(fp.fully_inside(SHAPE));
    }

    #[test]
    fn footprint_order_is_n0_to_n3() {
        let fp = Footprint::at(1.25, 2.5);
        assert_eq!((fp.neighbors[0].x, fp.neighbors[0].y), (1, 2));
        assert_eq!((fp.neighbors[1].x, fp.neighbors[1].y), (2, 2));
        assert_eq!((fp.neighbors[2].x, fp.neighbors[2].y), (1, 3));
        assert_eq!((fp.neighbors[3].x, fp.neighbors[3].y), (2, 3));
    }

    #[test]
    fn factored_form_matches_four_term_form() {
        let cases = [
            ([0.0, 1.0, 10.0, 11.0], 0.5, 0.5),
            ([3.0, -2.0, 7.5, 0.25], 0.1, 0.9),
            ([1.0, 1.0, 1.0, 1.0], 0.33, 0.77),
        ];
        for (n, t0, t1) in cases {
            let four_term = n[0] * (1.0 - t1) * (1.0 - t0)
                + n[1] * t1 * (1.0 - t0)
                + n[2] * (1.0 - t1) * t0
                + n[3] * t1 * t0;
            let fact = factored_form(n, t0, t1);
            assert!((four_term - fact).abs() < 1e-5, "{n:?} {t0} {t1}");
        }
    }

    #[test]
    fn multichannel_samples_each_channel() {
        // 2 channels: ch0 = x, ch1 = y over a 2x2 level.
        let shape = LevelShape::new(2, 2);
        let data = vec![
            0.0, 0.0, // (0,0)
            1.0, 0.0, // (0,1)
            0.0, 1.0, // (1,0)
            1.0, 1.0, // (1,1)
        ];
        let s = sample(&data, shape, 2, 0.25, 0.75);
        assert!((s[0] - 0.25).abs() < 1e-6);
        assert!((s[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn accumulate_adds_scaled_contribution() {
        let data = level();
        let mut out = vec![100.0];
        sample_accumulate(&data, SHAPE, 1, 2.0, 1.0, 0.5, &mut out);
        assert_eq!(out[0], 100.0 + 6.0);
    }
}
