//! Detection-accuracy proxy.
//!
//! The paper reports COCO average precision after fine-tuning the pruned,
//! quantized models (Fig. 6(a)). Training a detector is outside the scope of
//! a Rust systems reproduction, so we measure what the hardware can affect —
//! the *fidelity* of the attention output under pruning/quantization — and
//! map it to an AP estimate with a documented, calibrated sensitivity.
//!
//! The mapping is intentionally simple and transparent:
//! `AP_est = AP_baseline − SENSITIVITY · fidelity_error`, where the error is
//! the relative L2 distance between the pruned and exact encoder outputs.
//! The sensitivity is calibrated so that paper-level pruning rates
//! (~84 % points, ~43 % pixels, INT12) land at roughly the paper's reported
//! 1.4-AP average drop. EXPERIMENTS.md reports both the raw fidelity numbers
//! and the proxied AP side by side — the proxy never replaces the
//! measurement.

use crate::workload::Benchmark;
use crate::ModelError;
use defa_tensor::Tensor;

/// AP lost per unit of relative L2 output error.
///
/// Calibration: the fidelity metric is the *end-to-end* relative error of
/// the final encoder features, which compounds across blocks (each block's
/// offsets depend on the previous block's features). On the paper-scale
/// configuration, paper-default pruning (FWP k=1 + PAP 0.02 + ranges +
/// INT12, no fine-tuning) lands around 1.2 relative error, and the paper
/// reports a 1.4–1.5 AP drop for the same operating point after
/// fine-tuning — giving ≈ 1.2 AP per unit error. The value is deliberately
/// one global constant rather than per-benchmark fudge factors; it absorbs
/// the recovery that fine-tuning provides in the paper's flow.
pub const AP_PER_UNIT_ERROR: f32 = 1.2;

/// Result of an accuracy-proxy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApEstimate {
    /// Baseline AP of the benchmark (paper, Fig. 6(a)).
    pub baseline_ap: f32,
    /// Measured relative L2 error of the pruned output.
    pub fidelity_error: f32,
    /// Proxied AP after the measured degradation.
    pub estimated_ap: f32,
}

impl ApEstimate {
    /// Estimated AP drop relative to baseline.
    pub fn drop(&self) -> f32 {
        self.baseline_ap - self.estimated_ap
    }
}

/// Computes the accuracy proxy for a pruned output against the exact one.
///
/// # Errors
///
/// Returns [`ModelError::Tensor`] if the tensors have different shapes.
pub fn estimate_ap(
    benchmark: Benchmark,
    exact: &Tensor,
    pruned: &Tensor,
) -> Result<ApEstimate, ModelError> {
    let err = pruned.relative_l2_error(exact)?;
    let baseline = benchmark.baseline_ap();
    Ok(ApEstimate {
        baseline_ap: baseline,
        fidelity_error: err,
        estimated_ap: (baseline - AP_PER_UNIT_ERROR * err).max(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_keeps_baseline_ap() {
        let t = Tensor::full([4, 4], 1.0);
        let est = estimate_ap(Benchmark::DeformableDetr, &t, &t).unwrap();
        assert_eq!(est.fidelity_error, 0.0);
        assert_eq!(est.estimated_ap, est.baseline_ap);
        assert_eq!(est.drop(), 0.0);
    }

    #[test]
    fn larger_error_means_larger_drop() {
        let exact = Tensor::full([4, 4], 1.0);
        let slightly = Tensor::full([4, 4], 1.05);
        let badly = Tensor::full([4, 4], 1.5);
        let a = estimate_ap(Benchmark::Dino, &exact, &slightly).unwrap();
        let b = estimate_ap(Benchmark::Dino, &exact, &badly).unwrap();
        assert!(b.drop() > a.drop());
    }

    #[test]
    fn ap_never_goes_negative() {
        let exact = Tensor::full([2, 2], 1.0);
        let garbage = Tensor::full([2, 2], 1000.0);
        let est = estimate_ap(Benchmark::DnDetr, &exact, &garbage).unwrap();
        assert!(est.estimated_ap >= 0.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(estimate_ap(Benchmark::Dino, &a, &b).is_err());
    }
}
