//! Operation accounting for MSDeformAttn layers (§2.2 of the paper).
//!
//! The paper's computational-properties analysis rests on one observation:
//! MSGS + aggregation take over 60 % of GPU runtime while contributing only
//! ~3 % of the arithmetic. These counters provide the arithmetic side of
//! that claim; the latency side comes from `defa-baseline`'s GPU model.

use crate::MsdaConfig;

/// FLOP counts of one encoder block, split by operator.
///
/// Counts use the convention FLOPs = 2 × MACs for matrix products. The FFN
/// that follows MSDeformAttn inside every encoder layer is included (as
/// `ffn`) because the paper's per-layer ratios count it among "others".
///
/// # Example
///
/// ```
/// use defa_model::{flops::BlockFlops, MsdaConfig};
///
/// let f = BlockFlops::for_config(&MsdaConfig::full());
/// let frac = f.msgs_fraction();
/// assert!(frac > 0.01 && frac < 0.10); // paper: ~3.25 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFlops {
    /// Attention-logit projection `Q·Wᴬ`.
    pub attn_proj: u64,
    /// Sampling-offset projection `Q·Wˢ`.
    pub offset_proj: u64,
    /// Value projection `X·Wᵥ`.
    pub value_proj: u64,
    /// Softmax over the per-head logits (exp + div, ~4 FLOPs/element).
    pub softmax: u64,
    /// Multi-scale grid-sampling (bilinear interpolation, factored form:
    /// 3 multiplies + 7 adds per channel per point).
    pub msgs: u64,
    /// Probability-weighted aggregation (1 multiply + 1 add per channel per
    /// point).
    pub aggregation: u64,
    /// Feed-forward network of the encoder layer (`D → 4D → D`).
    pub ffn: u64,
}

impl BlockFlops {
    /// Computes the dense (unpruned) FLOP counts for a configuration.
    pub fn for_config(cfg: &MsdaConfig) -> Self {
        let n = cfg.n_in() as u64;
        let d = cfg.d_model as u64;
        let ppq = cfg.points_per_query() as u64;
        let dh = cfg.head_dim() as u64;
        let ffn_dim = 4 * d;
        BlockFlops {
            attn_proj: 2 * n * d * ppq,
            offset_proj: 2 * n * d * 2 * ppq,
            value_proj: 2 * n * d * d,
            softmax: 4 * n * ppq,
            msgs: n * ppq * dh * 10,
            aggregation: n * ppq * dh * 2,
            ffn: 2 * n * d * ffn_dim * 2,
        }
    }

    /// Total FLOPs of the block.
    pub fn total(&self) -> u64 {
        self.attn_proj
            + self.offset_proj
            + self.value_proj
            + self.softmax
            + self.msgs
            + self.aggregation
            + self.ffn
    }

    /// FLOPs of MSGS + aggregation.
    pub fn msgs_and_aggregation(&self) -> u64 {
        self.msgs + self.aggregation
    }

    /// Share of MSGS + aggregation in the block's arithmetic.
    pub fn msgs_fraction(&self) -> f64 {
        self.msgs_and_aggregation() as f64 / self.total() as f64
    }

    /// FLOP counts after pruning.
    ///
    /// `point_keep` is the fraction of sampling points surviving PAP;
    /// `pixel_keep` the fraction of fmap pixels surviving FWP. PAP shrinks
    /// the offset projection, MSGS and aggregation; FWP shrinks the value
    /// projection. The attention projection and softmax always run (they
    /// feed PAP itself) and the FFN is untouched.
    pub fn pruned(&self, point_keep: f64, pixel_keep: f64) -> BlockFlops {
        let scale = |x: u64, f: f64| (x as f64 * f.clamp(0.0, 1.0)).round() as u64;
        BlockFlops {
            attn_proj: self.attn_proj,
            offset_proj: scale(self.offset_proj, point_keep),
            value_proj: scale(self.value_proj, pixel_keep),
            softmax: self.softmax,
            msgs: scale(self.msgs, point_keep),
            aggregation: scale(self.aggregation, point_keep),
            ffn: self.ffn,
        }
    }

    /// FLOPs of the MSDeformAttn module alone (everything except the FFN).
    pub fn attention_only(&self) -> u64 {
        self.total() - self.ffn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_is_a_small_fraction_of_compute() {
        // §2.2: MSGS + aggregation ≈ 3.25 % of computation.
        let f = BlockFlops::for_config(&MsdaConfig::full());
        let frac = f.msgs_fraction();
        assert!(frac > 0.015 && frac < 0.06, "msgs fraction {frac}");
    }

    #[test]
    fn totals_add_up() {
        let f = BlockFlops::for_config(&MsdaConfig::tiny());
        assert_eq!(
            f.total(),
            f.attn_proj + f.offset_proj + f.value_proj + f.softmax + f.msgs + f.aggregation + f.ffn
        );
        assert_eq!(f.attention_only() + f.ffn, f.total());
    }

    #[test]
    fn projection_counts_match_hand_formulae() {
        let cfg = MsdaConfig::tiny(); // n=60, d=16, ppq=8, dh=8
        let f = BlockFlops::for_config(&cfg);
        assert_eq!(f.attn_proj, 2 * 60 * 16 * 8);
        assert_eq!(f.offset_proj, 2 * 60 * 16 * 16);
        assert_eq!(f.value_proj, 2 * 60 * 16 * 16);
        assert_eq!(f.msgs, 60 * 8 * 8 * 10);
        assert_eq!(f.aggregation, 60 * 8 * 8 * 2);
    }

    #[test]
    fn pruning_reduces_the_right_components() {
        let f = BlockFlops::for_config(&MsdaConfig::full());
        let p = f.pruned(0.16, 0.57); // paper-level PAP (84 % off) and FWP (43 % off)
        assert_eq!(p.attn_proj, f.attn_proj);
        assert_eq!(p.softmax, f.softmax);
        assert_eq!(p.ffn, f.ffn);
        assert!(p.msgs < f.msgs / 6);
        assert!(p.value_proj < f.value_proj * 6 / 10);
        // Attention-module FLOPs should shrink by >50 % (Fig. 6(b): 52-53 %).
        let reduction = 1.0 - p.attention_only() as f64 / f.attention_only() as f64;
        assert!(reduction > 0.40, "reduction {reduction}");
    }

    #[test]
    fn keep_fractions_are_clamped() {
        let f = BlockFlops::for_config(&MsdaConfig::tiny());
        let p = f.pruned(2.0, -1.0);
        assert_eq!(p.msgs, f.msgs);
        assert_eq!(p.value_proj, 0);
    }
}
