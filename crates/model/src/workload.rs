//! Synthetic benchmark workload generation.
//!
//! The paper evaluates on the encoders of Deformable DETR, DN-DETR and DINO
//! over COCO 2017. A Rust systems reproduction cannot ship trained
//! checkpoints, so this module generates synthetic workloads that are
//! *statistically faithful* in the two properties the DEFA algorithms
//! exploit:
//!
//! 1. **Skewed attention probabilities** — §3.2 observes that near-zero
//!    probabilities constitute over 80 % of all sampling points. We size the
//!    logit variance so the per-head softmax reproduces that skew.
//! 2. **Non-uniform, temporally persistent pixel popularity** — §3.1
//!    observes that a small proportion of pixels is sampled far more often
//!    than the rest, and FWP relies on block *k*'s statistics predicting
//!    block *k+1*'s accesses. We superimpose per-level *hotspots*
//!    (synthetic salient objects, fixed for the whole workload) that attract
//!    a configurable fraction of sampling points via [`SaliencyWarp`].

use crate::reference::{MsdaLayer, MsdaWeights};
use crate::sampling::SamplePoint;
use crate::{FmapPyramid, ModelError, MsdaConfig};
use defa_tensor::rng::{splitmix64 as mix64, TensorRng};

/// The three DAC-24 evaluation networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Deformable DETR (ICLR'21).
    DeformableDetr,
    /// DN-DETR (CVPR'22).
    DnDetr,
    /// DINO (ICLR'22).
    Dino,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub fn all() -> [Benchmark; 3] {
        [Benchmark::DeformableDetr, Benchmark::DnDetr, Benchmark::Dino]
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::DeformableDetr => "De DETR",
            Benchmark::DnDetr => "DN-DETR",
            Benchmark::Dino => "DINO",
        }
    }

    /// Baseline detection AP on COCO reported in Fig. 6(a).
    pub fn baseline_ap(&self) -> f32 {
        match self {
            Benchmark::DeformableDetr => 46.9,
            Benchmark::DnDetr => 49.4,
            Benchmark::Dino => 50.8,
        }
    }

    /// DEFA (pruned + quantized) detection AP reported in Fig. 6(a).
    pub fn defa_ap(&self) -> f32 {
        match self {
            Benchmark::DeformableDetr => 45.5,
            Benchmark::DnDetr => 47.9,
            Benchmark::Dino => 49.4,
        }
    }

    /// Fraction of MSDeformAttn latency spent in MSGS + aggregation on the
    /// RTX 3090Ti, from Fig. 1(b).
    pub fn msgs_latency_fraction(&self) -> f64 {
        match self {
            Benchmark::DeformableDetr => 0.6328,
            Benchmark::DnDetr => 0.6036,
            Benchmark::Dino => 0.6331,
        }
    }

    /// Workload statistics: `(logit_std, hotspot_fraction, offset_std)`.
    ///
    /// `logit_std` controls attention-probability skew, `hotspot_fraction`
    /// the share of sampling points attracted to persistent hotspots and
    /// `offset_std` the dispersion (in pixels) of free sampling offsets.
    /// The three networks behave similarly; DINO's denoising queries make
    /// its sampling marginally more dispersed, DN-DETR's marginally less
    /// peaked, consistent with the slightly different reduction ratios of
    /// Fig. 6(b).
    pub fn workload_stats(&self) -> (f32, f32, f32) {
        match self {
            Benchmark::DeformableDetr => (3.6, 0.62, 2.0),
            Benchmark::DnDetr => (3.3, 0.60, 2.2),
            Benchmark::Dino => (3.2, 0.58, 2.4),
        }
    }

    /// Seed offset so each benchmark gets distinct but reproducible data.
    fn seed_salt(&self) -> u64 {
        match self {
            Benchmark::DeformableDetr => 0x00D0,
            Benchmark::DnDetr => 0x0D0D,
            Benchmark::Dino => 0xD1D0,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A persistent attractor for sampling points in one pyramid level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Column in level pixel coordinates.
    pub x: f32,
    /// Row in level pixel coordinates.
    pub y: f32,
}

/// Deterministic redirection of sampling points toward level hotspots.
///
/// For each `(query, slot)` pair the warp decides — via a pure hash, so the
/// warp is `Sync` and reproducible — whether the point snaps to a hotspot
/// (plus jitter) or keeps its projected location. Hotspots are Zipf-weighted
/// so a few of them dominate, reproducing the paper's skewed pixel-access
/// frequency.
#[derive(Debug, Clone)]
pub struct SaliencyWarp {
    hotspots: Vec<Vec<Hotspot>>,
    hotspot_fraction: f32,
    jitter: f32,
    seed: u64,
}

impl SaliencyWarp {
    /// Creates a warp with explicit hotspot lists (one list per level).
    pub fn new(hotspots: Vec<Vec<Hotspot>>, hotspot_fraction: f32, jitter: f32, seed: u64) -> Self {
        SaliencyWarp { hotspots, hotspot_fraction, jitter, seed }
    }

    /// Generates hotspots for a configuration: a handful per level,
    /// positioned uniformly at random.
    pub fn generate(
        cfg: &MsdaConfig,
        fraction: f32,
        jitter: f32,
        rng: &mut TensorRng,
        seed: u64,
    ) -> Self {
        let mut hotspots = Vec::with_capacity(cfg.n_levels());
        for shape in &cfg.levels {
            let count = ((shape.pixels() as f32).sqrt() / 3.0).ceil().max(1.0) as usize;
            let mut level = Vec::with_capacity(count);
            for _ in 0..count {
                level.push(Hotspot {
                    x: rng.uniform_value(0.0, shape.w as f32 - 1.0),
                    y: rng.uniform_value(0.0, shape.h as f32 - 1.0),
                });
            }
            hotspots.push(level);
        }
        SaliencyWarp { hotspots, hotspot_fraction: fraction, jitter, seed }
    }

    /// Hotspot lists per level.
    pub fn hotspots(&self) -> &[Vec<Hotspot>] {
        &self.hotspots
    }

    fn unit(&self, query: usize, slot: usize, stream: u64) -> f32 {
        let h = mix64(
            self.seed
                ^ (query as u64).wrapping_mul(0xA24BAED4963EE407)
                ^ (slot as u64).wrapping_mul(0x9FB21C651E98DF25)
                ^ stream.wrapping_mul(0xD6E8FEB86659FD93),
        );
        (h >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Possibly redirects a sampling point toward a hotspot of its level.
    ///
    /// Deterministic in `(query, slot)`; the same pair always makes the
    /// same decision across encoder blocks, which is what gives FWP its
    /// inter-block predictive power.
    pub fn apply(&self, query: usize, slot: usize, pt: &mut SamplePoint) {
        let level = pt.level as usize;
        let spots = match self.hotspots.get(level) {
            Some(s) if !s.is_empty() => s,
            _ => return,
        };
        if self.unit(query, slot, 0) >= self.hotspot_fraction {
            return;
        }
        // Zipf-weighted hotspot choice: weight of spot k is 1/(k+1).
        let total: f32 = (0..spots.len()).map(|k| 1.0 / (k + 1) as f32).sum();
        let mut u = self.unit(query, slot, 1) * total;
        let mut chosen = spots.len() - 1;
        for k in 0..spots.len() {
            let w = 1.0 / (k + 1) as f32;
            if u < w {
                chosen = k;
                break;
            }
            u -= w;
        }
        let spot = spots[chosen];
        let jx = (self.unit(query, slot, 2) - 0.5) * 2.0 * self.jitter;
        let jy = (self.unit(query, slot, 3) - 0.5) * 2.0 * self.jitter;
        pt.x = spot.x + jx;
        pt.y = spot.y + jy;
    }
}

/// A complete, reproducible benchmark instance: per-layer weights, initial
/// feature pyramid and saliency warp.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    benchmark: Benchmark,
    cfg: MsdaConfig,
    layers: Vec<MsdaLayer>,
    initial: FmapPyramid,
    warp: SaliencyWarp,
    seed: u64,
}

impl SyntheticWorkload {
    /// Generates a workload for one benchmark and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `cfg` fails validation.
    pub fn generate(benchmark: Benchmark, cfg: &MsdaConfig, seed: u64) -> Result<Self, ModelError> {
        cfg.validate()?;
        let (logit_std, hotspot_fraction, offset_std) = benchmark.workload_stats();
        let mut rng = TensorRng::seed_from(seed ^ benchmark.seed_salt());
        let d = cfg.d_model;
        // Q entries are ~U(-1,1): variance 1/3. A projection column with
        // weight std s yields logit std s·sqrt(d/3); invert for the target.
        let attn_w_std = logit_std / (d as f32 / 3.0).sqrt();
        let offset_w_std = offset_std / (d as f32 / 3.0).sqrt();
        let value_w_std = 1.0 / (d as f32).sqrt();

        let mut layers = Vec::with_capacity(cfg.n_layers);
        for _ in 0..cfg.n_layers {
            let weights = MsdaWeights {
                w_attn: rng.normal([d, cfg.points_per_query()], 0.0, attn_w_std),
                w_offset: rng.normal([d, 2 * cfg.points_per_query()], 0.0, offset_w_std),
                w_value: rng.normal([d, d], 0.0, value_w_std),
            };
            layers.push(MsdaLayer::new(cfg.clone(), weights)?);
        }

        let initial = FmapPyramid::from_tensor(cfg, rng.uniform([cfg.n_in(), d], -1.0, 1.0))?;
        let warp = SaliencyWarp::generate(cfg, hotspot_fraction, 1.5, &mut rng, seed);
        Ok(SyntheticWorkload { benchmark, cfg: cfg.clone(), layers, initial, warp, seed })
    }

    /// The benchmark this workload models.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The shared configuration.
    pub fn config(&self) -> &MsdaConfig {
        &self.cfg
    }

    /// The seed the workload was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All encoder layers.
    pub fn layers(&self) -> &[MsdaLayer] {
        &self.layers
    }

    /// Layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndexOutOfRange`] if `i >= n_layers`.
    pub fn layer(&self, i: usize) -> Result<&MsdaLayer, ModelError> {
        self.layers.get(i).ok_or(ModelError::IndexOutOfRange {
            what: "layer",
            index: i,
            len: self.layers.len(),
        })
    }

    /// The initial (backbone) feature pyramid.
    pub fn initial_fmap(&self) -> &FmapPyramid {
        &self.initial
    }

    /// The saliency warp applied to all layers.
    pub fn warp(&self) -> &SaliencyWarp {
        &self.warp
    }
}

/// Service-level objective class of one request.
///
/// A production stream is never latency-uniform: some requests sit on an
/// interactive path (a user is waiting), most are ordinary, and some are
/// offline re-processing that only cares about throughput. The class
/// carries the end-to-end latency budget a request is held to and a
/// coarse priority; deadline-aware schedulers (EDF in `defa-serve`) order
/// batches by `arrival + deadline_ns()` and reports count budget misses
/// per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloClass {
    /// A user is blocked on the response: tight budget, top priority.
    Interactive,
    /// The default service class.
    Standard,
    /// Offline/bulk work: generous budget, lowest priority.
    Batch,
}

/// Salt for the SLO-class hash stream, independent of the scenario and
/// payload streams so attaching SLOs never perturbs existing traces.
const SLO_SALT: u64 = 0x510C_1A55_0000_0001;

impl SloClass {
    /// All classes, tightest budget first.
    pub fn all() -> [SloClass; 3] {
        [SloClass::Interactive, SloClass::Standard, SloClass::Batch]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// End-to-end (queue + service) latency budget in virtual nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        match self {
            SloClass::Interactive => 2_000_000, // 2 ms
            SloClass::Standard => 10_000_000,   // 10 ms
            SloClass::Batch => 100_000_000,     // 100 ms
        }
    }

    /// Scheduling priority: lower is more urgent.
    pub fn priority(&self) -> u8 {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// The class request `id` draws under generator seed `seed`: a pure
    /// hash, 25 % interactive / 50 % standard / 25 % batch.
    ///
    /// Drawn from its own salted stream so the scenario pick and payload
    /// bits of pre-SLO traces are unchanged.
    pub fn derive(seed: u64, id: u64) -> SloClass {
        let h = mix64(seed ^ SLO_SALT ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match h % 4 {
            0 => SloClass::Interactive,
            1 | 2 => SloClass::Standard,
            _ => SloClass::Batch,
        }
    }

    /// Streaming (per-iteration) latency budgets for session serving.
    ///
    /// The first iteration of a session is held to the full end-to-end
    /// deadline (time-to-first-token covers queueing and prefill); every
    /// later iteration only decodes against resident state, so its
    /// time-between-tokens budget is a tenth of the class deadline.
    pub fn streaming_budgets(&self) -> StreamingBudget {
        StreamingBudget { ttft_ns: self.deadline_ns(), tbt_ns: self.deadline_ns() / 10 }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The single source of truth for class labels is `name()`; the
        // `Display` impl only delegates so tables and logs can never
        // drift from the accessor.
        f.write_str(self.name())
    }
}

/// Streaming latency budgets of one [`SloClass`]: the time-to-first-token
/// and time-between-tokens deadlines session serving holds each iteration
/// to. See [`SloClass::streaming_budgets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamingBudget {
    /// Budget from session arrival to its first settled iteration.
    pub ttft_ns: u64,
    /// Budget from an iteration becoming ready (think time elapsed) to its
    /// settle.
    pub tbt_ns: u64,
}

/// Salt for the session-length hash stream, independent of the scenario,
/// payload, SLO and arrival streams so attaching session shapes never
/// perturbs existing traces.
const SESSION_LEN_SALT: u64 = 0x5E55_10A1_0000_0001;

/// Salt for the think-time hash stream (one draw per session iteration).
const THINK_SALT: u64 = 0x7417_0C1A_0000_0001;

/// Seeded shape of multi-turn sessions: how many iterations a session
/// runs and how long the client "thinks" between them.
///
/// A session is the serving unit of multi-turn streaming traffic: request
/// `id` becomes the *prefill* (iteration 0) of a session whose length and
/// inter-iteration gaps are pure functions of `(generator seed, id)`,
/// exactly like the payload/scenario/SLO streams — any shard can derive a
/// session's shape without coordination. [`SessionProfile::ONE_SHOT`]
/// (length 1, no think time) reproduces the legacy one-request path
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionProfile {
    /// Minimum iterations per session (≥ 1).
    pub min_len: u32,
    /// Maximum iterations per session (inclusive; ≥ `min_len`).
    pub max_len: u32,
    /// Mean think time between consecutive iterations, in virtual
    /// microseconds (0 disables think time: iterations chain immediately).
    pub think_mean_us: u64,
}

impl SessionProfile {
    /// The legacy shape: every session is a single prefill iteration.
    pub const ONE_SHOT: SessionProfile =
        SessionProfile { min_len: 1, max_len: 1, think_mean_us: 0 };

    /// Whether every session has exactly one iteration (the legacy
    /// one-shot request path).
    pub fn is_one_shot(&self) -> bool {
        self.max_len <= 1
    }

    /// Iterations session `id` runs under generator seed `seed`: uniform
    /// in `[min_len, max_len]` from its own salted hash stream.
    pub fn session_len(&self, seed: u64, id: u64) -> u32 {
        let lo = self.min_len.max(1);
        if self.max_len <= lo {
            return lo;
        }
        let span = (self.max_len - lo) as u64 + 1;
        let h = mix64(seed ^ SESSION_LEN_SALT ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        lo + (h % span) as u32
    }

    /// Think time before iteration `iter` of session `id` becomes ready,
    /// in virtual nanoseconds: exponential with mean `think_mean_us`,
    /// drawn from its own salted stream (the same inverse-CDF scheme the
    /// load generator uses for Poisson gaps). Iteration 0 has no think
    /// time by construction; a zero mean disables it for all iterations.
    pub fn think_ns(&self, seed: u64, id: u64, iter: u32) -> u64 {
        if self.think_mean_us == 0 || iter == 0 {
            return 0;
        }
        let h = mix64(
            seed ^ THINK_SALT
                ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (iter as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        // Top 53 bits → u ∈ (0, 1], then the exponential inverse CDF.
        let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        (-(u.ln()) * self.think_mean_us as f64 * 1_000.0) as u64
    }
}

impl Default for SessionProfile {
    fn default() -> Self {
        SessionProfile::ONE_SHOT
    }
}

/// One serving scenario: a named benchmark workload at one shape point.
///
/// Scenarios own the expensive, request-independent state (layer weights,
/// saliency warp); individual requests only carry a fresh feature pyramid.
#[derive(Debug, Clone)]
pub struct RequestScenario {
    /// Display name, e.g. `"De DETR 24x32"`.
    pub name: String,
    /// The benchmark workload evaluated for requests of this scenario.
    pub workload: SyntheticWorkload,
}

impl RequestScenario {
    /// Wraps a workload, deriving the display name from its benchmark and
    /// finest-level shape.
    pub fn from_workload(workload: SyntheticWorkload) -> Self {
        let l0 = workload.config().levels[0];
        let name = format!("{} {}x{}", workload.benchmark().name(), l0.h, l0.w);
        RequestScenario { name, workload }
    }
}

/// One inference request drawn from a [`RequestGenerator`].
///
/// The payload is a backbone feature pyramid shaped by the request's
/// scenario; the id doubles as the derivation key, so the same `(generator
/// seed, id)` pair always reproduces the same request.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Stream position (and derivation key) of this request.
    pub id: u64,
    /// Index into the generator's scenario list.
    pub scenario: usize,
    /// Service-level objective class of this request.
    pub slo: SloClass,
    /// The request's input feature pyramid.
    pub fmap: FmapPyramid,
}

/// Seeded multi-scenario request generator for serving and benchmarks.
///
/// A production detector serves a *stream* of heterogeneous queries —
/// different networks, different input resolutions — not one hand-built
/// workload per binary. The generator models that stream: it owns a set of
/// [`RequestScenario`]s (each a full [`SyntheticWorkload`] with its own
/// feature-map shapes and query count) and derives request `i` purely from
/// `(seed, i)`: a hash picks the scenario, a per-request RNG fills a fresh
/// input pyramid. Requests are therefore independent of generation order —
/// any shard can materialize any request without coordination, which is
/// what keeps batched serving bit-deterministic.
///
/// # Example
///
/// ```
/// use defa_model::workload::RequestGenerator;
/// use defa_model::MsdaConfig;
///
/// # fn main() -> Result<(), defa_model::ModelError> {
/// let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 42)?;
/// let a = gen.request(3);
/// let b = gen.request(3);
/// assert_eq!(a.scenario, b.scenario);
/// assert_eq!(a.fmap.tensor(), b.fmap.tensor());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    scenarios: Vec<RequestScenario>,
    seed: u64,
}

impl RequestGenerator {
    /// Creates a generator over explicit scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `scenarios` is empty.
    pub fn new(scenarios: Vec<RequestScenario>, seed: u64) -> Result<Self, ModelError> {
        if scenarios.is_empty() {
            return Err(ModelError::InvalidConfig(
                "request generator needs at least one scenario".into(),
            ));
        }
        Ok(RequestGenerator { scenarios, seed })
    }

    /// The three input scales used by the multi-scenario streams: the base
    /// pyramid and its 3/4 and 1/2 downscales.
    pub const INPUT_SCALES: [f64; 3] = [1.0, 0.75, 0.5];

    /// Scales every pyramid level of `base` by `scale` (each side, floored
    /// at one pixel).
    fn scaled_config(base: &MsdaConfig, scale: f64) -> MsdaConfig {
        let mut cfg = base.clone();
        for level in &mut cfg.levels {
            level.h = ((level.h as f64 * scale).round() as usize).max(1);
            level.w = ((level.w as f64 * scale).round() as usize).max(1);
        }
        cfg
    }

    /// The standard three-scenario mix derived from a base configuration:
    /// each DAC-24 benchmark at a different input scale (1, 3/4 and 1/2 of
    /// the base pyramid), so the stream varies both weights and shapes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `base` fails validation.
    pub fn standard(base: &MsdaConfig, seed: u64) -> Result<Self, ModelError> {
        let mut scenarios = Vec::with_capacity(3);
        for (benchmark, scale) in Benchmark::all().into_iter().zip(Self::INPUT_SCALES) {
            let cfg = Self::scaled_config(base, scale);
            let wl = SyntheticWorkload::generate(benchmark, &cfg, seed)?;
            scenarios.push(RequestScenario::from_workload(wl));
        }
        Self::new(scenarios, seed)
    }

    /// The full nine-scenario grid: every DAC-24 benchmark × every input
    /// scale ([`Self::INPUT_SCALES`]), benchmark-major. This is the stream
    /// the efficiency tables sweep — it exercises each network at each
    /// shape point instead of pairing them off as [`Self::standard`] does.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `base` fails validation.
    pub fn grid(base: &MsdaConfig, seed: u64) -> Result<Self, ModelError> {
        let mut scenarios = Vec::with_capacity(9);
        for benchmark in Benchmark::all() {
            for scale in Self::INPUT_SCALES {
                let cfg = Self::scaled_config(base, scale);
                let wl = SyntheticWorkload::generate(benchmark, &cfg, seed)?;
                scenarios.push(RequestScenario::from_workload(wl));
            }
        }
        Self::new(scenarios, seed)
    }

    /// The scenario list.
    pub fn scenarios(&self) -> &[RequestScenario] {
        &self.scenarios
    }

    /// The workload behind scenario `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndexOutOfRange`] for an invalid index.
    pub fn scenario(&self, i: usize) -> Result<&SyntheticWorkload, ModelError> {
        self.scenarios.get(i).map(|s| &s.workload).ok_or(ModelError::IndexOutOfRange {
            what: "scenario",
            index: i,
            len: self.scenarios.len(),
        })
    }

    /// The generator's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scenario request `id` will draw — the cheap half of [`Self::request`],
    /// for callers that need routing/accounting without the payload.
    pub fn request_scenario(&self, id: u64) -> usize {
        let h = mix64(self.seed ^ id.wrapping_mul(0xA24BAED4963EE407));
        // A constant modulus lowers to multiply-shift instead of a
        // hardware divide, which matters on the admission hot path;
        // `standard` ships 3 scenarios and `grid` 9.
        let n = self.scenarios.len() as u64;
        (match n {
            3 => h % 3,
            9 => h % 9,
            _ => h % n,
        }) as usize
    }

    /// SLO class request `id` will draw — like [`Self::request_scenario`],
    /// cheap enough for admission-time accounting.
    pub fn request_slo(&self, id: u64) -> SloClass {
        SloClass::derive(self.seed, id)
    }

    /// Materializes request `id` — a pure function of `(seed, id)`.
    ///
    /// The scenario pick, SLO class and payload each come from their own
    /// salted hash stream, so adding a stream leaves the others untouched
    /// (the SLO stream was added without moving a single payload bit).
    pub fn request(&self, id: u64) -> InferenceRequest {
        let scenario = self.request_scenario(id);
        let cfg = self.scenarios[scenario].workload.config();
        let mut rng = TensorRng::seed_from(mix64(self.seed.rotate_left(17) ^ id));
        let fmap = FmapPyramid::from_tensor(cfg, rng.uniform([cfg.n_in(), cfg.d_model], -1.0, 1.0))
            .expect("scenario config validated at construction");
        InferenceRequest { id, scenario, slo: self.request_slo(id), fmap }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = MsdaConfig::tiny();
        let a = SyntheticWorkload::generate(Benchmark::Dino, &cfg, 5).unwrap();
        let b = SyntheticWorkload::generate(Benchmark::Dino, &cfg, 5).unwrap();
        assert_eq!(a.initial_fmap().tensor(), b.initial_fmap().tensor());
        assert_eq!(a.layer(0).unwrap().weights().w_attn, b.layer(0).unwrap().weights().w_attn);
    }

    #[test]
    fn benchmarks_produce_distinct_workloads() {
        let cfg = MsdaConfig::tiny();
        let a = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 5).unwrap();
        let b = SyntheticWorkload::generate(Benchmark::DnDetr, &cfg, 5).unwrap();
        assert_ne!(a.initial_fmap().tensor(), b.initial_fmap().tensor());
    }

    #[test]
    fn attention_probabilities_are_skewed_like_the_paper() {
        // §3.2: near-zero probabilities are >80% of points in De DETR. This
        // needs the realistic 16 points per head (4 levels x 4 points) of
        // the small config; the tiny config only has 4 points per head.
        let cfg = MsdaConfig::small();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 7).unwrap();
        let out = wl.layer(0).unwrap().forward(wl.initial_fmap(), Some(wl.warp())).unwrap();
        let total = out.probs.len();
        let near_zero = out.probs.as_slice().iter().filter(|&&p| p < 0.02).count();
        let frac = near_zero as f32 / total as f32;
        assert!(frac > 0.75, "near-zero fraction {frac} too low for a skewed workload");
    }

    #[test]
    fn warp_is_deterministic_and_respects_fraction() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 3).unwrap();
        let mut p1 = SamplePoint::new(0, 2.0, 2.0);
        let mut p2 = SamplePoint::new(0, 2.0, 2.0);
        wl.warp().apply(10, 3, &mut p1);
        wl.warp().apply(10, 3, &mut p2);
        assert_eq!(p1, p2);
        // Count how many (query, slot) pairs get redirected.
        let mut redirected = 0;
        let trials = 2000;
        for q in 0..trials {
            let mut p = SamplePoint::new(0, 2.0, 2.0);
            wl.warp().apply(q, 0, &mut p);
            if (p.x, p.y) != (2.0, 2.0) {
                redirected += 1;
            }
        }
        let frac = redirected as f32 / trials as f32;
        let expect = wl.benchmark().workload_stats().1;
        assert!((frac - expect).abs() < 0.1, "redirect fraction {frac} vs {expect}");
    }

    #[test]
    fn hotspot_accesses_are_head_heavy() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 11).unwrap();
        let spots = wl.warp().hotspots();
        assert_eq!(spots.len(), cfg.n_levels());
        assert!(spots.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn paper_constants_are_anchored() {
        assert_eq!(Benchmark::DeformableDetr.baseline_ap(), 46.9);
        assert_eq!(Benchmark::Dino.defa_ap(), 49.4);
        assert!(Benchmark::DnDetr.msgs_latency_fraction() > 0.6);
        for b in Benchmark::all() {
            assert!(b.baseline_ap() > b.defa_ap());
            assert!(b.name().len() >= 4);
        }
    }

    #[test]
    fn layer_index_is_validated() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::Dino, &cfg, 1).unwrap();
        assert!(wl.layer(cfg.n_layers).is_err());
    }

    #[test]
    fn request_generator_is_pure_in_seed_and_id() {
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 9).unwrap();
        let other = RequestGenerator::standard(&MsdaConfig::tiny(), 9).unwrap();
        for id in [0u64, 1, 17, 1000] {
            let a = gen.request(id);
            let b = other.request(id);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.fmap.tensor(), b.fmap.tensor());
        }
        // A different seed moves both the scenario mix and the payloads.
        let reseeded = RequestGenerator::standard(&MsdaConfig::tiny(), 10).unwrap();
        assert!((0..32).any(|id| {
            let a = gen.request(id);
            let b = reseeded.request(id);
            a.scenario != b.scenario || a.fmap.tensor() != b.fmap.tensor()
        }));
    }

    #[test]
    fn standard_scenarios_vary_shapes_and_benchmarks() {
        let base = MsdaConfig::tiny();
        let gen = RequestGenerator::standard(&base, 5).unwrap();
        assert_eq!(gen.scenarios().len(), 3);
        let n_ins: Vec<usize> =
            gen.scenarios().iter().map(|s| s.workload.config().n_in()).collect();
        assert_eq!(n_ins[0], base.n_in());
        assert!(n_ins[1] < n_ins[0] && n_ins[2] < n_ins[1], "shapes must shrink: {n_ins:?}");
        let names: Vec<_> = gen.scenarios().iter().map(|s| s.name.as_str()).collect();
        assert!(names[0].starts_with("De DETR"));
        assert!(names[2].starts_with("DINO"));
    }

    #[test]
    fn grid_covers_every_benchmark_at_every_scale() {
        let base = MsdaConfig::tiny();
        let gen = RequestGenerator::grid(&base, 5).unwrap();
        assert_eq!(gen.scenarios().len(), 9);
        // Benchmark-major: three consecutive scenarios per network, shapes
        // shrinking within each triple.
        for (b, benchmark) in Benchmark::all().into_iter().enumerate() {
            let triple = &gen.scenarios()[3 * b..3 * b + 3];
            let n_ins: Vec<usize> = triple.iter().map(|s| s.workload.config().n_in()).collect();
            assert!(triple.iter().all(|s| s.workload.benchmark() == benchmark));
            assert_eq!(n_ins[0], base.n_in());
            assert!(n_ins[1] < n_ins[0] && n_ins[2] < n_ins[1], "shapes must shrink: {n_ins:?}");
        }
        // Names are distinct (benchmark + finest-level shape).
        let mut names: Vec<_> = gen.scenarios().iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
        // A long-enough stream hits all nine scenarios.
        let mut seen = [0usize; 9];
        for id in 0..180 {
            seen[gen.request(id).scenario] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "scenario mix missed a cell: {seen:?}");
    }

    #[test]
    fn slo_classes_are_deterministic_and_mixed() {
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 9).unwrap();
        let mut seen = [0usize; 3];
        for id in 0..200 {
            let slo = gen.request_slo(id);
            assert_eq!(slo, gen.request(id).slo, "accessor and payload must agree");
            assert_eq!(slo, SloClass::derive(9, id));
            seen[slo.priority() as usize] += 1;
        }
        // 25/50/25 mix: every class present, standard the plurality.
        assert!(seen.iter().all(|&c| c > 20), "class mix too skewed: {seen:?}");
        assert!(seen[1] > seen[0] && seen[1] > seen[2], "standard must dominate: {seen:?}");
        // Budgets are ordered with priority.
        let [i, s, b] = SloClass::all();
        assert!(i.deadline_ns() < s.deadline_ns() && s.deadline_ns() < b.deadline_ns());
        assert!(i.priority() < s.priority() && s.priority() < b.priority());
        assert_eq!(i.to_string(), "interactive");
    }

    #[test]
    fn streaming_budgets_scale_with_class_deadlines() {
        for class in SloClass::all() {
            let b = class.streaming_budgets();
            assert_eq!(b.ttft_ns, class.deadline_ns());
            assert_eq!(b.tbt_ns, class.deadline_ns() / 10);
            assert!(b.tbt_ns < b.ttft_ns);
        }
    }

    #[test]
    fn one_shot_profile_pins_the_legacy_shape() {
        let p = SessionProfile::ONE_SHOT;
        assert!(p.is_one_shot());
        assert_eq!(p, SessionProfile::default());
        for id in 0..64 {
            assert_eq!(p.session_len(9, id), 1);
            for iter in 0..4 {
                assert_eq!(p.think_ns(9, id, iter), 0);
            }
        }
    }

    #[test]
    fn session_lengths_are_seeded_uniform_in_range() {
        let p = SessionProfile { min_len: 2, max_len: 5, think_mean_us: 100 };
        assert!(!p.is_one_shot());
        let mut seen = [0usize; 6];
        for id in 0..400 {
            let len = p.session_len(42, id);
            assert_eq!(len, p.session_len(42, id), "pure in (seed, id)");
            assert!((2..=5).contains(&len), "length {len} out of range");
            seen[len as usize] += 1;
        }
        assert!(seen[2..=5].iter().all(|&c| c > 40), "length mix too skewed: {seen:?}");
        // A different seed reshuffles lengths.
        assert!((0..64).any(|id| p.session_len(42, id) != p.session_len(43, id)));
        // A degenerate min > max range clamps to min.
        let bad = SessionProfile { min_len: 4, max_len: 2, think_mean_us: 0 };
        assert_eq!(bad.session_len(1, 7), 4);
        // min_len 0 is clamped to one iteration.
        let zero = SessionProfile { min_len: 0, max_len: 0, think_mean_us: 0 };
        assert_eq!(zero.session_len(1, 7), 1);
    }

    #[test]
    fn think_times_are_seeded_exponential_gaps() {
        let p = SessionProfile { min_len: 2, max_len: 4, think_mean_us: 200 };
        // Iteration 0 never waits; later iterations draw their own stream.
        assert_eq!(p.think_ns(7, 3, 0), 0);
        assert_eq!(p.think_ns(7, 3, 1), p.think_ns(7, 3, 1), "pure in (seed, id, iter)");
        assert!((1..6u32).any(|i| p.think_ns(7, 3, i) != p.think_ns(7, 4, i)));
        // The empirical mean lands near think_mean_us.
        let n = 4000u64;
        let total: u64 = (0..n).map(|id| p.think_ns(7, id, 1)).sum();
        let mean_us = total as f64 / n as f64 / 1_000.0;
        assert!(
            (mean_us - 200.0).abs() < 20.0,
            "think-time mean {mean_us:.1} µs too far from 200 µs"
        );
    }

    #[test]
    fn slo_stream_does_not_perturb_payloads() {
        // The SLO hash draws from its own salted stream: scenario picks and
        // payload tensors must match a generator that never asks for SLOs.
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 9).unwrap();
        let other = RequestGenerator::standard(&MsdaConfig::tiny(), 9).unwrap();
        for id in 0..8 {
            let _ = other.request_slo(id); // consume the SLO stream first…
            let a = gen.request(id);
            let b = other.request(id);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.fmap.tensor(), b.fmap.tensor()); // …payload unmoved
        }
    }

    #[test]
    fn request_stream_mixes_scenarios() {
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 7).unwrap();
        let mut seen = [0usize; 3];
        for id in 0..60 {
            seen[gen.request(id).scenario] += 1;
        }
        assert!(seen.iter().all(|&c| c > 5), "scenario mix too skewed: {seen:?}");
    }

    #[test]
    fn request_fmap_matches_its_scenario_shape() {
        let gen = RequestGenerator::standard(&MsdaConfig::tiny(), 3).unwrap();
        for id in 0..12 {
            let req = gen.request(id);
            let cfg = gen.scenario(req.scenario).unwrap().config();
            assert_eq!(req.fmap.tensor().shape().dims(), &[cfg.n_in(), cfg.d_model]);
        }
        assert!(gen.scenario(3).is_err());
        assert!(RequestGenerator::new(Vec::new(), 1).is_err());
    }
}
