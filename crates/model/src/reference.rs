//! Functional reference implementation of one MSDeformAttn layer (Eq. 1).

use crate::bilinear::Footprint;
use crate::sampling::{query_sample_points_into, reference_points, RefPoint, SamplePoint};
use crate::workload::SaliencyWarp;
use crate::{FmapPyramid, ModelError, MsdaConfig};
use defa_tensor::matmul::{matmul, matmul_row_masked};
use defa_tensor::softmax::softmax_inplace;
use defa_tensor::Tensor;

/// Below this many per-query sampling points / probability elements the
/// per-query loops run sequentially: the scoped-thread helpers have no
/// pool, so a spawn only pays off with real work behind it. Results are
/// identical either way.
const PAR_MIN_ELEMS: usize = 1 << 12;

/// Builds the full sampling-location table for `offsets` (`[n, 2·ppq]`),
/// one query per row, applying the optional saliency warp — the
/// per-query-parallel generation shared by the monolithic forward and the
/// pruned pipeline (both must produce identical geometry, which the golden
/// tests pin).
///
/// Queries are independent, so the table is filled in disjoint
/// `points_per_query` windows in parallel; results are bit-identical for
/// any thread count.
///
/// # Errors
///
/// Returns [`ModelError::ShapeMismatch`] if `offsets` does not have one
/// row of `2·points_per_query` offsets per reference point.
pub fn generate_locations(
    cfg: &MsdaConfig,
    references: &[RefPoint],
    offsets: &Tensor,
    warp: Option<&SaliencyWarp>,
) -> Result<Vec<SamplePoint>, ModelError> {
    let n = references.len();
    let ppq = cfg.points_per_query();
    if offsets.shape().dims() != [n, 2 * ppq] {
        return Err(ModelError::ShapeMismatch(format!(
            "offsets {} expected [{n}, {}]",
            offsets.shape(),
            2 * ppq
        )));
    }
    let odata = offsets.as_slice();
    let mut locations = vec![SamplePoint::new(0, 0.0, 0.0); n * ppq];
    defa_parallel::par_chunks_mut_if(n * ppq >= PAR_MIN_ELEMS, &mut locations, ppq, |i, pts| {
        query_sample_points_into(cfg, references[i], &odata[i * 2 * ppq..(i + 1) * 2 * ppq], pts);
        if let Some(w) = warp {
            for (slot, pt) in pts.iter_mut().enumerate() {
                w.apply(i, slot, pt);
            }
        }
    });
    Ok(locations)
}

/// Learnable weights of one MSDeformAttn layer.
///
/// Following the official Deformable DETR implementation, attention logits
/// and sampling offsets are linear projections of the query:
/// `Wᴬ: [D, N_h·N_l·N_p]`, `Wˢ: [D, 2·N_h·N_l·N_p]`, `Wᵥ: [D, D]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MsdaWeights {
    /// Attention-logit projection.
    pub w_attn: Tensor,
    /// Sampling-offset projection.
    pub w_offset: Tensor,
    /// Value projection.
    pub w_value: Tensor,
}

impl MsdaWeights {
    /// Validates weight shapes against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] on any disagreement.
    pub fn validate(&self, cfg: &MsdaConfig) -> Result<(), ModelError> {
        let ppq = cfg.points_per_query();
        if self.w_attn.shape().dims() != [cfg.d_model, ppq] {
            return Err(ModelError::ShapeMismatch(format!(
                "w_attn {} expected [{}, {ppq}]",
                self.w_attn.shape(),
                cfg.d_model
            )));
        }
        if self.w_offset.shape().dims() != [cfg.d_model, 2 * ppq] {
            return Err(ModelError::ShapeMismatch(format!(
                "w_offset {} expected [{}, {}]",
                self.w_offset.shape(),
                cfg.d_model,
                2 * ppq
            )));
        }
        if self.w_value.shape().dims() != [cfg.d_model, cfg.d_model] {
            return Err(ModelError::ShapeMismatch(format!(
                "w_value {} expected [{0}, {0}]",
                self.w_value.shape()
            )));
        }
        Ok(())
    }
}

/// Everything one layer evaluation produces.
///
/// Intermediates are exposed deliberately (C-INTERMEDIATE): the pruning
/// algorithms consume `probs` and `locations`, the accelerator model
/// consumes `value` and `locations`, and the tests compare `output`.
#[derive(Debug, Clone)]
pub struct LayerOutput {
    /// Raw attention logits, `[N_in, N_h·N_l·N_p]`.
    pub logits: Tensor,
    /// Per-head softmax probabilities, same shape as `logits`.
    pub probs: Tensor,
    /// Sampling offsets, `[N_in, 2·N_h·N_l·N_p]`.
    pub offsets: Tensor,
    /// Sampling locations, one per `(query, head, level, point)` in
    /// [`crate::sampling::point_slot`] order.
    pub locations: Vec<SamplePoint>,
    /// Projected values `V = X·Wᵥ`, `[N_in, D]`.
    pub value: Tensor,
    /// Attention output, `[N_in, D]`.
    pub output: Tensor,
}

/// Masks that restrict a layer evaluation to surviving data.
///
/// `fmap_mask[token]` keeps/drops value rows (FWP); `point_mask[global_slot]`
/// keeps/drops sampling points (PAP), with
/// `global_slot = query · points_per_query + slot`.
#[derive(Debug, Clone, Default)]
pub struct LayerMasks<'a> {
    /// Optional feature-map pixel mask, length `N_in`.
    pub fmap: Option<&'a [bool]>,
    /// Optional sampling-point mask, length `N_in · N_h·N_l·N_p`.
    pub points: Option<&'a [bool]>,
}

/// One MSDeformAttn layer: configuration plus weights.
#[derive(Debug, Clone)]
pub struct MsdaLayer {
    cfg: MsdaConfig,
    weights: MsdaWeights,
    references: Vec<RefPoint>,
}

impl MsdaLayer {
    /// Creates a layer after validating configuration and weight shapes.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`MsdaConfig::validate`] and
    /// [`MsdaWeights::validate`].
    pub fn new(cfg: MsdaConfig, weights: MsdaWeights) -> Result<Self, ModelError> {
        cfg.validate()?;
        weights.validate(&cfg)?;
        let references = reference_points(&cfg)?;
        Ok(MsdaLayer { cfg, weights, references })
    }

    /// The layer's configuration.
    pub fn config(&self) -> &MsdaConfig {
        &self.cfg
    }

    /// The layer's weights.
    pub fn weights(&self) -> &MsdaWeights {
        &self.weights
    }

    /// Normalized reference points, one per query.
    pub fn references(&self) -> &[RefPoint] {
        &self.references
    }

    /// Evaluates the layer exactly (no pruning).
    ///
    /// In the encoder, queries and feature map coincide: `Q = X`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on any shape disagreement.
    pub fn forward(
        &self,
        x: &FmapPyramid,
        warp: Option<&SaliencyWarp>,
    ) -> Result<LayerOutput, ModelError> {
        self.forward_masked(x, warp, &LayerMasks::default())
    }

    /// Evaluates the layer with optional FWP/PAP masks applied.
    ///
    /// Masked fmap pixels are excluded from the value projection (their `V`
    /// rows stay zero, so any sample touching them reads zero — exactly the
    /// accelerator's behaviour after the compression unit drops them).
    /// Masked sampling points are skipped entirely; surviving probabilities
    /// are *not* renormalized, matching the paper's PAP description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if a mask has the wrong length
    /// or the pyramid disagrees with the configuration.
    pub fn forward_masked(
        &self,
        x: &FmapPyramid,
        warp: Option<&SaliencyWarp>,
        masks: &LayerMasks<'_>,
    ) -> Result<LayerOutput, ModelError> {
        let (logits, probs) = self.attention_probs(x)?;
        self.forward_precomputed(x, logits, probs, warp, masks)
    }

    /// Computes only the attention logits and per-head probabilities.
    ///
    /// In the DEFA dataflow (§4.1) this is the *first* stage of the block:
    /// the probabilities feed the point-mask generator (PAP) before the
    /// offset projection and MSGS run, so callers that prune want the
    /// probabilities without the rest of the layer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the pyramid disagrees with
    /// the configuration.
    pub fn attention_probs(&self, x: &FmapPyramid) -> Result<(Tensor, Tensor), ModelError> {
        let cfg = &self.cfg;
        let n = cfg.n_in();
        if x.n_in() != n || x.d() != cfg.d_model {
            return Err(ModelError::ShapeMismatch(format!(
                "pyramid [{} x {}] does not match config [{} x {}]",
                x.n_in(),
                x.d(),
                n,
                cfg.d_model
            )));
        }
        let logits = matmul(x.tensor(), &self.weights.w_attn)?;
        let mut probs = logits.clone();
        let lp = cfg.points_per_head();
        let n_heads = cfg.n_heads;
        let ppq = cfg.points_per_query();
        // Rows are independent distributions: normalize them in parallel.
        defa_parallel::par_chunks_mut_if(
            n * ppq >= PAR_MIN_ELEMS,
            probs.as_mut_slice(),
            ppq,
            |_, row| {
                for h in 0..n_heads {
                    softmax_inplace(&mut row[h * lp..(h + 1) * lp]);
                }
            },
        );
        Ok((logits, probs))
    }

    /// Finishes a block evaluation from precomputed logits/probabilities.
    ///
    /// This is the remainder of the DEFA dataflow: masked offset projection,
    /// masked value projection, MSGS and aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] on any mask or tensor shape
    /// disagreement.
    pub fn forward_precomputed(
        &self,
        x: &FmapPyramid,
        logits: Tensor,
        probs: Tensor,
        warp: Option<&SaliencyWarp>,
        masks: &LayerMasks<'_>,
    ) -> Result<LayerOutput, ModelError> {
        let cfg = &self.cfg;
        let n = cfg.n_in();
        let ppq = cfg.points_per_query();
        if probs.shape().dims() != [n, ppq] || logits.shape().dims() != [n, ppq] {
            return Err(ModelError::ShapeMismatch(format!(
                "probs {} expected [{n}, {ppq}]",
                probs.shape()
            )));
        }
        if let Some(fm) = masks.fmap {
            if fm.len() != n {
                return Err(ModelError::ShapeMismatch(format!(
                    "fmap mask length {} expected {n}",
                    fm.len()
                )));
            }
        }
        if let Some(pm) = masks.points {
            if pm.len() != n * ppq {
                return Err(ModelError::ShapeMismatch(format!(
                    "point mask length {} expected {}",
                    pm.len(),
                    n * ppq
                )));
            }
        }

        let q = x.tensor();
        let offsets = matmul(q, &self.weights.w_offset)?;

        let locations = generate_locations(cfg, &self.references, &offsets, warp)?;

        let value = match masks.fmap {
            Some(fm) => matmul_row_masked(q, &self.weights.w_value, fm)?,
            None => matmul(q, &self.weights.w_value)?,
        };

        let output = self.sample_and_aggregate(&probs, &locations, &value, masks.points)?;

        Ok(LayerOutput { logits, probs, offsets, locations, value, output })
    }

    /// MSGS + aggregation: bilinear-samples `value` at every surviving
    /// location and sums probability-weighted samples per head.
    ///
    /// Exposed so external drivers (pruned pipelines, the accelerator
    /// model) can substitute their own location tables — e.g. after range
    /// clamping — while reusing the golden sampling/aggregation kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if tensor shapes disagree with the
    /// configuration.
    pub fn sample_and_aggregate(
        &self,
        probs: &Tensor,
        locations: &[SamplePoint],
        value: &Tensor,
        point_mask: Option<&[bool]>,
    ) -> Result<Tensor, ModelError> {
        let mut output = Tensor::zeros([0]);
        self.sample_and_aggregate_into(probs, locations, value, point_mask, &mut output)?;
        Ok(output)
    }

    /// [`MsdaLayer::sample_and_aggregate`] writing into a caller-provided
    /// tensor (allocation reused when large enough) — the allocation-free
    /// entry point for per-block drivers.
    ///
    /// Queries are independent, so their output rows are computed in
    /// parallel; each row's neighbor accumulation runs in the same fixed
    /// order regardless of thread count, so results are bit-identical to
    /// the sequential evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if tensor shapes disagree with the
    /// configuration.
    pub fn sample_and_aggregate_into(
        &self,
        probs: &Tensor,
        locations: &[SamplePoint],
        value: &Tensor,
        point_mask: Option<&[bool]>,
        output: &mut Tensor,
    ) -> Result<(), ModelError> {
        let cfg = &self.cfg;
        // The number of queries is the probability tensor's row count:
        // it equals `n_in` for encoder self-attention but is the object
        // query count for decoder cross-attention. The column count must
        // be exactly points_per_query — the parallel loop below indexes
        // rows by that stride.
        if probs.shape().rank() != 2 || probs.shape().dims()[1] != cfg.points_per_query() {
            return Err(ModelError::ShapeMismatch(format!(
                "probs {} expected [n, {}]",
                probs.shape(),
                cfg.points_per_query()
            )));
        }
        let n = probs.shape().dims()[0];
        if locations.len() != n * cfg.points_per_query() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} locations for {} queries x {} points",
                locations.len(),
                n,
                cfg.points_per_query()
            )));
        }
        let d = cfg.d_model;
        let dh = cfg.head_dim();
        let ppq = cfg.points_per_query();
        let lp = cfg.points_per_head();
        let n_heads = cfg.n_heads;
        let vdata = value.as_slice();
        let pdata = probs.as_slice();

        // Per-level base token offsets for direct indexing into `value`.
        let mut level_base = Vec::with_capacity(cfg.n_levels());
        for l in 0..cfg.n_levels() {
            level_base.push(cfg.level_offset(l)?);
        }
        let level_base = &level_base[..];

        output.resize_reuse([n, d]);
        // Each query's aggregation walks ppq points x 4 neighbors x dh
        // channels — substantial, so the gate is on the point count alone.
        let parallel = n * ppq >= PAR_MIN_ELEMS / 4;
        defa_parallel::par_chunks_mut_if(parallel, output.as_mut_slice(), d, |i, orow_all| {
            orow_all.fill(0.0);
            let prow = &pdata[i * ppq..(i + 1) * ppq];
            for h in 0..n_heads {
                let chan0 = h * dh;
                let orow = &mut orow_all[chan0..chan0 + dh];
                for s in 0..lp {
                    let slot = h * lp + s;
                    let gslot = i * ppq + slot;
                    if let Some(pm) = point_mask {
                        if !pm[gslot] {
                            continue;
                        }
                    }
                    let w = prow[slot];
                    if w == 0.0 {
                        continue;
                    }
                    let pt = locations[gslot];
                    let shape = cfg.levels[pt.level as usize];
                    let base = level_base[pt.level as usize];
                    let fp = Footprint::at(pt.x, pt.y);
                    for nb in fp.in_bounds(shape) {
                        if nb.weight == 0.0 {
                            continue;
                        }
                        let token = base + nb.y as usize * shape.w + nb.x as usize;
                        let px = &vdata[token * d + chan0..token * d + chan0 + dh];
                        let ww = w * nb.weight;
                        for (o, &v) in orow.iter_mut().zip(px) {
                            *o += ww * v;
                        }
                    }
                }
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Benchmark, SyntheticWorkload};
    use defa_tensor::rng::TensorRng;

    fn tiny_layer(seed: u64) -> (MsdaConfig, MsdaLayer, FmapPyramid) {
        let cfg = MsdaConfig::tiny();
        let mut rng = TensorRng::seed_from(seed);
        let weights = MsdaWeights {
            w_attn: rng.normal([cfg.d_model, cfg.points_per_query()], 0.0, 0.5),
            w_offset: rng.normal([cfg.d_model, 2 * cfg.points_per_query()], 0.0, 0.3),
            w_value: rng.normal([cfg.d_model, cfg.d_model], 0.0, 0.2),
        };
        let layer = MsdaLayer::new(cfg.clone(), weights).unwrap();
        let x = rng.uniform([cfg.n_in(), cfg.d_model], -1.0, 1.0);
        let pyramid = FmapPyramid::from_tensor(&cfg, x).unwrap();
        (cfg, layer, pyramid)
    }

    #[test]
    fn output_shapes_are_correct() {
        let (cfg, layer, x) = tiny_layer(1);
        let out = layer.forward(&x, None).unwrap();
        assert_eq!(out.output.shape().dims(), &[cfg.n_in(), cfg.d_model]);
        assert_eq!(out.probs.shape().dims(), &[cfg.n_in(), cfg.points_per_query()]);
        assert_eq!(out.locations.len(), cfg.n_in() * cfg.points_per_query());
    }

    #[test]
    fn per_head_probabilities_sum_to_one() {
        let (cfg, layer, x) = tiny_layer(2);
        let out = layer.forward(&x, None).unwrap();
        let lp = cfg.points_per_head();
        for i in [0usize, 7, cfg.n_in() - 1] {
            let row = out.probs.row(i).unwrap();
            for h in 0..cfg.n_heads {
                let s: f32 = row[h * lp..(h + 1) * lp].iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "query {i} head {h}: {s}");
            }
        }
    }

    #[test]
    fn weight_validation_catches_mismatches() {
        let cfg = MsdaConfig::tiny();
        let bad = MsdaWeights {
            w_attn: Tensor::zeros([cfg.d_model, 3]),
            w_offset: Tensor::zeros([cfg.d_model, 2 * cfg.points_per_query()]),
            w_value: Tensor::zeros([cfg.d_model, cfg.d_model]),
        };
        assert!(MsdaLayer::new(cfg, bad).is_err());
    }

    #[test]
    fn all_true_masks_match_unmasked_forward() {
        let (cfg, layer, x) = tiny_layer(3);
        let exact = layer.forward(&x, None).unwrap();
        let fmap_mask = vec![true; cfg.n_in()];
        let point_mask = vec![true; cfg.n_in() * cfg.points_per_query()];
        let masked = layer
            .forward_masked(
                &x,
                None,
                &LayerMasks { fmap: Some(&fmap_mask), points: Some(&point_mask) },
            )
            .unwrap();
        assert!(masked.output.relative_l2_error(&exact.output).unwrap() < 1e-6);
    }

    #[test]
    fn all_false_point_mask_zeroes_output() {
        let (cfg, layer, x) = tiny_layer(4);
        let point_mask = vec![false; cfg.n_in() * cfg.points_per_query()];
        let masked = layer
            .forward_masked(&x, None, &LayerMasks { fmap: None, points: Some(&point_mask) })
            .unwrap();
        assert_eq!(masked.output.max_abs(), 0.0);
    }

    #[test]
    fn masking_low_probability_points_changes_little() {
        let (cfg, layer, x) = tiny_layer(5);
        let exact = layer.forward(&x, None).unwrap();
        // Drop points with probability < 1%: output should barely move.
        let ppq = cfg.points_per_query();
        let mut mask = vec![true; cfg.n_in() * ppq];
        for i in 0..cfg.n_in() {
            let row = exact.probs.row(i).unwrap();
            for s in 0..ppq {
                if row[s] < 0.01 {
                    mask[i * ppq + s] = false;
                }
            }
        }
        let pruned = layer
            .forward_masked(&x, None, &LayerMasks { fmap: None, points: Some(&mask) })
            .unwrap();
        let err = pruned.output.relative_l2_error(&exact.output).unwrap();
        assert!(err < 0.05, "err={err}");
    }

    #[test]
    fn mask_length_is_validated() {
        let (_, layer, x) = tiny_layer(6);
        let short = vec![true; 3];
        assert!(layer
            .forward_masked(&x, None, &LayerMasks { fmap: Some(&short), points: None })
            .is_err());
        assert!(layer
            .forward_masked(&x, None, &LayerMasks { fmap: None, points: Some(&short) })
            .is_err());
    }

    #[test]
    fn warp_changes_sampling_locations() {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 9).unwrap();
        let layer = wl.layer(0).unwrap();
        let plain = layer.forward(wl.initial_fmap(), None).unwrap();
        let warped = layer.forward(wl.initial_fmap(), Some(wl.warp())).unwrap();
        assert_ne!(plain.locations, warped.locations);
    }

    #[test]
    fn pyramid_shape_mismatch_is_rejected() {
        let (_, layer, _) = tiny_layer(7);
        let other_cfg = MsdaConfig::small();
        let x = FmapPyramid::from_tensor(
            &other_cfg,
            Tensor::zeros([other_cfg.n_in(), other_cfg.d_model]),
        )
        .unwrap();
        assert!(layer.forward(&x, None).is_err());
    }
}
