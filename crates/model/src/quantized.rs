//! Integer-domain MSDeformAttn execution.
//!
//! [`crate::reference`] emulates INT-N inference with fake-quantized `f32`
//! arithmetic; this module runs the projections with *real* integer GEMMs
//! ([`defa_tensor::qlinear`]), the way the INT12 PE array computes. The
//! two paths must agree to within accumulation rounding, which the tests
//! check — this is the software golden model for the hardware datapath.

use crate::reference::{LayerOutput, MsdaLayer};
use crate::workload::SaliencyWarp;
use crate::{FmapPyramid, ModelError};
use defa_tensor::qlinear::matmul_q;
use defa_tensor::softmax::softmax_inplace;
use defa_tensor::{QTensor, QuantParams, Tensor};

/// A layer with pre-quantized weights ready for integer execution.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    layer: MsdaLayer,
    bits: u8,
    qw_attn: QTensor,
    qw_offset: QTensor,
    qw_value: QTensor,
}

impl QuantizedLayer {
    /// Quantizes a layer's weights to `bits` with fitted symmetric scales.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for unsupported bit widths.
    pub fn from_layer(layer: &MsdaLayer, bits: u8) -> Result<Self, ModelError> {
        let q = |t: &Tensor| -> Result<QTensor, ModelError> {
            Ok(QuantParams::fit(t, bits)
                .map_err(|e| ModelError::InvalidConfig(e.to_string()))?
                .quantize(t))
        };
        let w = layer.weights();
        Ok(QuantizedLayer {
            layer: layer.clone(),
            bits,
            qw_attn: q(&w.w_attn)?,
            qw_offset: q(&w.w_offset)?,
            qw_value: q(&w.w_value)?,
        })
    }

    /// The quantization bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The underlying float layer.
    pub fn layer(&self) -> &MsdaLayer {
        &self.layer
    }

    /// Evaluates the layer with integer-GEMM projections.
    ///
    /// Activations are quantized at the layer boundary, multiplied in the
    /// integer domain with wide accumulation, and dequantized once per
    /// output — exactly the PE array's MM-mode arithmetic. Sampling and
    /// aggregation then run on the dequantized values (the BA datapath's
    /// fixed-point error is modeled separately in
    /// `defa_arch::bi_datapath`).
    ///
    /// # Errors
    ///
    /// Propagates shape and quantizer errors.
    pub fn forward(
        &self,
        x: &FmapPyramid,
        warp: Option<&SaliencyWarp>,
    ) -> Result<LayerOutput, ModelError> {
        let cfg = self.layer.config();
        let n = cfg.n_in();
        let quant_err = |e: defa_tensor::TensorError| ModelError::InvalidConfig(e.to_string());
        let qx = QuantParams::fit(x.tensor(), self.bits).map_err(quant_err)?.quantize(x.tensor());

        let (logits, _) = matmul_q(&qx, &self.qw_attn)?;
        let mut probs = logits.clone();
        let lp = cfg.points_per_head();
        for r in 0..n {
            let row = probs.row_mut(r)?;
            for h in 0..cfg.n_heads {
                softmax_inplace(&mut row[h * lp..(h + 1) * lp]);
            }
        }

        let (offsets, _) = matmul_q(&qx, &self.qw_offset)?;
        let mut locations = Vec::with_capacity(n * cfg.points_per_query());
        for i in 0..n {
            let mut pts = crate::sampling::query_sample_points(
                cfg,
                self.layer.references()[i],
                offsets.row(i)?,
            );
            if let Some(w) = warp {
                for (slot, pt) in pts.iter_mut().enumerate() {
                    w.apply(i, slot, pt);
                }
            }
            locations.extend_from_slice(&pts);
        }

        let (value, _) = matmul_q(&qx, &self.qw_value)?;
        let output = self.layer.sample_and_aggregate(&probs, &locations, &value, None)?;
        Ok(LayerOutput { logits, probs, offsets, locations, value, output })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Benchmark, SyntheticWorkload};
    use crate::MsdaConfig;

    fn setup() -> (SyntheticWorkload, QuantizedLayer) {
        let cfg = MsdaConfig::tiny();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 31).unwrap();
        let q = QuantizedLayer::from_layer(wl.layer(0).unwrap(), 12).unwrap();
        (wl, q)
    }

    #[test]
    fn integer_execution_tracks_float_reference() {
        let (wl, q) = setup();
        let float = wl.layer(0).unwrap().forward(wl.initial_fmap(), None).unwrap();
        let int = q.forward(wl.initial_fmap(), None).unwrap();
        let err = int.output.relative_l2_error(&float.output).unwrap();
        assert!(err < 0.05, "INT12 layer error {err}");
    }

    #[test]
    fn int8_diverges_more_than_int12() {
        let (wl, _) = setup();
        let float = wl.layer(0).unwrap().forward(wl.initial_fmap(), None).unwrap();
        let q12 = QuantizedLayer::from_layer(wl.layer(0).unwrap(), 12).unwrap();
        let q8 = QuantizedLayer::from_layer(wl.layer(0).unwrap(), 8).unwrap();
        let e12 = q12
            .forward(wl.initial_fmap(), None)
            .unwrap()
            .output
            .relative_l2_error(&float.output)
            .unwrap();
        let e8 = q8
            .forward(wl.initial_fmap(), None)
            .unwrap()
            .output
            .relative_l2_error(&float.output)
            .unwrap();
        assert!(e8 > e12, "e8={e8} e12={e12}");
    }

    #[test]
    fn integer_path_agrees_with_fake_quantization_closely() {
        // Fake-quantized f32 (the pipeline's emulation) and true integer
        // GEMM differ only by accumulation order; outputs must be close.
        let (wl, q) = setup();
        let layer = wl.layer(0).unwrap();
        let w = layer.weights();
        let fake = crate::reference::MsdaWeights {
            w_attn: QuantParams::fit(&w.w_attn, 12).unwrap().fake_quantize(&w.w_attn),
            w_offset: QuantParams::fit(&w.w_offset, 12).unwrap().fake_quantize(&w.w_offset),
            w_value: QuantParams::fit(&w.w_value, 12).unwrap().fake_quantize(&w.w_value),
        };
        let fake_layer = MsdaLayer::new(layer.config().clone(), fake).unwrap();
        let x = wl.initial_fmap();
        let xq = FmapPyramid::from_tensor(
            layer.config(),
            QuantParams::fit(x.tensor(), 12).unwrap().fake_quantize(x.tensor()),
        )
        .unwrap();
        let emulated = fake_layer.forward(&xq, None).unwrap();
        let integer = q.forward(x, None).unwrap();
        let err = integer.output.relative_l2_error(&emulated.output).unwrap();
        assert!(err < 0.02, "integer vs fake-quant divergence {err}");
    }

    #[test]
    fn warp_applies_in_integer_path_too() {
        let (wl, q) = setup();
        let plain = q.forward(wl.initial_fmap(), None).unwrap();
        let warped = q.forward(wl.initial_fmap(), Some(wl.warp())).unwrap();
        assert_ne!(plain.locations, warped.locations);
    }

    #[test]
    fn unsupported_bits_are_rejected() {
        let (wl, _) = setup();
        assert!(QuantizedLayer::from_layer(wl.layer(0).unwrap(), 1).is_err());
        assert!(QuantizedLayer::from_layer(wl.layer(0).unwrap(), 17).is_err());
    }
}
