//! Reference points and sampling-location generation.
//!
//! Each encoder query corresponds to one pixel of the pyramid. Its
//! *reference point* is the normalized center of that pixel, re-projected
//! into every level; the learned offsets `ΔP = Q·Wˢ` (in pixels of the
//! target level) displace it to produce the actual sampling locations.

use crate::{LevelShape, ModelError, MsdaConfig};

/// A continuous sampling location in the pixel space of one pyramid level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Pyramid level index the point samples from.
    pub level: u8,
    /// Column coordinate in that level's pixel space.
    pub x: f32,
    /// Row coordinate in that level's pixel space.
    pub y: f32,
}

impl SamplePoint {
    /// Creates a sample point.
    pub fn new(level: u8, x: f32, y: f32) -> Self {
        SamplePoint { level, x, y }
    }
}

/// Normalized `(x, y)` reference point in `[0, 1]²` of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefPoint {
    /// Normalized column in `[0, 1]`.
    pub x: f32,
    /// Normalized row in `[0, 1]`.
    pub y: f32,
}

impl RefPoint {
    /// Projects the normalized point into a level's pixel space (continuous
    /// coordinates where pixel centers sit at integer positions).
    pub fn to_level(self, shape: LevelShape) -> (f32, f32) {
        (self.x * shape.w as f32 - 0.5, self.y * shape.h as f32 - 0.5)
    }
}

/// Computes the normalized reference point of every query in token order.
///
/// Query `i` lives at pixel `(y, x)` of level `l`; its reference point is
/// the pixel center `((x + 0.5)/W_l, (y + 0.5)/H_l)`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] if `cfg` fails validation.
pub fn reference_points(cfg: &MsdaConfig) -> Result<Vec<RefPoint>, ModelError> {
    cfg.validate()?;
    let mut pts = Vec::with_capacity(cfg.n_in());
    for shape in &cfg.levels {
        for y in 0..shape.h {
            for x in 0..shape.w {
                pts.push(RefPoint {
                    x: (x as f32 + 0.5) / shape.w as f32,
                    y: (y as f32 + 0.5) / shape.h as f32,
                });
            }
        }
    }
    Ok(pts)
}

/// Flat index of the `(head, level, point)` slot within one query's
/// sampling-point table.
///
/// All per-point tensors in this workspace (logits, probabilities, offsets,
/// locations, masks) use this `((h·N_l) + l)·N_p + p` ordering.
pub fn point_slot(cfg: &MsdaConfig, head: usize, level: usize, point: usize) -> usize {
    (head * cfg.n_levels() + level) * cfg.n_points + point
}

/// Builds the sampling locations for one query from its offset row.
///
/// `offsets` holds `2·N_h·N_l·N_p` values ordered as
/// `[slot][dx, dy]` with [`point_slot`] slot ordering; offsets are expressed
/// in pixels of the target level, as in the official implementation after
/// multiplying by the offset normalizer.
pub fn query_sample_points(
    cfg: &MsdaConfig,
    reference: RefPoint,
    offsets: &[f32],
) -> Vec<SamplePoint> {
    let mut out = vec![SamplePoint::new(0, 0.0, 0.0); cfg.points_per_query()];
    query_sample_points_into(cfg, reference, offsets, &mut out);
    out
}

/// Allocation-free variant of [`query_sample_points`]: writes the query's
/// `points_per_query` locations into `out` in [`point_slot`] order.
///
/// The pruned-encoder hot loop fills one big location table per block with
/// this, one disjoint `out` window per query, which is what makes the
/// per-query parallel generation allocation-free and deterministic.
pub fn query_sample_points_into(
    cfg: &MsdaConfig,
    reference: RefPoint,
    offsets: &[f32],
    out: &mut [SamplePoint],
) {
    debug_assert_eq!(offsets.len(), 2 * cfg.points_per_query());
    debug_assert_eq!(out.len(), cfg.points_per_query());
    for h in 0..cfg.n_heads {
        for (l, &shape) in cfg.levels.iter().enumerate() {
            let (cx, cy) = reference.to_level(shape);
            for p in 0..cfg.n_points {
                let slot = point_slot(cfg, h, l, p);
                let dx = offsets[2 * slot];
                let dy = offsets[2 * slot + 1];
                out[slot] = SamplePoint::new(l as u8, cx + dx, cy + dy);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_points_are_pixel_centers() {
        let cfg = MsdaConfig::tiny();
        let pts = reference_points(&cfg).unwrap();
        assert_eq!(pts.len(), cfg.n_in());
        // First query: level 0 pixel (0,0) of a 6x8 level.
        assert!((pts[0].x - 0.5 / 8.0).abs() < 1e-6);
        assert!((pts[0].y - 0.5 / 6.0).abs() < 1e-6);
        // Query at level-1 pixel (2,3) of a 3x4 level.
        let idx = cfg.level_offset(1).unwrap() + 2 * 4 + 3;
        assert!((pts[idx].x - 3.5 / 4.0).abs() < 1e-6);
        assert!((pts[idx].y - 2.5 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn to_level_maps_center_to_middle_pixel() {
        let r = RefPoint { x: 0.5, y: 0.5 };
        let (x, y) = r.to_level(LevelShape::new(4, 8));
        assert!((x - 3.5).abs() < 1e-6);
        assert!((y - 1.5).abs() < 1e-6);
    }

    #[test]
    fn point_slot_is_dense_and_ordered() {
        let cfg = MsdaConfig::tiny(); // 2 heads, 2 levels, 2 points
        let mut seen = vec![false; cfg.points_per_query()];
        for h in 0..2 {
            for l in 0..2 {
                for p in 0..2 {
                    let s = point_slot(&cfg, h, l, p);
                    assert!(!seen[s]);
                    seen[s] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(point_slot(&cfg, 0, 0, 0), 0);
        assert_eq!(point_slot(&cfg, 0, 0, 1), 1);
        assert_eq!(point_slot(&cfg, 0, 1, 0), 2);
        assert_eq!(point_slot(&cfg, 1, 0, 0), 4);
    }

    #[test]
    fn zero_offsets_sample_at_reference() {
        let cfg = MsdaConfig::tiny();
        let r = RefPoint { x: 0.5, y: 0.5 };
        let offsets = vec![0.0; 2 * cfg.points_per_query()];
        let pts = query_sample_points(&cfg, r, &offsets);
        assert_eq!(pts.len(), cfg.points_per_query());
        // Level 0 (6x8): center = (3.5, 2.5); level 1 (3x4): center = (1.5, 1.0).
        assert_eq!(pts[0].level, 0);
        assert!((pts[0].x - 3.5).abs() < 1e-6 && (pts[0].y - 2.5).abs() < 1e-6);
        let l1 = point_slot(&cfg, 0, 1, 0);
        assert_eq!(pts[l1].level, 1);
        assert!((pts[l1].x - 1.5).abs() < 1e-6 && (pts[l1].y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn offsets_displace_in_level_pixels() {
        let cfg = MsdaConfig::tiny();
        let r = RefPoint { x: 0.5, y: 0.5 };
        let mut offsets = vec![0.0; 2 * cfg.points_per_query()];
        let slot = point_slot(&cfg, 1, 1, 1);
        offsets[2 * slot] = -1.25; // dx
        offsets[2 * slot + 1] = 2.0; // dy
        let pts = query_sample_points(&cfg, r, &offsets);
        assert!((pts[slot].x - (1.5 - 1.25)).abs() < 1e-6);
        assert!((pts[slot].y - (1.0 + 2.0)).abs() < 1e-6);
    }

    #[test]
    fn points_stay_in_their_reference_level() {
        // §4.2: "sampling points are only located in the same level of
        // multi-scale fmaps as their reference points".
        let cfg = MsdaConfig::tiny();
        let r = RefPoint { x: 0.25, y: 0.75 };
        let offsets = vec![0.5; 2 * cfg.points_per_query()];
        for (i, pt) in query_sample_points(&cfg, r, &offsets).iter().enumerate() {
            let level = (i / cfg.n_points) % cfg.n_levels();
            assert_eq!(pt.level as usize, level);
        }
    }
}
