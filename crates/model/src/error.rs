//! Error type for the model crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or evaluating MSDeformAttn models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A configuration failed validation.
    InvalidConfig(String),
    /// A tensor operation failed.
    Tensor(defa_tensor::TensorError),
    /// An index (layer, level, query…) was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// Provided data did not match the configuration shapes.
    ShapeMismatch(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range for {len} entries")
            }
            ModelError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<defa_tensor::TensorError> for ModelError {
    fn from(e: defa_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_errors() {
        let te = defa_tensor::TensorError::IndexOutOfBounds { index: 3, len: 2 };
        let me: ModelError = te.clone().into();
        assert!(me.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&me).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ModelError>();
    }
}
