//! Multi-scale feature-map pyramid storage.

use crate::{LevelShape, ModelError, MsdaConfig};
use defa_tensor::Tensor;

/// Flattened multi-scale feature maps, `X ∈ R^{N_in × D}`.
///
/// Levels are stored back to back in token order (finest level first), which
/// is exactly the layout the Deformable DETR family uses and the layout the
/// accelerator's DRAM model streams.
///
/// # Example
///
/// ```
/// use defa_model::{FmapPyramid, MsdaConfig};
/// use defa_tensor::Tensor;
///
/// # fn main() -> Result<(), defa_model::ModelError> {
/// let cfg = MsdaConfig::tiny();
/// let pyramid = FmapPyramid::from_tensor(&cfg, Tensor::zeros([cfg.n_in(), cfg.d_model]))?;
/// assert_eq!(pyramid.pixel(0, 0, 0)?.len(), cfg.d_model);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FmapPyramid {
    levels: Vec<LevelShape>,
    d: usize,
    data: Tensor,
}

impl FmapPyramid {
    /// Wraps an `[N_in, D]` tensor as a pyramid described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the tensor shape does not
    /// equal `[cfg.n_in(), cfg.d_model]`.
    pub fn from_tensor(cfg: &MsdaConfig, data: Tensor) -> Result<Self, ModelError> {
        if data.shape().dims() != [cfg.n_in(), cfg.d_model] {
            return Err(ModelError::ShapeMismatch(format!(
                "fmap tensor {} does not match config [{}, {}]",
                data.shape(),
                cfg.n_in(),
                cfg.d_model
            )));
        }
        Ok(FmapPyramid { levels: cfg.levels.clone(), d: cfg.d_model, data })
    }

    /// Level shapes, finest first.
    pub fn levels(&self) -> &[LevelShape] {
        &self.levels
    }

    /// Number of pyramid levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Hidden dimension `D`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Total token count `N_in`.
    pub fn n_in(&self) -> usize {
        self.levels.iter().map(LevelShape::pixels).sum()
    }

    /// The flattened `[N_in, D]` tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.data
    }

    /// Consumes the pyramid, returning the flattened tensor.
    pub fn into_tensor(self) -> Tensor {
        self.data
    }

    /// Flat token offset of the first pixel of level `l`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndexOutOfRange`] for an invalid level.
    pub fn level_offset(&self, l: usize) -> Result<usize, ModelError> {
        if l >= self.levels.len() {
            return Err(ModelError::IndexOutOfRange {
                what: "level",
                index: l,
                len: self.levels.len(),
            });
        }
        Ok(self.levels[..l].iter().map(LevelShape::pixels).sum())
    }

    /// Flat token index of pixel `(y, x)` in level `l`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndexOutOfRange`] if the level or coordinates
    /// are out of range.
    pub fn token_index(&self, l: usize, y: usize, x: usize) -> Result<usize, ModelError> {
        let base = self.level_offset(l)?;
        let shape = self.levels[l];
        if y >= shape.h {
            return Err(ModelError::IndexOutOfRange { what: "row", index: y, len: shape.h });
        }
        if x >= shape.w {
            return Err(ModelError::IndexOutOfRange { what: "col", index: x, len: shape.w });
        }
        Ok(base + y * shape.w + x)
    }

    /// Pixel vector at `(level, y, x)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FmapPyramid::token_index`].
    pub fn pixel(&self, l: usize, y: usize, x: usize) -> Result<&[f32], ModelError> {
        let t = self.token_index(l, y, x)?;
        Ok(self.data.row(t)?)
    }

    /// Pixel vector by flat token index.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Tensor`] if `token >= n_in()`.
    pub fn token(&self, token: usize) -> Result<&[f32], ModelError> {
        Ok(self.data.row(token)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_tensor::rng::TensorRng;

    fn make() -> (MsdaConfig, FmapPyramid) {
        let cfg = MsdaConfig::tiny();
        let mut rng = TensorRng::seed_from(1);
        let t = rng.uniform([cfg.n_in(), cfg.d_model], -1.0, 1.0);
        let p = FmapPyramid::from_tensor(&cfg, t).unwrap();
        (cfg, p)
    }

    #[test]
    fn shape_validation() {
        let cfg = MsdaConfig::tiny();
        assert!(FmapPyramid::from_tensor(&cfg, Tensor::zeros([3, 3])).is_err());
        assert!(FmapPyramid::from_tensor(&cfg, Tensor::zeros([cfg.n_in(), cfg.d_model])).is_ok());
    }

    #[test]
    fn token_index_matches_config() {
        let (cfg, p) = make();
        for token in 0..cfg.n_in() {
            let (l, y, x) = cfg.token_coords(token).unwrap();
            assert_eq!(p.token_index(l, y, x).unwrap(), token);
        }
    }

    #[test]
    fn pixel_equals_token_row() {
        let (_, p) = make();
        assert_eq!(p.pixel(1, 2, 3).unwrap(), p.token(p.token_index(1, 2, 3).unwrap()).unwrap());
    }

    #[test]
    fn bounds_are_checked() {
        let (_, p) = make();
        assert!(p.pixel(0, 6, 0).is_err());
        assert!(p.pixel(0, 0, 8).is_err());
        assert!(p.pixel(2, 0, 0).is_err());
    }

    #[test]
    fn into_tensor_round_trips() {
        let (cfg, p) = make();
        let t = p.clone().into_tensor();
        assert_eq!(t.shape().dims(), &[cfg.n_in(), cfg.d_model]);
    }
}
