//! Functional reference model of multi-scale deformable attention
//! (MSDeformAttn) and the benchmark workloads used by the DEFA paper.
//!
//! The crate implements the operator of Eq. 1 of the paper end to end in
//! `f32`:
//!
//! 1. attention logits `Q·Wᴬ` and per-head softmax over the `N_l·N_p`
//!    sampling points ([`mod@reference`]),
//! 2. sampling offsets `ΔP = Q·Wˢ` added to per-level reference points
//!    ([`sampling`]),
//! 3. value projection `V = X·Wᵥ`,
//! 4. multi-scale grid-sampling via bilinear interpolation ([`bilinear`]),
//! 5. probability-weighted aggregation and head concatenation.
//!
//! On top of the single layer, [`encoder`] stacks residual MSDeformAttn
//! blocks the way the Deformable-DETR-family encoders do, which is what
//! makes frequency-weighted pruning across consecutive blocks meaningful.
//! [`workload`] generates synthetic-but-statistically-faithful benchmark
//! instances (De DETR / DN-DETR / DINO shapes, skewed attention
//! probabilities, persistent sampling hotspots), [`detection`] provides the
//! accuracy-proxy metric, and [`flops`] the operation accounting behind the
//! paper's computational-properties analysis (§2.2).
//!
//! # Example
//!
//! ```
//! use defa_model::config::MsdaConfig;
//! use defa_model::workload::{Benchmark, SyntheticWorkload};
//!
//! # fn main() -> Result<(), defa_model::ModelError> {
//! let cfg = MsdaConfig::tiny();
//! let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 42)?;
//! let out = wl.layer(0)?.forward(wl.initial_fmap(), Some(wl.warp()))?;
//! assert_eq!(out.output.shape().dims(), &[cfg.n_in(), cfg.d_model]);
//! # Ok(())
//! # }
//! ```

pub mod bilinear;
pub mod config;
pub mod decoder;
pub mod detection;
pub mod encoder;
pub mod error;
pub mod flops;
pub mod fmap;
pub mod quantized;
pub mod reference;
pub mod sampling;
pub mod workload;

pub use config::{LevelShape, MsdaConfig};
pub use error::ModelError;
pub use fmap::FmapPyramid;
pub use reference::{LayerOutput, MsdaLayer, MsdaWeights};
pub use sampling::SamplePoint;
pub use workload::{
    Benchmark, InferenceRequest, RequestGenerator, RequestScenario, SessionProfile,
    StreamingBudget, SyntheticWorkload,
};
