//! Decoder cross-attention (extension beyond the paper's evaluation).
//!
//! The paper evaluates MSDeformAttn in the *encoders* (§5.1.1), but the
//! DETR-family decoders use the same operator as cross-attention: a few
//! hundred object queries — each with a learned normalized reference point
//! — sample the encoder's multi-scale memory. This module implements that
//! variant so downstream users can run full detector stacks; the pruning
//! algorithms apply unchanged (PAP on the query probabilities, FWP on the
//! memory pixels across decoder blocks).

use crate::reference::{MsdaLayer, MsdaWeights};
use crate::sampling::{query_sample_points, RefPoint};
use crate::workload::Benchmark;
use crate::{FmapPyramid, ModelError, MsdaConfig};
use defa_tensor::matmul::{matmul, matmul_row_masked};
use defa_tensor::rng::TensorRng;
use defa_tensor::softmax::softmax_inplace;
use defa_tensor::Tensor;

/// Decoder stack shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Object queries (including denoising groups where applicable).
    pub n_queries: usize,
    /// Number of decoder layers.
    pub n_layers: usize,
}

impl DecoderConfig {
    /// The paper benchmarks' decoder shapes: Deformable DETR uses 300
    /// object queries; DN-DETR and DINO add denoising query groups.
    pub fn for_benchmark(bench: Benchmark) -> Self {
        match bench {
            Benchmark::DeformableDetr => DecoderConfig { n_queries: 300, n_layers: 6 },
            Benchmark::DnDetr => DecoderConfig { n_queries: 300 + 200, n_layers: 6 },
            Benchmark::Dino => DecoderConfig { n_queries: 900 + 200, n_layers: 6 },
        }
    }

    /// A reduced shape for tests.
    pub fn tiny() -> Self {
        DecoderConfig { n_queries: 12, n_layers: 2 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] on zero-sized dimensions.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.n_queries == 0 || self.n_layers == 0 {
            return Err(ModelError::InvalidConfig("zero-sized decoder dimension".into()));
        }
        Ok(())
    }
}

/// One decoder cross-attention layer: object queries sampling the encoder
/// memory.
#[derive(Debug, Clone)]
pub struct CrossMsdaLayer {
    inner: MsdaLayer,
    references: Vec<RefPoint>,
}

impl CrossMsdaLayer {
    /// Creates a cross-attention layer over `cfg`-shaped memory with one
    /// learned reference point per query.
    ///
    /// # Errors
    ///
    /// Propagates configuration and weight validation failures; rejects an
    /// empty reference list.
    pub fn new(
        cfg: MsdaConfig,
        weights: MsdaWeights,
        references: Vec<RefPoint>,
    ) -> Result<Self, ModelError> {
        if references.is_empty() {
            return Err(ModelError::InvalidConfig("no query reference points".into()));
        }
        Ok(CrossMsdaLayer { inner: MsdaLayer::new(cfg, weights)?, references })
    }

    /// Number of object queries.
    pub fn n_queries(&self) -> usize {
        self.references.len()
    }

    /// The learned reference points.
    pub fn references(&self) -> &[RefPoint] {
        &self.references
    }

    /// The shared MSDeformAttn machinery (weights, config).
    pub fn inner(&self) -> &MsdaLayer {
        &self.inner
    }

    /// Cross-attention forward: `queries` is `[N_q, D]`, `memory` the
    /// encoder output pyramid. Optional masks follow the encoder
    /// conventions (`memory_mask` over tokens, `point_mask` over
    /// `N_q · points_per_query` slots).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] on any disagreement.
    pub fn forward(
        &self,
        queries: &Tensor,
        memory: &FmapPyramid,
        memory_mask: Option<&[bool]>,
        point_mask: Option<&[bool]>,
    ) -> Result<CrossLayerOutput, ModelError> {
        let cfg = self.inner.config();
        let nq = self.n_queries();
        let ppq = cfg.points_per_query();
        if queries.shape().dims() != [nq, cfg.d_model] {
            return Err(ModelError::ShapeMismatch(format!(
                "queries {} expected [{nq}, {}]",
                queries.shape(),
                cfg.d_model
            )));
        }
        if memory.n_in() != cfg.n_in() || memory.d() != cfg.d_model {
            return Err(ModelError::ShapeMismatch(format!(
                "memory [{} x {}] does not match config",
                memory.n_in(),
                memory.d()
            )));
        }
        if let Some(pm) = point_mask {
            if pm.len() != nq * ppq {
                return Err(ModelError::ShapeMismatch(format!(
                    "point mask length {} expected {}",
                    pm.len(),
                    nq * ppq
                )));
            }
        }

        let w = self.inner.weights();
        let logits = matmul(queries, &w.w_attn)?;
        let mut probs = logits.clone();
        let lp = cfg.points_per_head();
        for r in 0..nq {
            let row = probs.row_mut(r)?;
            for h in 0..cfg.n_heads {
                softmax_inplace(&mut row[h * lp..(h + 1) * lp]);
            }
        }

        let offsets = matmul(queries, &w.w_offset)?;
        let mut locations = Vec::with_capacity(nq * ppq);
        for i in 0..nq {
            let pts = query_sample_points(cfg, self.references[i], offsets.row(i)?);
            locations.extend_from_slice(&pts);
        }

        let value = match memory_mask {
            Some(mm) => matmul_row_masked(memory.tensor(), &w.w_value, mm)?,
            None => matmul(memory.tensor(), &w.w_value)?,
        };

        let output = self.inner.sample_and_aggregate(&probs, &locations, &value, point_mask)?;
        Ok(CrossLayerOutput { probs, locations, output })
    }
}

/// Output of one cross-attention layer.
#[derive(Debug, Clone)]
pub struct CrossLayerOutput {
    /// Per-head attention probabilities, `[N_q, N_h·N_l·N_p]`.
    pub probs: Tensor,
    /// Sampling locations, `N_q · points_per_query` entries.
    pub locations: Vec<crate::SamplePoint>,
    /// Attended output, `[N_q, D]`.
    pub output: Tensor,
}

/// A complete synthetic decoder stack for one benchmark.
#[derive(Debug, Clone)]
pub struct DecoderWorkload {
    layers: Vec<CrossMsdaLayer>,
    initial_queries: Tensor,
}

impl DecoderWorkload {
    /// Generates a decoder whose layers share the memory shape of `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn generate(
        bench: Benchmark,
        cfg: &MsdaConfig,
        dec: DecoderConfig,
        seed: u64,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        dec.validate()?;
        let mut rng = TensorRng::seed_from(seed ^ 0xDEC0DE);
        let d = cfg.d_model;
        let (logit_std, _, offset_std) = bench.workload_stats();
        let attn_w_std = logit_std / (d as f32 / 3.0).sqrt();
        let offset_w_std = offset_std / (d as f32 / 3.0).sqrt();
        let value_w_std = 1.0 / (d as f32).sqrt();

        let references: Vec<RefPoint> = (0..dec.n_queries)
            .map(|_| RefPoint {
                x: rng.uniform_value(0.05, 0.95),
                y: rng.uniform_value(0.05, 0.95),
            })
            .collect();

        let mut layers = Vec::with_capacity(dec.n_layers);
        for _ in 0..dec.n_layers {
            let weights = MsdaWeights {
                w_attn: rng.normal([d, cfg.points_per_query()], 0.0, attn_w_std),
                w_offset: rng.normal([d, 2 * cfg.points_per_query()], 0.0, offset_w_std),
                w_value: rng.normal([d, d], 0.0, value_w_std),
            };
            layers.push(CrossMsdaLayer::new(cfg.clone(), weights, references.clone())?);
        }
        let initial_queries = rng.uniform([dec.n_queries, d], -1.0, 1.0);
        Ok(DecoderWorkload { layers, initial_queries })
    }

    /// Decoder layers in execution order.
    pub fn layers(&self) -> &[CrossMsdaLayer] {
        &self.layers
    }

    /// The learned initial object queries.
    pub fn initial_queries(&self) -> &Tensor {
        &self.initial_queries
    }

    /// Runs the full decoder over a fixed encoder memory, returning the
    /// final query embeddings.
    ///
    /// # Errors
    ///
    /// Propagates layer evaluation failures.
    pub fn run(&self, memory: &FmapPyramid) -> Result<Tensor, ModelError> {
        let mut q = self.initial_queries.clone();
        for layer in &self.layers {
            let out = layer.forward(&q, memory, None, None)?;
            q = crate::encoder::block_update(&q, &out.output)?;
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SyntheticWorkload;

    fn setup() -> (MsdaConfig, DecoderWorkload, FmapPyramid) {
        let cfg = MsdaConfig::tiny();
        let enc = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 1).unwrap();
        let dec =
            DecoderWorkload::generate(Benchmark::DeformableDetr, &cfg, DecoderConfig::tiny(), 1)
                .unwrap();
        let memory = enc.initial_fmap().clone();
        (cfg, dec, memory)
    }

    #[test]
    fn decoder_output_has_query_shape() {
        let (cfg, dec, memory) = setup();
        let out = dec.run(&memory).unwrap();
        assert_eq!(out.shape().dims(), &[12, cfg.d_model]);
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn cross_layer_probs_normalize_per_head() {
        let (cfg, dec, memory) = setup();
        let out = dec.layers()[0].forward(dec.initial_queries(), &memory, None, None).unwrap();
        let lp = cfg.points_per_head();
        for q in 0..dec.layers()[0].n_queries() {
            let row = out.probs.row(q).unwrap();
            for h in 0..cfg.n_heads {
                let s: f32 = row[h * lp..(h + 1) * lp].iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn locations_count_matches_queries() {
        let (cfg, dec, memory) = setup();
        let out = dec.layers()[0].forward(dec.initial_queries(), &memory, None, None).unwrap();
        assert_eq!(out.locations.len(), 12 * cfg.points_per_query());
    }

    #[test]
    fn masks_apply_to_cross_attention() {
        let (cfg, dec, memory) = setup();
        let layer = &dec.layers()[0];
        let exact = layer.forward(dec.initial_queries(), &memory, None, None).unwrap();
        let all_mem = vec![true; cfg.n_in()];
        let all_pts = vec![true; 12 * cfg.points_per_query()];
        let masked =
            layer.forward(dec.initial_queries(), &memory, Some(&all_mem), Some(&all_pts)).unwrap();
        assert!(masked.output.relative_l2_error(&exact.output).unwrap() < 1e-6);
        let no_pts = vec![false; 12 * cfg.points_per_query()];
        let zero = layer.forward(dec.initial_queries(), &memory, None, Some(&no_pts)).unwrap();
        assert_eq!(zero.output.max_abs(), 0.0);
    }

    #[test]
    fn benchmark_decoder_shapes() {
        assert_eq!(DecoderConfig::for_benchmark(Benchmark::DeformableDetr).n_queries, 300);
        assert!(DecoderConfig::for_benchmark(Benchmark::Dino).n_queries > 900);
    }

    #[test]
    fn shape_validation_rejects_wrong_queries() {
        let (_, dec, memory) = setup();
        let bad = Tensor::zeros([5, 16]);
        assert!(dec.layers()[0].forward(&bad, &memory, None, None).is_err());
    }

    #[test]
    fn wrong_point_mask_length_is_rejected() {
        let (_, dec, memory) = setup();
        let short = vec![true; 3];
        assert!(dec.layers()[0]
            .forward(dec.initial_queries(), &memory, None, Some(&short))
            .is_err());
    }
}
