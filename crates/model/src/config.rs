//! MSDeformAttn shape configuration for the paper's benchmarks.

use crate::ModelError;

/// Height × width of one feature-map pyramid level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelShape {
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
}

impl LevelShape {
    /// Creates a level shape.
    pub fn new(h: usize, w: usize) -> Self {
        LevelShape { h, w }
    }

    /// Number of pixels in the level.
    pub fn pixels(&self) -> usize {
        self.h * self.w
    }
}

/// Shape parameters of one MSDeformAttn encoder stack.
///
/// The three DAC-24 benchmarks (Deformable DETR, DN-DETR, DINO) share the
/// encoder shapes of the official Deformable DETR implementation: a 4-level
/// pyramid from backbone strides 8/16/32/64, `D = 256`, 8 heads, 4 sampling
/// points per level, 6 encoder layers.
///
/// # Example
///
/// ```
/// use defa_model::MsdaConfig;
///
/// let cfg = MsdaConfig::full();
/// assert_eq!(cfg.levels.len(), 4);
/// assert_eq!(cfg.n_in(), 100 * 134 + 50 * 67 + 25 * 34 + 13 * 17);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsdaConfig {
    /// Pyramid level shapes, finest first.
    pub levels: Vec<LevelShape>,
    /// Hidden dimension of pixel vectors (`D_in` in the paper).
    pub d_model: usize,
    /// Number of attention heads (`N_h`).
    pub n_heads: usize,
    /// Sampling points per level per head (`N_p`).
    pub n_points: usize,
    /// Number of MSDeformAttn encoder layers.
    pub n_layers: usize,
}

impl MsdaConfig {
    /// Full-size encoder configuration used for the paper-scale experiments
    /// (~800×1066 input image, strides 8/16/32/64).
    pub fn full() -> Self {
        MsdaConfig {
            levels: vec![
                LevelShape::new(100, 134),
                LevelShape::new(50, 67),
                LevelShape::new(25, 34),
                LevelShape::new(13, 17),
            ],
            d_model: 256,
            n_heads: 8,
            n_points: 4,
            n_layers: 6,
        }
    }

    /// Reduced configuration for fast benches and integration tests: same
    /// 4-level structure and head/point counts, ~1/40 the tokens.
    pub fn small() -> Self {
        MsdaConfig {
            levels: vec![
                LevelShape::new(24, 32),
                LevelShape::new(12, 16),
                LevelShape::new(6, 8),
                LevelShape::new(3, 4),
            ],
            d_model: 64,
            n_heads: 8,
            n_points: 4,
            n_layers: 3,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        MsdaConfig {
            levels: vec![LevelShape::new(6, 8), LevelShape::new(3, 4)],
            d_model: 16,
            n_heads: 2,
            n_points: 2,
            n_layers: 2,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if any extent is zero, if
    /// `d_model` is not divisible by `n_heads`, or if more than 8 pyramid
    /// levels are requested (the hardware model supports at most 8).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.levels.is_empty() || self.levels.len() > 8 {
            return Err(ModelError::InvalidConfig(format!(
                "level count must be 1..=8, got {}",
                self.levels.len()
            )));
        }
        if self.levels.iter().any(|l| l.h == 0 || l.w == 0) {
            return Err(ModelError::InvalidConfig("level with zero extent".into()));
        }
        if self.d_model == 0 || self.n_heads == 0 || self.n_points == 0 || self.n_layers == 0 {
            return Err(ModelError::InvalidConfig("zero-sized dimension".into()));
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(ModelError::InvalidConfig(format!(
                "d_model {} not divisible by n_heads {}",
                self.d_model, self.n_heads
            )));
        }
        Ok(())
    }

    /// Number of pyramid levels (`N_l`).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of flattened tokens, `N_in = Σ H_l·W_l`.
    pub fn n_in(&self) -> usize {
        self.levels.iter().map(LevelShape::pixels).sum()
    }

    /// Per-head channel count, `D_h = D / N_h`.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Sampling points per query per head, `N_l·N_p`.
    pub fn points_per_head(&self) -> usize {
        self.n_levels() * self.n_points
    }

    /// Sampling points per query across all heads, `N_h·N_l·N_p`.
    pub fn points_per_query(&self) -> usize {
        self.n_heads * self.points_per_head()
    }

    /// Total sampling points in one layer, `N_in·N_h·N_l·N_p`.
    pub fn total_points(&self) -> u64 {
        self.n_in() as u64 * self.points_per_query() as u64
    }

    /// Flat token offset of the first pixel of level `l`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndexOutOfRange`] if `l` is not a valid level.
    pub fn level_offset(&self, l: usize) -> Result<usize, ModelError> {
        if l >= self.levels.len() {
            return Err(ModelError::IndexOutOfRange {
                what: "level",
                index: l,
                len: self.levels.len(),
            });
        }
        Ok(self.levels[..l].iter().map(LevelShape::pixels).sum())
    }

    /// Maps a flat token index to `(level, y, x)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndexOutOfRange`] if `token >= n_in()`.
    pub fn token_coords(&self, token: usize) -> Result<(usize, usize, usize), ModelError> {
        let mut base = 0;
        for (l, shape) in self.levels.iter().enumerate() {
            if token < base + shape.pixels() {
                let local = token - base;
                return Ok((l, local / shape.w, local % shape.w));
            }
            base += shape.pixels();
        }
        Err(ModelError::IndexOutOfRange { what: "token", index: token, len: self.n_in() })
    }

    /// Ratio of multi-scale pixels to the finest single-scale level.
    ///
    /// The paper quotes ~21.3× more pixels for multi-scale fmaps than the
    /// single-scale fmaps of DeformConv (which uses the stride-32 level);
    /// this helper reproduces that workload-amplification metric.
    pub fn multiscale_amplification(&self) -> f64 {
        let coarsest = self.levels[self.levels.len() - 1].pixels().max(1);
        self.n_in() as f64 / coarsest as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_matches_paper_shapes() {
        let cfg = MsdaConfig::full();
        cfg.validate().unwrap();
        assert_eq!(cfg.n_in(), 13400 + 3350 + 850 + 221);
        assert_eq!(cfg.head_dim(), 32);
        assert_eq!(cfg.points_per_query(), 8 * 4 * 4);
    }

    #[test]
    fn level_offsets_accumulate() {
        let cfg = MsdaConfig::tiny();
        assert_eq!(cfg.level_offset(0).unwrap(), 0);
        assert_eq!(cfg.level_offset(1).unwrap(), 48);
        assert!(cfg.level_offset(2).is_err());
    }

    #[test]
    fn token_coords_round_trip() {
        let cfg = MsdaConfig::tiny();
        // token 0 -> level 0 (0,0); token 47 -> level 0 (5,7); token 48 -> level 1 (0,0)
        assert_eq!(cfg.token_coords(0).unwrap(), (0, 0, 0));
        assert_eq!(cfg.token_coords(47).unwrap(), (0, 5, 7));
        assert_eq!(cfg.token_coords(48).unwrap(), (1, 0, 0));
        assert_eq!(cfg.token_coords(59).unwrap(), (1, 2, 3));
        assert!(cfg.token_coords(60).is_err());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = MsdaConfig::tiny();
        cfg.d_model = 15; // not divisible by 2 heads
        assert!(cfg.validate().is_err());

        let mut cfg = MsdaConfig::tiny();
        cfg.levels.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = MsdaConfig::tiny();
        cfg.levels[0] = LevelShape::new(0, 4);
        assert!(cfg.validate().is_err());

        let mut cfg = MsdaConfig::tiny();
        cfg.n_points = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn multiscale_amplification_is_large_for_full() {
        let cfg = MsdaConfig::full();
        let amp = cfg.multiscale_amplification();
        // Paper quotes 21.3x for their pyramid; ours lands in the same range.
        assert!(amp > 15.0 && amp < 100.0, "amp={amp}");
    }

    #[test]
    fn total_points_scale_with_tokens() {
        let cfg = MsdaConfig::tiny();
        assert_eq!(cfg.total_points(), (cfg.n_in() * 2 * 2 * 2) as u64);
    }
}
