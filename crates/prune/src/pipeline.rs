//! The pruned-encoder pipeline: DEFA's dataflow at the algorithm level.
//!
//! §4.1 rearranges the MSDeformAttn operators so both pruning methods can
//! act before the expensive work:
//!
//! 1. attention probabilities are computed and the **point mask** (PAP) is
//!    generated;
//! 2. the masked sampling offsets are produced;
//! 3. the value projection runs under the **fmap mask** that the *previous*
//!    block's frequency counters produced (FWP);
//! 4. MSGS + aggregation run over surviving points only, while the fmap
//!    mask generator counts frequencies for the *next* block.
//!
//! This module reproduces that schedule functionally (bit-accurate masks and
//! outputs); `defa-core` replays the same schedule on the cycle-level
//! hardware model.

use crate::fwp::{FwpConfig, SampleFrequency};
use crate::pap::{point_mask, retained_mass, PapConfig};
use crate::range::{clamp_locations, RangeConfig};
use crate::stats::ReductionStats;
use crate::{BitMask, PruneError};
use defa_model::encoder::block_update;
use defa_model::flops::BlockFlops;
use defa_model::reference::{LayerOutput, MsdaLayer, MsdaWeights};
use defa_model::workload::SyntheticWorkload;
use defa_model::{FmapPyramid, MsdaConfig};
use defa_tensor::matmul::matmul;
use defa_tensor::{QuantParams, Tensor};

/// Which pruning/compression techniques a run enables.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneSettings {
    /// Frequency-weighted fmap pruning; `None` disables it.
    pub fwp: Option<FwpConfig>,
    /// Probability-aware point pruning; `None` disables it.
    pub pap: Option<PapConfig>,
    /// Level-wise range narrowing of sampling offsets.
    pub range_narrowing: bool,
    /// Fake-quantize weights and activations to this bit width.
    pub quant_bits: Option<u8>,
}

impl PruneSettings {
    /// Everything enabled at the paper's operating point
    /// (FWP `k = 1`, PAP threshold 0.02, level-wise ranges, INT12).
    pub fn paper_defaults() -> Self {
        PruneSettings {
            fwp: Some(FwpConfig::paper_default()),
            pap: Some(PapConfig::paper_default()),
            range_narrowing: true,
            quant_bits: Some(12),
        }
    }

    /// Everything disabled: the exact reference computation.
    pub fn disabled() -> Self {
        PruneSettings { fwp: None, pap: None, range_narrowing: false, quant_bits: None }
    }
}

impl Default for PruneSettings {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Per-block pruning outcome.
#[derive(Debug, Clone)]
pub struct BlockPruneInfo {
    /// PAP decision per sampling point of this block.
    pub point_mask: BitMask,
    /// FWP mask this block's value projection ran under (from the previous
    /// block; all-keep for block 0).
    pub fmap_mask: BitMask,
    /// Sampling points moved by range narrowing.
    pub clamped_points: u64,
    /// Probability mass surviving PAP.
    pub retained_mass: f64,
}

/// Result of a pruned encoder run.
#[derive(Debug, Clone)]
pub struct PrunedRun {
    /// Feature tensor after the last residual update.
    pub final_features: Tensor,
    /// Accumulated reduction statistics.
    pub stats: ReductionStats,
    /// Per-block masks and counters.
    pub blocks: Vec<BlockPruneInfo>,
}

fn quantized_layers(wl: &SyntheticWorkload, bits: u8) -> Result<Vec<MsdaLayer>, PruneError> {
    let mut layers = Vec::with_capacity(wl.layers().len());
    for layer in wl.layers() {
        let w = layer.weights();
        let q = |t: &Tensor| -> Result<Tensor, PruneError> {
            let params = QuantParams::fit(t, bits)
                .map_err(|e| PruneError::InvalidParameter(e.to_string()))?;
            Ok(params.fake_quantize(t))
        };
        let weights = MsdaWeights {
            w_attn: q(&w.w_attn)?,
            w_offset: q(&w.w_offset)?,
            w_value: q(&w.w_value)?,
        };
        layers.push(MsdaLayer::new(layer.config().clone(), weights)?);
    }
    Ok(layers)
}

fn fake_quantize_features(x: &Tensor, bits: u8) -> Result<Tensor, PruneError> {
    let params =
        QuantParams::fit(x, bits).map_err(|e| PruneError::InvalidParameter(e.to_string()))?;
    Ok(params.fake_quantize(x))
}

/// Runs the pruned encoder, discarding per-block layer outputs.
///
/// # Errors
///
/// Propagates model and mask errors.
pub fn run_pruned_encoder(
    wl: &SyntheticWorkload,
    settings: &PruneSettings,
) -> Result<PrunedRun, PruneError> {
    run_pruned_encoder_observed(wl, settings, |_, _, _| {})
}

/// [`run_pruned_encoder`] over a caller-provided initial feature pyramid —
/// the serving entry point: one workload (weights, warp, ranges) handles a
/// stream of requests, each with its own backbone features.
///
/// # Errors
///
/// Propagates model and mask errors.
pub fn run_pruned_encoder_from(
    wl: &SyntheticWorkload,
    settings: &PruneSettings,
    initial: &FmapPyramid,
) -> Result<PrunedRun, PruneError> {
    run_pruned_encoder_observed_from(wl, settings, initial, |_, _, _| {})
}

/// Runs the pruned encoder, invoking `observe(block_index, layer_output,
/// prune_info)` after each block — the hook the accelerator model uses to
/// replay every block on hardware without keeping all outputs in memory.
///
/// # Errors
///
/// Propagates model and mask errors.
pub fn run_pruned_encoder_observed<F>(
    wl: &SyntheticWorkload,
    settings: &PruneSettings,
    observe: F,
) -> Result<PrunedRun, PruneError>
where
    F: FnMut(usize, &LayerOutput, &BlockPruneInfo),
{
    run_pruned_encoder_observed_from(wl, settings, wl.initial_fmap(), observe)
}

/// [`run_pruned_encoder_observed`] over a caller-provided initial pyramid.
///
/// # Errors
///
/// Propagates model and mask errors.
pub fn run_pruned_encoder_observed_from<F>(
    wl: &SyntheticWorkload,
    settings: &PruneSettings,
    initial: &FmapPyramid,
    mut observe: F,
) -> Result<PrunedRun, PruneError>
where
    F: FnMut(usize, &LayerOutput, &BlockPruneInfo),
{
    let cfg: &MsdaConfig = wl.config();
    let n = cfg.n_in();
    let ppq = cfg.points_per_query();
    let flops = BlockFlops::for_config(cfg);
    let ranges = settings.range_narrowing.then(|| RangeConfig::paper_defaults(cfg));

    let quant_layers = match settings.quant_bits {
        Some(bits) => Some(quantized_layers(wl, bits)?),
        None => None,
    };

    let mut x = initial.clone();
    if let Some(bits) = settings.quant_bits {
        x = FmapPyramid::from_tensor(cfg, fake_quantize_features(x.tensor(), bits)?)?;
    }

    let mut stats = ReductionStats::new();
    let mut blocks = Vec::with_capacity(cfg.n_layers);
    // FWP mask produced by the previous block; block 0 keeps everything.
    let mut next_fmap_mask = BitMask::keep_all(n);

    for k in 0..cfg.n_layers {
        let layer = match &quant_layers {
            Some(ls) => &ls[k],
            None => wl.layer(k)?,
        };

        // Stage 1: probabilities, then the PAP point mask.
        let (logits, probs) = layer.attention_probs(&x)?;
        let (pmask, mass) = match settings.pap {
            Some(pap) => {
                let m = point_mask(&probs, pap)?;
                let mass = retained_mass(&probs, &m)?;
                (m, mass)
            }
            None => (BitMask::keep_all(n * ppq), 1.0),
        };

        // Stage 2+3: masked offsets, locations (warp + range clamp), masked
        // value projection. Location generation is per-query parallel and
        // bit-identical to the monolithic forward (pinned by the golden
        // geometry test).
        let offsets =
            matmul(x.tensor(), &layer.weights().w_offset).map_err(defa_model::ModelError::from)?;
        let mut locations = defa_model::reference::generate_locations(
            cfg,
            layer.references(),
            &offsets,
            Some(wl.warp()),
        )?;
        let clamped = match &ranges {
            Some(rc) => clamp_locations(cfg, rc, layer.references(), &mut locations)?,
            None => 0,
        };

        let fmap_mask = std::mem::replace(&mut next_fmap_mask, BitMask::keep_all(n));
        let value = defa_tensor::matmul::matmul_row_masked(
            x.tensor(),
            &layer.weights().w_value,
            fmap_mask.as_bools(),
        )
        .map_err(defa_model::ModelError::from)?;

        // Stage 4: fused MSGS + aggregation over surviving points; FWP
        // counts frequencies for the next block from the same points.
        let output =
            layer.sample_and_aggregate(&probs, &locations, &value, Some(pmask.as_bools()))?;

        if let Some(fwp) = settings.fwp {
            let mut freq = SampleFrequency::new(cfg)?;
            freq.record_all(cfg, &locations, Some(pmask.as_bools()))?;
            next_fmap_mask = freq.fmap_mask(fwp)?;
        }

        stats.record_block(
            &flops,
            (n * ppq) as u64,
            pmask.kept() as u64,
            n as u64,
            fmap_mask.kept() as u64,
            k > 0 && settings.fwp.is_some(),
            clamped,
            mass,
        );

        let info = BlockPruneInfo {
            point_mask: pmask,
            fmap_mask,
            clamped_points: clamped,
            retained_mass: mass,
        };
        let layer_output = LayerOutput { logits, probs, offsets, locations, value, output };
        observe(k, &layer_output, &info);
        blocks.push(info);

        // Residual + normalization into the next block, re-quantized if the
        // module is running in INT-N mode.
        let mut next = block_update(x.tensor(), &layer_output.output)?;
        if let Some(bits) = settings.quant_bits {
            next = fake_quantize_features(&next, bits)?;
        }
        x = FmapPyramid::from_tensor(cfg, next)?;
    }

    Ok(PrunedRun { final_features: x.into_tensor(), stats, blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::encoder::run_encoder;
    use defa_model::workload::Benchmark;

    fn workload() -> SyntheticWorkload {
        SyntheticWorkload::generate(Benchmark::DeformableDetr, &MsdaConfig::tiny(), 21).unwrap()
    }

    #[test]
    fn disabled_settings_match_exact_encoder() {
        let wl = workload();
        let exact = run_encoder(&wl).unwrap();
        let run = run_pruned_encoder(&wl, &PruneSettings::disabled()).unwrap();
        let err = run.final_features.relative_l2_error(&exact.final_features).unwrap();
        assert!(err < 1e-6, "err={err}");
        assert_eq!(run.stats.point_reduction(), 0.0);
    }

    #[test]
    fn paper_defaults_prune_points_and_pixels() {
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &MsdaConfig::small(), 22)
            .unwrap();
        let run = run_pruned_encoder(&wl, &PruneSettings::paper_defaults()).unwrap();
        assert!(run.stats.point_reduction() > 0.6, "{}", run.stats.point_reduction());
        assert!(run.stats.pixel_reduction() > 0.1, "{}", run.stats.pixel_reduction());
        assert!(run.stats.flop_reduction() > 0.3, "{}", run.stats.flop_reduction());
    }

    #[test]
    fn pruned_output_stays_close_to_exact() {
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &MsdaConfig::small(), 23)
            .unwrap();
        let exact = run_encoder(&wl).unwrap();
        let run = run_pruned_encoder(&wl, &PruneSettings::paper_defaults()).unwrap();
        // End-to-end error compounds across blocks (offsets depend on the
        // previous block's features), so it is much larger than any single
        // block's approximation error — but must stay bounded.
        let err = run.final_features.relative_l2_error(&exact.final_features).unwrap();
        assert!(err < 1.2, "fidelity error {err} unexpectedly large");
    }

    #[test]
    fn observer_sees_every_block() {
        let wl = workload();
        let mut seen = Vec::new();
        run_pruned_encoder_observed(&wl, &PruneSettings::paper_defaults(), |k, out, info| {
            seen.push(k);
            assert_eq!(out.locations.len(), info.point_mask.len());
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn explicit_initial_fmap_matches_and_diverges() {
        let wl = workload();
        let own = run_pruned_encoder_from(&wl, &PruneSettings::paper_defaults(), wl.initial_fmap())
            .unwrap();
        let plain = run_pruned_encoder(&wl, &PruneSettings::paper_defaults()).unwrap();
        assert_eq!(own.final_features, plain.final_features);
        let gen = defa_model::RequestGenerator::new(
            vec![defa_model::RequestScenario::from_workload(wl.clone())],
            11,
        )
        .unwrap();
        let req = gen.request(4);
        let other =
            run_pruned_encoder_from(&wl, &PruneSettings::paper_defaults(), &req.fmap).unwrap();
        assert!(other.final_features.relative_l2_error(&plain.final_features).unwrap() > 1e-3);
    }

    #[test]
    fn block_zero_runs_without_fmap_mask() {
        let wl = workload();
        let run = run_pruned_encoder(&wl, &PruneSettings::paper_defaults()).unwrap();
        assert_eq!(run.blocks[0].fmap_mask.kept(), wl.config().n_in());
        // Block 1 receives a real mask on a skewed workload.
        assert!(run.blocks[1].fmap_mask.kept() < wl.config().n_in());
    }

    #[test]
    fn range_narrowing_reports_clamps() {
        let wl = workload();
        let with = run_pruned_encoder(
            &wl,
            &PruneSettings { range_narrowing: true, ..PruneSettings::disabled() },
        )
        .unwrap();
        let without = run_pruned_encoder(&wl, &PruneSettings::disabled()).unwrap();
        assert!(with.stats.clamped_points > 0);
        assert_eq!(without.stats.clamped_points, 0);
    }

    #[test]
    fn quantization_alone_changes_output_slightly() {
        let wl = workload();
        let exact = run_pruned_encoder(&wl, &PruneSettings::disabled()).unwrap();
        let quant = run_pruned_encoder(
            &wl,
            &PruneSettings { quant_bits: Some(12), ..PruneSettings::disabled() },
        )
        .unwrap();
        let err = quant.final_features.relative_l2_error(&exact.final_features).unwrap();
        assert!(err > 0.0 && err < 0.05, "INT12 error {err}");
        // INT8 must hurt noticeably more (the paper's 9.7-AP finding).
        let q8 = run_pruned_encoder(
            &wl,
            &PruneSettings { quant_bits: Some(8), ..PruneSettings::disabled() },
        )
        .unwrap();
        let err8 = q8.final_features.relative_l2_error(&exact.final_features).unwrap();
        assert!(err8 > err * 2.0, "INT8 {err8} vs INT12 {err}");
    }

    #[test]
    fn retained_mass_is_high_at_paper_threshold() {
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &MsdaConfig::small(), 24)
            .unwrap();
        let run = run_pruned_encoder(&wl, &PruneSettings::paper_defaults()).unwrap();
        assert!(run.stats.mean_retained_mass() > 0.85);
    }
}
