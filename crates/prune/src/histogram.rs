//! Distribution statistics behind the §3 motivation.
//!
//! FWP rests on the observation that pixel sampled-frequency "shows a
//! non-uniform distribution" (§3.1); PAP on the observation that near-zero
//! attention probabilities "constituted a dominant proportion (over 80 %)"
//! (§3.2). This module measures both distributions so the claims can be
//! checked on any workload, and renders small text histograms for the
//! motivation binary.

use crate::fwp::SampleFrequency;
use defa_tensor::Tensor;

/// Summary statistics of a non-negative empirical distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionStats {
    /// Number of observations.
    pub count: usize,
    /// Mean value.
    pub mean: f64,
    /// Gini coefficient in `[0, 1]`: 0 = perfectly uniform, →1 = all mass
    /// on few items. The paper's "non-uniform distribution" claim is a
    /// high-Gini claim.
    pub gini: f64,
    /// Fraction of total mass held by the top decile of items.
    pub top_decile_share: f64,
    /// Fraction of observations below the mean.
    pub below_mean_fraction: f64,
}

/// Computes distribution statistics over non-negative values.
///
/// Returns a degenerate all-zero summary for an empty slice.
pub fn stats(values: &[f64]) -> DistributionStats {
    let count = values.len();
    if count == 0 {
        return DistributionStats {
            count: 0,
            mean: 0.0,
            gini: 0.0,
            top_decile_share: 0.0,
            below_mean_fraction: 0.0,
        };
    }
    let total: f64 = values.iter().sum();
    let mean = total / count as f64;
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);

    // Gini via the sorted-index formula.
    let gini = if total > 0.0 {
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (2.0 * (i as f64 + 1.0) - count as f64 - 1.0) * v)
            .sum();
        weighted / (count as f64 * total)
    } else {
        0.0
    };

    let decile = (count / 10).max(1);
    let top: f64 = sorted[count - decile..].iter().sum();
    let top_decile_share = if total > 0.0 { top / total } else { 0.0 };
    let below_mean_fraction = values.iter().filter(|&&v| v < mean).count() as f64 / count as f64;

    DistributionStats { count, mean, gini, top_decile_share, below_mean_fraction }
}

/// Statistics of the per-pixel sampled-frequency distribution (§3.1).
pub fn frequency_stats(freq: &SampleFrequency) -> DistributionStats {
    let values: Vec<f64> = freq.counts().iter().map(|&c| c as f64).collect();
    stats(&values)
}

/// Statistics of the attention-probability distribution (§3.2), plus the
/// fraction below `near_zero`.
pub fn probability_stats(probs: &Tensor, near_zero: f32) -> (DistributionStats, f64) {
    let values: Vec<f64> = probs.as_slice().iter().map(|&p| p as f64).collect();
    let near = values.iter().filter(|&&p| p < near_zero as f64).count() as f64
        / values.len().max(1) as f64;
    (stats(&values), near)
}

/// Renders a log-bucketed text histogram (`buckets` rows, `width` max bar).
pub fn text_histogram(values: &[f64], buckets: usize, width: usize) -> String {
    if values.is_empty() || buckets == 0 {
        return String::from("(empty)\n");
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let b = if max > 0.0 { ((v / max * buckets as f64) as usize).min(buckets - 1) } else { 0 };
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (b, &c) in counts.iter().enumerate() {
        let lo = max * b as f64 / buckets as f64;
        let hi = max * (b + 1) as f64 / buckets as f64;
        let bar = "#".repeat((c * width).div_ceil(peak).min(width));
        out.push_str(&format!("[{lo:8.3}, {hi:8.3})  {c:>8}  {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::workload::{Benchmark, SyntheticWorkload};
    use defa_model::MsdaConfig;

    #[test]
    fn uniform_values_have_zero_gini() {
        let s = stats(&[2.0; 100]);
        assert!(s.gini.abs() < 1e-9);
        assert!((s.top_decile_share - 0.1).abs() < 1e-9);
        assert_eq!(s.below_mean_fraction, 0.0);
    }

    #[test]
    fn concentrated_values_have_high_gini() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let s = stats(&v);
        assert!(s.gini > 0.9, "gini {}", s.gini);
        assert!((s.top_decile_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_degenerate() {
        let s = stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn workload_frequency_distribution_is_skewed() {
        // §3.1: "a small proportion of pixels has a much higher probability
        // of being accessed".
        let cfg = MsdaConfig::small();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 8).unwrap();
        let out = wl.layer(0).unwrap().forward(wl.initial_fmap(), Some(wl.warp())).unwrap();
        let mut f = SampleFrequency::new(&cfg).unwrap();
        f.record_all(&cfg, &out.locations, None).unwrap();
        let s = frequency_stats(&f);
        assert!(s.gini > 0.4, "frequency gini {}", s.gini);
        assert!(s.top_decile_share > 0.3, "top decile {}", s.top_decile_share);
    }

    #[test]
    fn workload_probabilities_are_mostly_near_zero() {
        // §3.2: near-zero probabilities are over 80 %.
        let cfg = MsdaConfig::small();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 8).unwrap();
        let (_, probs) = wl.layer(0).unwrap().attention_probs(wl.initial_fmap()).unwrap();
        let (_, near_zero) = probability_stats(&probs, 0.02);
        assert!(near_zero > 0.75, "near-zero fraction {near_zero}");
    }

    #[test]
    fn histogram_renders_buckets() {
        let h = text_histogram(&[0.0, 0.1, 0.9, 1.0], 2, 10);
        assert_eq!(h.lines().count(), 2);
        assert!(h.contains('#'));
        assert_eq!(text_histogram(&[], 4, 10), "(empty)\n");
    }
}
