//! Error type for the pruning crate.

use std::error::Error;
use std::fmt;

/// Errors produced by pruning-algorithm construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PruneError {
    /// A pruning hyperparameter was invalid.
    InvalidParameter(String),
    /// Provided data did not match expected shapes or lengths.
    ShapeMismatch(String),
    /// An underlying model evaluation failed.
    Model(defa_model::ModelError),
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::InvalidParameter(msg) => write!(f, "invalid pruning parameter: {msg}"),
            PruneError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            PruneError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for PruneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PruneError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<defa_model::ModelError> for PruneError {
    fn from(e: defa_model::ModelError) -> Self {
        PruneError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_model_error_with_source() {
        let me = defa_model::ModelError::InvalidConfig("x".into());
        let pe: PruneError = me.into();
        assert!(std::error::Error::source(&pe).is_some());
        assert!(pe.to_string().contains("model error"));
    }
}
