//! Frequency-weighted fmap pruning (FWP, §3.1).
//!
//! During MSGS of block *k*, the fmap mask generator counts how many times
//! each pixel appears as an in-bounds bilinear neighbor. Pixels whose count
//! falls below `T = k_hyper · mean(count)` — the mean taken *per level*, as
//! the paper defines the threshold over one fmap of size `H·W` — are pruned
//! from block *k+1*: their value projection and memory traffic are skipped.

use crate::{BitMask, PruneError};
use defa_model::bilinear::Footprint;
use defa_model::{MsdaConfig, SamplePoint};

/// FWP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FwpConfig {
    /// Threshold multiplier `k` of Eq. 2. The paper tunes it to trade
    /// accuracy against sparsity (§3.1); `k = 1` (the value Figure 2
    /// illustrates) lands at the paper's ~43 % pixel reduction on the
    /// paper-scale synthetic workloads.
    pub k: f32,
}

impl FwpConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidParameter`] for a negative or
    /// non-finite `k`.
    pub fn new(k: f32) -> Result<Self, PruneError> {
        if !k.is_finite() || k < 0.0 {
            return Err(PruneError::InvalidParameter(format!(
                "FWP k must be finite and non-negative, got {k}"
            )));
        }
        Ok(FwpConfig { k })
    }

    /// The paper's operating point (Eq. 2 with `k = 1`; ~43 % pixel
    /// reduction at paper scale).
    pub fn paper_default() -> Self {
        FwpConfig { k: 1.0 }
    }
}

impl Default for FwpConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-pixel sampled-frequency counters over the whole pyramid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleFrequency {
    counts: Vec<u32>,
    level_offsets: Vec<usize>,
    level_pixels: Vec<usize>,
}

impl SampleFrequency {
    /// Creates zeroed counters for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(cfg: &MsdaConfig) -> Result<Self, PruneError> {
        cfg.validate()?;
        let mut level_offsets = Vec::with_capacity(cfg.n_levels());
        let mut level_pixels = Vec::with_capacity(cfg.n_levels());
        for l in 0..cfg.n_levels() {
            level_offsets.push(cfg.level_offset(l)?);
            level_pixels.push(cfg.levels[l].pixels());
        }
        Ok(SampleFrequency { counts: vec![0; cfg.n_in()], level_offsets, level_pixels })
    }

    /// Records one bilinear sample: every in-bounds neighbor of the point is
    /// counted once, exactly as Figure 2 (right) illustrates.
    pub fn record(&mut self, cfg: &MsdaConfig, pt: SamplePoint) {
        let level = pt.level as usize;
        if level >= self.level_offsets.len() {
            return;
        }
        let shape = cfg.levels[level];
        let base = self.level_offsets[level];
        let fp = Footprint::at(pt.x, pt.y);
        for n in fp.in_bounds(shape) {
            let idx = base + n.y as usize * shape.w + n.x as usize;
            self.counts[idx] += 1;
        }
    }

    /// Records every point in a slice (respecting an optional keep mask of
    /// the same length: pruned points never reach MSGS, so they are never
    /// counted).
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] if a mask is provided with a
    /// different length than `points`.
    pub fn record_all(
        &mut self,
        cfg: &MsdaConfig,
        points: &[SamplePoint],
        keep: Option<&[bool]>,
    ) -> Result<(), PruneError> {
        if let Some(mask) = keep {
            if mask.len() != points.len() {
                return Err(PruneError::ShapeMismatch(format!(
                    "point mask length {} vs points {}",
                    mask.len(),
                    points.len()
                )));
            }
            for (pt, &k) in points.iter().zip(mask) {
                if k {
                    self.record(cfg, *pt);
                }
            }
        } else {
            for pt in points {
                self.record(cfg, *pt);
            }
        }
        Ok(())
    }

    /// Raw per-token counters.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Mean sampled frequency of one level.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] for an invalid level index.
    pub fn level_mean(&self, level: usize) -> Result<f64, PruneError> {
        let (off, px) = self.level_span(level)?;
        let sum: u64 = self.counts[off..off + px].iter().map(|&c| c as u64).sum();
        Ok(sum as f64 / px as f64)
    }

    fn level_span(&self, level: usize) -> Result<(usize, usize), PruneError> {
        if level >= self.level_offsets.len() {
            return Err(PruneError::ShapeMismatch(format!(
                "level {level} out of {}",
                self.level_offsets.len()
            )));
        }
        Ok((self.level_offsets[level], self.level_pixels[level]))
    }

    /// Builds the FWP fmap mask: per level, keep pixels whose count is at
    /// least `k · mean(count)` (Eq. 2).
    ///
    /// The mask covers all `N_in` tokens in pyramid order and is meant to be
    /// applied to the *next* MSDeformAttn block.
    ///
    /// # Errors
    ///
    /// Propagates invalid-parameter errors via [`FwpConfig`]; never fails
    /// for a well-formed `self`.
    pub fn fmap_mask(&self, cfg: FwpConfig) -> Result<BitMask, PruneError> {
        let mut bits = vec![true; self.counts.len()];
        for level in 0..self.level_offsets.len() {
            let (off, px) = self.level_span(level)?;
            let mean = self.level_mean(level)?;
            let threshold = cfg.k as f64 * mean;
            for (bit, &count) in bits[off..off + px].iter_mut().zip(&self.counts[off..off + px]) {
                *bit = count as f64 >= threshold;
            }
        }
        Ok(BitMask::from_bools(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::MsdaConfig;

    #[test]
    fn record_counts_all_four_neighbors_inside() {
        let cfg = MsdaConfig::tiny();
        let mut f = SampleFrequency::new(&cfg).unwrap();
        f.record(&cfg, SamplePoint::new(0, 2.5, 1.5));
        // Neighbors: (2,1), (3,1), (2,2), (3,2) on an 8-wide level.
        let expect = [8 + 2, 8 + 3, 2 * 8 + 2, 2 * 8 + 3];
        for idx in expect {
            assert_eq!(f.counts()[idx], 1, "idx {idx}");
        }
        assert_eq!(f.counts().iter().map(|&c| c as u64).sum::<u64>(), 4);
    }

    #[test]
    fn integer_point_counts_its_pixel_once_among_in_bounds() {
        let cfg = MsdaConfig::tiny();
        let mut f = SampleFrequency::new(&cfg).unwrap();
        // An exactly-integer point still enumerates 4 neighbors; 3 have zero
        // weight but the paper counts *accessed* neighbors, i.e. the BI
        // kernel touches them. We count in-bounds neighbors, weights aside.
        f.record(&cfg, SamplePoint::new(0, 3.0, 2.0));
        assert!(f.counts().iter().map(|&c| c as u64).sum::<u64>() >= 1);
    }

    #[test]
    fn out_of_level_points_are_ignored() {
        let cfg = MsdaConfig::tiny();
        let mut f = SampleFrequency::new(&cfg).unwrap();
        f.record(&cfg, SamplePoint::new(0, -10.0, -10.0));
        f.record(&cfg, SamplePoint::new(7, 0.0, 0.0)); // bogus level
        assert!(f.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn mask_respects_per_level_threshold() {
        let cfg = MsdaConfig::tiny(); // level 0: 48 px, level 1: 12 px
        let mut f = SampleFrequency::new(&cfg).unwrap();
        // Hammer one pixel of level 0 ten times; touch one level-1 pixel once.
        for _ in 0..10 {
            f.record(&cfg, SamplePoint::new(0, 1.0, 1.0));
        }
        f.record(&cfg, SamplePoint::new(1, 1.0, 1.0));
        let mask = f.fmap_mask(FwpConfig::paper_default()).unwrap();
        // Level-0 mean is small; only pixels near (1,1) survive.
        let hot = cfg.levels[0].w + 1;
        assert!(mask.as_bools()[hot]);
        assert!(!mask.as_bools()[0]);
        // Level-1: the touched neighbors survive, untouched pixels do not.
        let l1 = cfg.level_offset(1).unwrap();
        let l1hot = l1 + cfg.levels[1].w + 1;
        assert!(mask.as_bools()[l1hot]);
        assert!(!mask.as_bools()[l1]);
    }

    #[test]
    fn k_zero_keeps_everything() {
        let cfg = MsdaConfig::tiny();
        let f = SampleFrequency::new(&cfg).unwrap();
        let mask = f.fmap_mask(FwpConfig::new(0.0).unwrap()).unwrap();
        assert_eq!(mask.kept(), cfg.n_in());
    }

    #[test]
    fn untouched_level_with_k_positive_keeps_all() {
        // mean = 0 -> threshold = 0 -> every count >= 0 survives. A level
        // nobody samples must not be wiped out.
        let cfg = MsdaConfig::tiny();
        let f = SampleFrequency::new(&cfg).unwrap();
        let mask = f.fmap_mask(FwpConfig::new(1.0).unwrap()).unwrap();
        assert_eq!(mask.kept(), cfg.n_in());
    }

    #[test]
    fn record_all_honors_point_mask() {
        let cfg = MsdaConfig::tiny();
        let mut f = SampleFrequency::new(&cfg).unwrap();
        let pts = vec![SamplePoint::new(0, 1.0, 1.0), SamplePoint::new(0, 4.0, 4.0)];
        f.record_all(&cfg, &pts, Some(&[true, false])).unwrap();
        let idx_kept = cfg.levels[0].w + 1;
        let idx_dropped = 4 * cfg.levels[0].w + 4;
        assert!(f.counts()[idx_kept] > 0);
        assert_eq!(f.counts()[idx_dropped], 0);
    }

    #[test]
    fn record_all_validates_mask_length() {
        let cfg = MsdaConfig::tiny();
        let mut f = SampleFrequency::new(&cfg).unwrap();
        let pts = vec![SamplePoint::new(0, 1.0, 1.0)];
        assert!(f.record_all(&cfg, &pts, Some(&[true, false])).is_err());
    }

    #[test]
    fn config_rejects_bad_k() {
        assert!(FwpConfig::new(-1.0).is_err());
        assert!(FwpConfig::new(f32::NAN).is_err());
        assert!(FwpConfig::new(1.5).is_ok());
    }
}
