//! Level-wise range narrowing (§4.1, Figure 4).
//!
//! Sampling offsets are dynamically generated and unbounded, which would
//! force the accelerator to keep whole fmap levels on chip. DEFA bounds the
//! offsets to a per-level window around the reference point. Because coarse
//! levels tolerate tighter windows without accuracy loss, per-level bounds
//! beat one unified bound by ~25 % of SRAM storage.

use crate::PruneError;
use defa_model::sampling::RefPoint;
use defa_model::{MsdaConfig, SamplePoint};

/// Half-extents of one level's bounded sampling range, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundedRange {
    /// Horizontal half-extent.
    pub half_w: u32,
    /// Vertical half-extent.
    pub half_h: u32,
}

impl BoundedRange {
    /// Creates a bounded range.
    pub fn new(half_w: u32, half_h: u32) -> Self {
        BoundedRange { half_w, half_h }
    }

    /// Pixels covered by the range window, counting the extra row/column of
    /// bilinear neighbors at the window's far edge.
    pub fn window_pixels(&self) -> u64 {
        (2 * self.half_w as u64 + 2) * (2 * self.half_h as u64 + 2)
    }
}

/// Per-level bounded ranges for a pyramid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeConfig {
    ranges: Vec<BoundedRange>,
}

impl RangeConfig {
    /// Creates a configuration from explicit per-level ranges.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidParameter`] if `ranges` is empty.
    pub fn new(ranges: Vec<BoundedRange>) -> Result<Self, PruneError> {
        if ranges.is_empty() {
            return Err(PruneError::InvalidParameter("no bounded ranges given".into()));
        }
        Ok(RangeConfig { ranges })
    }

    /// The paper-style defaults for a configuration: the finest level gets
    /// the widest window and coarser levels progressively tighter ones
    /// (their content is blurrier, so tight bounds cost no accuracy).
    pub fn paper_defaults(cfg: &MsdaConfig) -> Self {
        let base: [u32; 8] = [8, 5, 3, 2, 2, 2, 2, 2];
        let ranges = (0..cfg.n_levels())
            .map(|l| {
                let r = base[l.min(7)];
                let shape = cfg.levels[l];
                // Never wider than the level itself.
                BoundedRange::new(
                    r.min(shape.w as u32 / 2).max(1),
                    r.min(shape.h as u32 / 2).max(1),
                )
            })
            .collect();
        RangeConfig { ranges }
    }

    /// A unified configuration that applies the *widest* level range
    /// everywhere — the strawman of Figure 4 (left).
    pub fn unified(&self) -> Self {
        let max = self
            .ranges
            .iter()
            .copied()
            .max_by_key(BoundedRange::window_pixels)
            .expect("ranges are non-empty by construction");
        RangeConfig { ranges: vec![max; self.ranges.len()] }
    }

    /// Per-level ranges.
    pub fn ranges(&self) -> &[BoundedRange] {
        &self.ranges
    }

    /// Range of level `l`.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] for an invalid level.
    pub fn level(&self, l: usize) -> Result<BoundedRange, PruneError> {
        self.ranges.get(l).copied().ok_or_else(|| {
            PruneError::ShapeMismatch(format!("level {l} out of {}", self.ranges.len()))
        })
    }

    /// Clamps one sampling point into its level's bounded range around a
    /// reference point, returning the clamped point and whether clamping
    /// moved it.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] if the point's level has no
    /// configured range.
    pub fn clamp(
        &self,
        cfg: &MsdaConfig,
        reference: RefPoint,
        pt: SamplePoint,
    ) -> Result<(SamplePoint, bool), PruneError> {
        let range = self.level(pt.level as usize)?;
        let shape = cfg.levels[pt.level as usize];
        let (cx, cy) = reference.to_level(shape);
        let x = pt.x.clamp(cx - range.half_w as f32, cx + range.half_w as f32);
        let y = pt.y.clamp(cy - range.half_h as f32, cy + range.half_h as f32);
        let moved = x != pt.x || y != pt.y;
        Ok((SamplePoint { level: pt.level, x, y }, moved))
    }

    /// On-chip pixel-vector slots needed to hold every level's bounded rows
    /// simultaneously.
    ///
    /// The fmap-reuse scheme (Figure 4 right) slides the reference point in
    /// row-major order, so each level keeps a *row buffer* of
    /// `(2·half_h + 2)` full-width rows resident (`+2` covers the bilinear
    /// neighbor row); horizontal reuse then comes for free.
    pub fn storage_pixels(&self, cfg: &MsdaConfig) -> u64 {
        self.ranges
            .iter()
            .zip(&cfg.levels)
            .map(|(r, shape)| {
                let rows = (2 * r.half_h as u64 + 2).min(shape.h as u64);
                rows * shape.w as u64
            })
            .sum()
    }

    /// Storage overhead of the unified strawman relative to level-wise
    /// ranges, as a fraction (e.g. `0.25` = 25 % extra, the paper's figure).
    pub fn unified_overhead(&self, cfg: &MsdaConfig) -> f64 {
        let unified = self.unified().storage_pixels(cfg);
        let ours = self.storage_pixels(cfg);
        unified as f64 / ours as f64 - 1.0
    }
}

/// Applies range clamping to a whole location table, in place, returning
/// how many points were moved.
///
/// `references` must hold one reference point per query and `locations`
/// exactly `n_in · points_per_query` entries in layer order.
///
/// # Errors
///
/// Returns [`PruneError::ShapeMismatch`] on any length disagreement.
pub fn clamp_locations(
    cfg: &MsdaConfig,
    ranges: &RangeConfig,
    references: &[RefPoint],
    locations: &mut [SamplePoint],
) -> Result<u64, PruneError> {
    let ppq = cfg.points_per_query();
    if references.len() != cfg.n_in() {
        return Err(PruneError::ShapeMismatch(format!(
            "{} references for {} queries",
            references.len(),
            cfg.n_in()
        )));
    }
    if locations.len() != cfg.n_in() * ppq {
        return Err(PruneError::ShapeMismatch(format!(
            "{} locations for {} expected",
            locations.len(),
            cfg.n_in() * ppq
        )));
    }
    let mut moved = 0u64;
    for (i, loc) in locations.iter_mut().enumerate() {
        let query = i / ppq;
        let (clamped, did_move) = ranges.clamp(cfg, references[query], *loc)?;
        *loc = clamped;
        moved += did_move as u64;
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_pixels_includes_bilinear_margin() {
        // half extents 2 -> window spans 2*2+1 = 5 centers, +1 neighbor = 6.
        assert_eq!(BoundedRange::new(2, 2).window_pixels(), 36);
        assert_eq!(BoundedRange::new(1, 3).window_pixels(), 4 * 8);
    }

    #[test]
    fn paper_defaults_tighten_with_depth() {
        let cfg = MsdaConfig::full();
        let rc = RangeConfig::paper_defaults(&cfg);
        let px: Vec<u64> = rc.ranges().iter().map(BoundedRange::window_pixels).collect();
        for w in px.windows(2) {
            assert!(w[0] >= w[1], "ranges must not grow with depth: {px:?}");
        }
    }

    #[test]
    fn unified_overhead_is_roughly_a_quarter() {
        // §4.1: "Applying unified restriction on all levels ... causes an
        // extra 25% storage requirement."
        let cfg = MsdaConfig::full();
        let rc = RangeConfig::paper_defaults(&cfg);
        let overhead = rc.unified_overhead(&cfg);
        assert!(overhead > 0.15 && overhead < 0.40, "overhead {overhead}");
    }

    #[test]
    fn clamp_moves_outliers_only() {
        let cfg = MsdaConfig::tiny();
        let rc = RangeConfig::new(vec![BoundedRange::new(2, 2), BoundedRange::new(1, 1)]).unwrap();
        let reference = RefPoint { x: 0.5, y: 0.5 }; // level 0 center (3.5, 2.5)
        let inside = SamplePoint::new(0, 4.0, 2.0);
        let (pt, moved) = rc.clamp(&cfg, reference, inside).unwrap();
        assert!(!moved);
        assert_eq!(pt, inside);
        let outside = SamplePoint::new(0, 7.9, 2.0);
        let (pt, moved) = rc.clamp(&cfg, reference, outside).unwrap();
        assert!(moved);
        assert!((pt.x - 5.5).abs() < 1e-6);
    }

    #[test]
    fn clamp_locations_counts_moves() {
        let cfg = MsdaConfig::tiny();
        let rc = RangeConfig::paper_defaults(&cfg);
        let refs = defa_model::sampling::reference_points(&cfg).unwrap();
        let ppq = cfg.points_per_query();
        // All points far outside: every one must be clamped.
        let mut locs = vec![SamplePoint::new(0, 1000.0, 1000.0); cfg.n_in() * ppq];
        let moved = clamp_locations(&cfg, &rc, &refs, &mut locs).unwrap();
        assert_eq!(moved, (cfg.n_in() * ppq) as u64);
    }

    #[test]
    fn clamp_locations_validates_lengths() {
        let cfg = MsdaConfig::tiny();
        let rc = RangeConfig::paper_defaults(&cfg);
        let refs = defa_model::sampling::reference_points(&cfg).unwrap();
        let mut locs = vec![SamplePoint::new(0, 0.0, 0.0); 3];
        assert!(clamp_locations(&cfg, &rc, &refs, &mut locs).is_err());
    }

    #[test]
    fn missing_level_range_is_an_error() {
        let cfg = MsdaConfig::tiny();
        let rc = RangeConfig::new(vec![BoundedRange::new(2, 2)]).unwrap(); // only level 0
        let reference = RefPoint { x: 0.5, y: 0.5 };
        assert!(rc.clamp(&cfg, reference, SamplePoint::new(1, 0.0, 0.0)).is_err());
    }

    #[test]
    fn empty_config_is_rejected() {
        assert!(RangeConfig::new(vec![]).is_err());
    }

    #[test]
    fn ranges_never_exceed_level_extent() {
        let cfg = MsdaConfig::tiny(); // coarsest level is 3x4
        let rc = RangeConfig::paper_defaults(&cfg);
        for (l, r) in rc.ranges().iter().enumerate() {
            assert!(r.half_w as usize <= cfg.levels[l].w);
            assert!(r.half_h as usize <= cfg.levels[l].h);
        }
    }
}
