//! Bit-mask compression codec.
//!
//! The DEFA compression/decompression units ship masked tensors as
//! `bitmap + surviving payload` (§4). `defa-arch` accounts the bandwidth;
//! this module implements the actual codec, so masks can be stored,
//! transported and round-tripped exactly — the software equivalent of the
//! hardware units.

use crate::{BitMask, PruneError};

/// A packed bit mask: 8 decisions per byte, little-endian within bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedMask {
    len: usize,
    bytes: Vec<u8>,
}

impl PackedMask {
    /// Packs a [`BitMask`].
    pub fn pack(mask: &BitMask) -> Self {
        let mut bytes = vec![0u8; mask.len().div_ceil(8)];
        for (i, &keep) in mask.as_bools().iter().enumerate() {
            if keep {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        PackedMask { len: mask.len(), bytes }
    }

    /// Unpacks back into a [`BitMask`].
    pub fn unpack(&self) -> BitMask {
        (0..self.len).map(|i| self.bytes[i / 8] & (1 << (i % 8)) != 0).collect()
    }

    /// Number of mask entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed bytes (what travels over the bus).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] if `bytes` is shorter than
    /// `len` requires.
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Result<Self, PruneError> {
        if bytes.len() < len.div_ceil(8) {
            return Err(PruneError::ShapeMismatch(format!(
                "{} bytes cannot hold {len} mask bits",
                bytes.len()
            )));
        }
        Ok(PackedMask { len, bytes })
    }
}

/// A masked stream: packed mask plus the surviving values, in index order.
///
/// This is exactly what the decompression unit receives from DRAM: it
/// re-expands to the dense vector with zeros in pruned slots.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedStream {
    mask: PackedMask,
    payload: Vec<f32>,
}

impl CompressedStream {
    /// Compresses a dense vector under a mask.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] if lengths differ.
    pub fn compress(dense: &[f32], mask: &BitMask) -> Result<Self, PruneError> {
        if dense.len() != mask.len() {
            return Err(PruneError::ShapeMismatch(format!(
                "{} values vs {} mask bits",
                dense.len(),
                mask.len()
            )));
        }
        let payload = mask.iter_kept().map(|i| dense[i]).collect();
        Ok(CompressedStream { mask: PackedMask::pack(mask), payload })
    }

    /// Decompresses back to the dense vector (pruned slots read zero —
    /// the accelerator's semantics for masked data).
    pub fn decompress(&self) -> Vec<f32> {
        let mask = self.mask.unpack();
        let mut out = vec![0.0; mask.len()];
        for (slot, &v) in mask.iter_kept().zip(&self.payload) {
            out[slot] = v;
        }
        out
    }

    /// Bits on the wire: packed mask bytes plus payload at `bits_per_value`.
    pub fn wire_bits(&self, bits_per_value: u64) -> u64 {
        self.mask.as_bytes().len() as u64 * 8 + self.payload.len() as u64 * bits_per_value
    }

    /// Number of surviving values.
    pub fn kept(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        let mask =
            BitMask::from_bools(vec![true, false, true, true, false, false, true, false, true]);
        let packed = PackedMask::pack(&mask);
        assert_eq!(packed.unpack(), mask);
        assert_eq!(packed.as_bytes().len(), 2);
    }

    #[test]
    fn compress_decompress_zeroes_pruned_slots() {
        let dense = vec![1.0, 2.0, 3.0, 4.0];
        let mask = BitMask::from_bools(vec![true, false, false, true]);
        let stream = CompressedStream::compress(&dense, &mask).unwrap();
        assert_eq!(stream.kept(), 2);
        assert_eq!(stream.decompress(), vec![1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn wire_bits_match_arch_accounting() {
        let dense = vec![0.5; 100];
        let mask = BitMask::from_bools((0..100).map(|i| i % 5 == 0).collect());
        let stream = CompressedStream::compress(&dense, &mask).unwrap();
        // arch::compress counts len + kept*bits; packing rounds the mask
        // up to whole bytes.
        let arch_bits = defa_arch_equiv(100, 20, 12);
        assert!(stream.wire_bits(12) >= arch_bits);
        assert!(stream.wire_bits(12) <= arch_bits + 7);
    }

    fn defa_arch_equiv(total: u64, kept: u64, bits: u64) -> u64 {
        total + kept * bits
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mask = BitMask::keep_all(3);
        assert!(CompressedStream::compress(&[1.0, 2.0], &mask).is_err());
    }

    #[test]
    fn from_bytes_validates_capacity() {
        assert!(PackedMask::from_bytes(vec![0xFF], 9).is_err());
        let p = PackedMask::from_bytes(vec![0b0000_0101], 3).unwrap();
        assert_eq!(p.unpack().as_bools(), &[true, false, true]);
    }

    #[test]
    fn empty_mask_round_trips() {
        let mask = BitMask::keep_all(0);
        let packed = PackedMask::pack(&mask);
        assert!(packed.is_empty());
        assert_eq!(packed.unpack(), mask);
    }
}
