//! Pruning-assisted grid-sampling: the algorithm-level half of DEFA (§3).
//!
//! Three techniques shrink the MSGS working set:
//!
//! * [`fwp`] — **frequency-weighted fmap pruning**: block *k* counts how
//!   often each pixel is touched by bilinear interpolation; pixels below
//!   `k_hyper · mean` are masked out of block *k+1*'s value projection and
//!   memory traffic (paper: ~43 % of pixels pruned).
//! * [`pap`] — **probability-aware point pruning**: sampling points whose
//!   post-softmax attention probability is near zero are dropped before the
//!   offset projection and MSGS (paper: ~84 % of points pruned).
//! * [`range`] — **level-wise range narrowing**: per-level bounded ranges
//!   clamp sampling offsets around the reference point, bounding the
//!   on-chip working set (a unified range would cost ~25 % extra storage).
//!
//! [`pipeline`] ties them together into a pruned encoder run with the
//! block-to-block mask propagation of the DEFA dataflow, and [`stats`]
//! produces the reduction ratios of Fig. 6(b).
//!
//! # Example
//!
//! ```
//! use defa_model::{MsdaConfig, workload::{Benchmark, SyntheticWorkload}};
//! use defa_prune::pipeline::{PruneSettings, run_pruned_encoder};
//!
//! # fn main() -> Result<(), defa_prune::PruneError> {
//! let cfg = MsdaConfig::tiny();
//! let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 1)?;
//! let run = run_pruned_encoder(&wl, &PruneSettings::paper_defaults())?;
//! assert!(run.stats.point_keep_fraction() < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod error;
pub mod fwp;
pub mod histogram;
pub mod mask;
pub mod pap;
pub mod pipeline;
pub mod range;
pub mod stats;

pub use error::PruneError;
pub use fwp::{FwpConfig, SampleFrequency};
pub use mask::BitMask;
pub use pap::PapConfig;
pub use range::{BoundedRange, RangeConfig};
pub use stats::ReductionStats;
