//! Bit masks and their compressed-storage accounting.
//!
//! Both FWP and PAP record pruning decisions as bit masks (one bit per fmap
//! pixel / sampling point). The hardware ships masks through the
//! compression/decompression units, so the mask type also accounts for the
//! bits a mask costs on chip.

use crate::PruneError;

/// A keep/drop bit mask over a linear index space.
///
/// `true` means *keep*. The mask knows its own storage cost: one bit per
/// entry, which is what the DEFA mask generators emit.
///
/// # Example
///
/// ```
/// use defa_prune::BitMask;
///
/// let mask = BitMask::from_bools(vec![true, false, true, true]);
/// assert_eq!(mask.kept(), 3);
/// assert!((mask.keep_fraction() - 0.75).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    bits: Vec<bool>,
}

impl BitMask {
    /// An all-keep mask of length `n`.
    pub fn keep_all(n: usize) -> Self {
        BitMask { bits: vec![true; n] }
    }

    /// An all-drop mask of length `n`.
    pub fn drop_all(n: usize) -> Self {
        BitMask { bits: vec![false; n] }
    }

    /// Wraps an explicit keep vector.
    pub fn from_bools(bits: Vec<bool>) -> Self {
        BitMask { bits }
    }

    /// Builds a mask by thresholding values: `keep = value >= threshold`.
    pub fn from_threshold(values: &[f32], threshold: f32) -> Self {
        BitMask { bits: values.iter().map(|&v| v >= threshold).collect() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Borrowed keep bits (`true` = keep).
    pub fn as_bools(&self) -> &[bool] {
        &self.bits
    }

    /// Number of kept entries.
    pub fn kept(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Number of dropped entries.
    pub fn dropped(&self) -> usize {
        self.len() - self.kept()
    }

    /// Fraction of entries kept (1.0 for an empty mask).
    pub fn keep_fraction(&self) -> f64 {
        if self.bits.is_empty() {
            1.0
        } else {
            self.kept() as f64 / self.len() as f64
        }
    }

    /// Fraction of entries dropped.
    pub fn drop_fraction(&self) -> f64 {
        1.0 - self.keep_fraction()
    }

    /// Whether entry `i` is kept.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] if `i` is out of range.
    pub fn is_kept(&self, i: usize) -> Result<bool, PruneError> {
        self.bits.get(i).copied().ok_or_else(|| {
            PruneError::ShapeMismatch(format!("mask index {i} out of {}", self.len()))
        })
    }

    /// Intersection with another mask (`keep = both keep`).
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ShapeMismatch`] if lengths differ.
    pub fn and(&self, other: &BitMask) -> Result<BitMask, PruneError> {
        if self.len() != other.len() {
            return Err(PruneError::ShapeMismatch(format!(
                "mask lengths differ: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        Ok(BitMask { bits: self.bits.iter().zip(&other.bits).map(|(&a, &b)| a && b).collect() })
    }

    /// Storage cost of the bit mask itself, in bits.
    pub fn mask_storage_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Payload bits after compression: only kept entries are stored.
    ///
    /// `bits_per_entry` is the width of one masked datum (e.g. 12 for an
    /// INT12 pixel channel). The compression unit ships
    /// `mask + surviving payload`.
    pub fn compressed_payload_bits(&self, bits_per_entry: u64) -> u64 {
        self.mask_storage_bits() + self.kept() as u64 * bits_per_entry
    }

    /// Iterator over kept indices.
    pub fn iter_kept(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i)
    }
}

impl FromIterator<bool> for BitMask {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitMask { bits: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let m = BitMask::from_bools(vec![true, false, false, true]);
        assert_eq!(m.kept(), 2);
        assert_eq!(m.dropped(), 2);
        assert!((m.keep_fraction() - 0.5).abs() < 1e-9);
        assert!((m.drop_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_construction_keeps_at_or_above() {
        let m = BitMask::from_threshold(&[0.1, 0.5, 0.5, 0.9], 0.5);
        assert_eq!(m.as_bools(), &[false, true, true, true]);
    }

    #[test]
    fn and_intersects() {
        let a = BitMask::from_bools(vec![true, true, false]);
        let b = BitMask::from_bools(vec![true, false, false]);
        assert_eq!(a.and(&b).unwrap().as_bools(), &[true, false, false]);
        assert!(a.and(&BitMask::keep_all(2)).is_err());
    }

    #[test]
    fn compressed_payload_accounting() {
        let m = BitMask::from_bools(vec![true, false, true, false]);
        // 4 mask bits + 2 kept entries x 12 bits.
        assert_eq!(m.compressed_payload_bits(12), 4 + 24);
    }

    #[test]
    fn iter_kept_yields_indices() {
        let m = BitMask::from_bools(vec![false, true, false, true]);
        assert_eq!(m.iter_kept().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn empty_mask_keep_fraction_is_one() {
        let m = BitMask::keep_all(0);
        assert_eq!(m.keep_fraction(), 1.0);
        assert!(m.is_empty());
    }

    #[test]
    fn is_kept_bounds_checked() {
        let m = BitMask::keep_all(2);
        assert!(m.is_kept(1).unwrap());
        assert!(m.is_kept(2).is_err());
    }

    #[test]
    fn collects_from_iterator() {
        let m: BitMask = (0..4).map(|i| i % 2 == 0).collect();
        assert_eq!(m.kept(), 2);
    }
}
