//! Probability-aware point pruning (PAP, §3.2).
//!
//! Softmax confines each head's attention probabilities to sum to one and
//! exponentially amplifies their differences; the paper observes that
//! near-zero probabilities constitute over 80 % of all sampling points in
//! Deformable DETR. PAP thresholds the probabilities and masks the points
//! below it, eliminating their offset computation, grid-sampling and
//! aggregation in the *current* block.

use crate::{BitMask, PruneError};
use defa_tensor::Tensor;

/// PAP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PapConfig {
    /// Probability threshold below which a sampling point is pruned.
    pub threshold: f32,
}

impl PapConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidParameter`] unless
    /// `0 <= threshold < 1`.
    pub fn new(threshold: f32) -> Result<Self, PruneError> {
        if !threshold.is_finite() || !(0.0..1.0).contains(&threshold) {
            return Err(PruneError::InvalidParameter(format!(
                "PAP threshold must be in [0, 1), got {threshold}"
            )));
        }
        Ok(PapConfig { threshold })
    }

    /// The paper's operating point: prunes ~84 % of points on the skewed
    /// benchmark workloads while keeping the dominant probabilities.
    pub fn paper_default() -> Self {
        PapConfig { threshold: 0.02 }
    }
}

impl Default for PapConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builds the point mask from a `[N_in, N_h·N_l·N_p]` probability tensor.
///
/// The mask is linearized as `query · points_per_query + slot`, matching
/// [`defa_model::reference::LayerMasks::points`].
///
/// # Errors
///
/// Returns [`PruneError::ShapeMismatch`] for tensors that are not rank 2.
pub fn point_mask(probs: &Tensor, cfg: PapConfig) -> Result<BitMask, PruneError> {
    if probs.shape().rank() != 2 {
        return Err(PruneError::ShapeMismatch(format!(
            "probability tensor must be rank 2, got {}",
            probs.shape()
        )));
    }
    Ok(BitMask::from_threshold(probs.as_slice(), cfg.threshold))
}

/// Share of total attention probability mass retained by a mask.
///
/// This is the quantity that explains why PAP is safe: pruning 84 % of
/// points typically removes only a few percent of the probability mass.
///
/// # Errors
///
/// Returns [`PruneError::ShapeMismatch`] if the mask length differs from
/// the tensor volume.
pub fn retained_mass(probs: &Tensor, mask: &BitMask) -> Result<f64, PruneError> {
    if probs.len() != mask.len() {
        return Err(PruneError::ShapeMismatch(format!(
            "probs volume {} vs mask {}",
            probs.len(),
            mask.len()
        )));
    }
    let mut kept = 0.0f64;
    let mut total = 0.0f64;
    for (&p, &keep) in probs.as_slice().iter().zip(mask.as_bools()) {
        total += p as f64;
        if keep {
            kept += p as f64;
        }
    }
    if total == 0.0 {
        Ok(1.0)
    } else {
        Ok(kept / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::workload::{Benchmark, SyntheticWorkload};
    use defa_model::MsdaConfig;

    #[test]
    fn figure2_example_prunes_near_zero_probs() {
        // Figure 2 left: probs (0.8, 0.13, 0.07) with a threshold that
        // prunes the two small ones.
        let probs = Tensor::from_vec(vec![0.8, 0.13, 0.07], [1, 3]).unwrap();
        let mask = point_mask(&probs, PapConfig::new(0.2).unwrap()).unwrap();
        assert_eq!(mask.as_bools(), &[true, false, false]);
    }

    #[test]
    fn threshold_zero_keeps_everything() {
        let probs = Tensor::from_vec(vec![0.5, 0.0, 0.5], [1, 3]).unwrap();
        let mask = point_mask(&probs, PapConfig::new(0.0).unwrap()).unwrap();
        assert_eq!(mask.kept(), 3);
    }

    #[test]
    fn paper_workload_prunes_over_80_percent() {
        let cfg = MsdaConfig::small();
        let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, 3).unwrap();
        let (_, probs) = wl.layer(0).unwrap().attention_probs(wl.initial_fmap()).unwrap();
        let mask = point_mask(&probs, PapConfig::paper_default()).unwrap();
        let drop = mask.drop_fraction();
        assert!(drop > 0.75, "drop fraction {drop}");
        // And the retained probability mass stays high.
        let mass = retained_mass(&probs, &mask).unwrap();
        assert!(mass > 0.90, "retained mass {mass}");
    }

    #[test]
    fn retained_mass_of_keep_all_is_one() {
        let probs = Tensor::from_vec(vec![0.25; 4], [1, 4]).unwrap();
        let mask = BitMask::keep_all(4);
        assert!((retained_mass(&probs, &mask).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retained_mass_validates_lengths() {
        let probs = Tensor::zeros([1, 4]);
        assert!(retained_mass(&probs, &BitMask::keep_all(3)).is_err());
    }

    #[test]
    fn config_rejects_bad_thresholds() {
        assert!(PapConfig::new(-0.1).is_err());
        assert!(PapConfig::new(1.0).is_err());
        assert!(PapConfig::new(f32::INFINITY).is_err());
        assert!(PapConfig::new(0.5).is_ok());
    }

    #[test]
    fn rank_one_tensor_is_rejected() {
        let probs = Tensor::zeros([4]);
        assert!(point_mask(&probs, PapConfig::paper_default()).is_err());
    }
}
