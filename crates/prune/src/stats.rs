//! Reduction-ratio accounting (the quantities behind Fig. 6(b)).

use defa_model::flops::BlockFlops;

/// Accumulated pruning statistics over one or more encoder blocks.
///
/// Tracks the three quantities Fig. 6(b) reports — sampling-point
/// reduction, fmap-pixel reduction and FLOP reduction — plus auxiliary
/// counters (range clamps, retained probability mass).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReductionStats {
    /// Total sampling points considered by PAP.
    pub points_total: u64,
    /// Sampling points surviving PAP.
    pub points_kept: u64,
    /// Total fmap pixels considered by FWP (blocks that receive a mask).
    pub pixels_total: u64,
    /// Fmap pixels surviving FWP.
    pub pixels_kept: u64,
    /// Dense FLOPs of the attention modules (no pruning).
    pub flops_dense: u64,
    /// FLOPs actually executed after pruning.
    pub flops_pruned: u64,
    /// Sampling points moved by level-wise range narrowing.
    pub clamped_points: u64,
    /// Sum of per-block retained probability mass (divide by `blocks`).
    pub retained_mass_sum: f64,
    /// Number of blocks accumulated.
    pub blocks: u32,
}

impl ReductionStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one block's pruning outcome.
    ///
    /// `point_keep`/`pixel_keep` are the per-block keep fractions used for
    /// the FLOP model; `fmap_masked` says whether FWP actually applied a
    /// mask to this block (block 0 never receives one).
    #[allow(clippy::too_many_arguments)]
    pub fn record_block(
        &mut self,
        flops: &BlockFlops,
        points_total: u64,
        points_kept: u64,
        pixels_total: u64,
        pixels_kept: u64,
        fmap_masked: bool,
        clamped: u64,
        retained_mass: f64,
    ) {
        self.points_total += points_total;
        self.points_kept += points_kept;
        if fmap_masked {
            self.pixels_total += pixels_total;
            self.pixels_kept += pixels_kept;
        }
        let point_keep =
            if points_total == 0 { 1.0 } else { points_kept as f64 / points_total as f64 };
        let pixel_keep = if !fmap_masked || pixels_total == 0 {
            1.0
        } else {
            pixels_kept as f64 / pixels_total as f64
        };
        self.flops_dense += flops.attention_only();
        self.flops_pruned += flops.pruned(point_keep, pixel_keep).attention_only();
        self.clamped_points += clamped;
        self.retained_mass_sum += retained_mass;
        self.blocks += 1;
    }

    /// Fraction of sampling points kept.
    pub fn point_keep_fraction(&self) -> f64 {
        if self.points_total == 0 {
            1.0
        } else {
            self.points_kept as f64 / self.points_total as f64
        }
    }

    /// Fraction of sampling points removed (Fig. 6(b): 82–86 %).
    pub fn point_reduction(&self) -> f64 {
        1.0 - self.point_keep_fraction()
    }

    /// Fraction of fmap pixels kept (over blocks that received a mask).
    pub fn pixel_keep_fraction(&self) -> f64 {
        if self.pixels_total == 0 {
            1.0
        } else {
            self.pixels_kept as f64 / self.pixels_total as f64
        }
    }

    /// Fraction of fmap pixels removed (Fig. 6(b): 42–44 %).
    pub fn pixel_reduction(&self) -> f64 {
        1.0 - self.pixel_keep_fraction()
    }

    /// Fraction of attention-module FLOPs removed (Fig. 6(b): 52–53 %).
    pub fn flop_reduction(&self) -> f64 {
        if self.flops_dense == 0 {
            0.0
        } else {
            1.0 - self.flops_pruned as f64 / self.flops_dense as f64
        }
    }

    /// Mean retained probability mass per block.
    pub fn mean_retained_mass(&self) -> f64 {
        if self.blocks == 0 {
            1.0
        } else {
            self.retained_mass_sum / self.blocks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defa_model::MsdaConfig;

    fn flops() -> BlockFlops {
        BlockFlops::for_config(&MsdaConfig::small())
    }

    #[test]
    fn empty_stats_report_no_reduction() {
        let s = ReductionStats::new();
        assert_eq!(s.point_reduction(), 0.0);
        assert_eq!(s.pixel_reduction(), 0.0);
        assert_eq!(s.flop_reduction(), 0.0);
        assert_eq!(s.mean_retained_mass(), 1.0);
    }

    #[test]
    fn record_accumulates_fractions() {
        let mut s = ReductionStats::new();
        s.record_block(&flops(), 100, 20, 50, 30, true, 5, 0.95);
        s.record_block(&flops(), 100, 10, 50, 25, true, 7, 0.90);
        assert!((s.point_keep_fraction() - 0.15).abs() < 1e-9);
        assert!((s.pixel_keep_fraction() - 0.55).abs() < 1e-9);
        assert_eq!(s.clamped_points, 12);
        assert!((s.mean_retained_mass() - 0.925).abs() < 1e-9);
        assert!(s.flop_reduction() > 0.0);
    }

    #[test]
    fn unmasked_block_does_not_count_pixels() {
        let mut s = ReductionStats::new();
        s.record_block(&flops(), 100, 100, 50, 50, false, 0, 1.0);
        assert_eq!(s.pixels_total, 0);
        assert_eq!(s.pixel_reduction(), 0.0);
    }

    #[test]
    fn paper_operating_point_reduces_flops_by_half() {
        let mut s = ReductionStats::new();
        // 84 % of points and 43 % of pixels pruned, as in Fig. 6(b).
        s.record_block(&flops(), 1000, 160, 1000, 570, true, 0, 0.95);
        let red = s.flop_reduction();
        assert!(red > 0.45 && red < 0.65, "flop reduction {red}");
    }
}
