//! Figure 7(b): energy savings of fine-grained operator fusion and fmap
//! reuse, as shares of MSGS memory-access energy.

use defa_arch::{EnergyModel, EventCounters};
use defa_bench::table::{pct, print_table};
use defa_bench::RunOptions;
use defa_core::{MsgsEngine, MsgsSettings};
use defa_model::workload::{Benchmark, SyntheticWorkload};
use defa_prune::pipeline::{run_pruned_encoder_observed, PruneSettings};

/// Runs every block's MSGS through an engine configuration and returns the
/// memory-energy split `(dram_pj, sram_pj)`.
fn msgs_memory_energy(
    wl: &SyntheticWorkload,
    settings: MsgsSettings,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let engine = MsgsEngine::new(wl.config(), settings)?;
    let mut counters = EventCounters::new();
    let mut err = None;
    run_pruned_encoder_observed(wl, &PruneSettings::paper_defaults(), |_, out, info| {
        if err.is_some() {
            return;
        }
        if let Err(e) = engine.run_block(
            &out.locations,
            info.point_mask.as_bools(),
            info.fmap_mask.keep_fraction(),
            &mut counters,
        ) {
            err = Some(e);
        }
    })?;
    if let Some(e) = err {
        return Err(Box::new(e));
    }
    let priced = EnergyModel::forty_nm().price(&counters);
    Ok((priced.dram_pj, priced.sram_pj))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_env();
    let cfg = opts.config();
    println!(
        "Figure 7(b) — energy savings of op fusion and fmap reuse (scale: {})",
        opts.scale_label()
    );

    let wl = SyntheticWorkload::generate(Benchmark::DeformableDetr, &cfg, opts.seed)?;
    let all_on = MsgsSettings::paper_default();
    let (dram_on, sram_on) = msgs_memory_energy(&wl, all_on)?;

    let mut rows = Vec::new();
    for (label, settings, paper_dram, paper_sram) in [
        ("Op Fusion", MsgsSettings { fused: false, ..all_on }, 0.733, 0.159),
        ("Fmap Reuse", MsgsSettings { fmap_reuse: false, ..all_on }, 0.882, 0.227),
    ] {
        let (dram_off, sram_off) = msgs_memory_energy(&wl, settings)?;
        let total_off = dram_off + sram_off;
        let dram_saving = (dram_off - dram_on) / total_off;
        let sram_saving = (sram_off - sram_on) / total_off;
        rows.push(vec![
            label.to_string(),
            pct(dram_saving),
            pct(paper_dram),
            pct(sram_saving),
            pct(paper_sram),
        ]);
    }
    print_table(
        "Savings as share of MSGS memory energy (feature off -> on, De DETR)",
        &["feature", "DRAM saving (ours)", "DRAM (paper)", "SRAM saving (ours)", "SRAM (paper)"],
        &rows,
    );
    println!(
        "\nBaseline (all features on): DRAM {:.1} µJ, SRAM {:.1} µJ per encoder.",
        dram_on / 1e6,
        sram_on / 1e6
    );
    Ok(())
}
