//! `serve` — throughput/latency sweep of the batched serving runtime.
//!
//! Sweeps offered load × batch size × backend over one seeded
//! multi-scenario request stream and prints a req/s + p50/p95/p99 table.
//! Offered load is calibrated per backend against its own modeled service
//! rate (probed deterministically on request 0), so every backend sees an
//! under-loaded (0.5×) and an over-loaded (2×) operating point.
//!
//! Flags (on top of the shared `--full` / `--seed`):
//!
//! * `--quick` — tiny config, single operating point per backend (the CI
//!   smoke mode);
//! * `--requests <n>` — requests per operating point;
//! * `--shards <n>` — worker shards;
//! * `--json` — machine-readable output on stdout instead of the table
//!   (virtual-time metrics only, so the document is byte-stable across
//!   hosts; `BENCH_serve.json` pins the `--quick` form in CI).

use defa_bench::json::{to_document, Json};
use defa_bench::table::print_table;
use defa_bench::RunOptions;
use defa_model::workload::RequestGenerator;
use defa_model::MsdaConfig;
use defa_serve::energy::fmt_joules;
use defa_serve::histogram::fmt_ns;
use defa_serve::{BackendKind, ServeConfig, ServeReport, ServeRuntime, ServeSpec};
use std::time::Instant;

struct Row {
    report: ServeReport,
    load_mult: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOptions::parse(args.iter().cloned());
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let mut n_requests = if quick { 16 } else { 48 };
    let mut shards = 2usize;
    for w in args.windows(2) {
        match w[0].as_str() {
            "--requests" => n_requests = w[1].parse().unwrap_or(n_requests),
            "--shards" => shards = w[1].parse::<usize>().unwrap_or(shards).max(1),
            _ => {}
        }
    }

    let base = if quick { MsdaConfig::tiny() } else { opts.config() };
    let gen = RequestGenerator::standard(&base, opts.seed)?;
    if !json {
        println!(
            "Serving sweep (scale: {}; {} scenarios, {} requests/point, {} shards)",
            if quick { "tiny (--quick)" } else { opts.scale_label() },
            gen.scenarios().len(),
            n_requests,
            shards,
        );
        for s in gen.scenarios() {
            let cfg = s.workload.config();
            println!("  scenario: {:<14} ({} queries x {} dims)", s.name, cfg.n_in(), cfg.d_model);
        }
    }
    let runtime = ServeRuntime::new(gen);

    let batch_sizes: &[usize] = if quick { &[4] } else { &[1, 8] };
    let load_mults: &[f64] = if quick { &[2.0] } else { &[0.5, 2.0] };

    let wall = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    for kind in BackendKind::all() {
        let backend = kind.build();
        // Deterministic calibration probe: request 0's modeled cost.
        let probe = {
            let req = runtime.generator().request(0);
            let wl = runtime.generator().scenario(req.scenario)?;
            backend.run(wl, &req)?
        };
        let capacity_rps = 1e9 / probe.cost_ns as f64 * shards as f64;
        for &mult in load_mults {
            let offered = capacity_rps * mult;
            for &max_batch in batch_sizes {
                let cfg = ServeConfig {
                    offered_load: offered,
                    n_requests,
                    queue_capacity: (4 * max_batch).max(16),
                    max_batch,
                    shards,
                    ..ServeConfig::at_load(offered, n_requests)
                };
                let report = runtime.serve(&ServeSpec::homogeneous(&backend, &cfg))?;
                rows.push(Row { report, load_mult: mult });
            }
        }
    }

    if json {
        let doc = Json::obj([
            ("bench", Json::str("serve")),
            ("scale", Json::str(if quick { "tiny" } else { opts.scale_label() })),
            ("seed", Json::uint(opts.seed as u128)),
            ("requests_per_point", Json::uint(n_requests as u128)),
            ("shards", Json::uint(shards as u128)),
            ("rows", Json::Arr(rows.iter().map(row_json).collect())),
        ]);
        print!("{}", to_document(&doc));
        return Ok(());
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.report.backend.clone(),
                format!("{:.1}x", r.load_mult),
                format!("{:.0}", r.report.config.offered_load),
                format!("{}", r.report.config.max_batch),
                format!("{:.1}", r.report.mean_batch_size()),
                format!("{}/{}", r.report.completed, r.report.dropped),
                format!("{:.0}", r.report.achieved_rps()),
                fmt_ns(r.report.total.p50_ns()),
                fmt_ns(r.report.total.p95_ns()),
                fmt_ns(r.report.total.p99_ns()),
                fmt_joules(r.report.joules_per_request()),
                format!("{:.0}", r.report.gops_per_watt()),
            ]
        })
        .collect();
    print_table(
        "Serving: offered load x batch size x backend (virtual time)",
        &[
            "backend",
            "load",
            "offered r/s",
            "batch<=",
            "mean batch",
            "done/drop",
            "req/s",
            "p50",
            "p95",
            "p99",
            "J/req",
            "GOPS/W",
        ],
        &table,
    );
    println!(
        "\nLatency/throughput columns use the deterministic virtual clock and the energy\n\
         columns the fixed-point per-request attribution (see defa_serve::energy);\n\
         the whole sweep took {:.1} s of wall clock on this host.",
        wall.elapsed().as_secs_f64()
    );
    Ok(())
}

/// One sweep row as a flat JSON object of virtual-time metrics only (no
/// wall clock, so the document is byte-stable).
fn row_json(r: &Row) -> Json {
    let rep = &r.report;
    Json::obj([
        ("backend", Json::str(rep.backend.clone())),
        ("load_mult", Json::num(r.load_mult)),
        ("offered_rps", Json::num(rep.config.offered_load)),
        ("max_batch", Json::uint(rep.config.max_batch as u128)),
        ("mean_batch", Json::num(rep.mean_batch_size())),
        ("completed", Json::uint(rep.completed as u128)),
        ("dropped", Json::uint(rep.dropped as u128)),
        ("slo_violations", Json::uint(rep.slo_violations as u128)),
        ("achieved_rps", Json::num(rep.achieved_rps())),
        ("p50_total_ns", Json::uint(rep.total.p50_ns() as u128)),
        ("p95_total_ns", Json::uint(rep.total.p95_ns() as u128)),
        ("p99_total_ns", Json::uint(rep.total.p99_ns() as u128)),
        ("makespan_ns", Json::uint(rep.makespan_ns as u128)),
        ("energy_total_pj", Json::uint(rep.energy.total_pj())),
        ("gops_per_watt", Json::num(rep.gops_per_watt())),
        ("digest", Json::str(format!("{:#018x}", rep.digest))),
    ])
}
