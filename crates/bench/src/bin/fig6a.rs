//! Figure 6(a): detection AP of DEFA's pruned models vs. baselines.
//!
//! COCO training is out of scope for this reproduction; the binary reports
//! the measured output-fidelity error of the pruned encoder and the
//! calibrated AP proxy next to the paper's reported APs (see DESIGN.md's
//! substitution table).

use defa_baseline::faster_rcnn::FASTER_RCNN_AP;
use defa_bench::table::print_table;
use defa_bench::RunOptions;
use defa_model::detection::estimate_ap;
use defa_model::encoder::run_encoder;
use defa_model::workload::{Benchmark, SyntheticWorkload};
use defa_prune::pipeline::{run_pruned_encoder, PruneSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_env();
    let cfg = opts.config();
    println!("Figure 6(a) — detection AP proxy (scale: {})", opts.scale_label());

    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let wl = SyntheticWorkload::generate(bench, &cfg, opts.seed)?;
        let exact = run_encoder(&wl)?;
        let pruned = run_pruned_encoder(&wl, &PruneSettings::paper_defaults())?;
        let est = estimate_ap(bench, &exact.final_features, &pruned.final_features)?;
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.1}", est.baseline_ap),
            format!("{:.4}", est.fidelity_error),
            format!("{:.1}", est.estimated_ap),
            format!("{:.1}", bench.defa_ap()),
            format!("{:.2}", est.drop()),
            format!("{:.2}", bench.baseline_ap() - bench.defa_ap()),
        ]);
    }
    print_table(
        "AP proxy under paper-default pruning (FWP k=1, PAP 0.02, ranges, INT12)",
        &[
            "benchmark",
            "baseline AP",
            "fidelity err (ours)",
            "AP est (ours)",
            "AP (paper)",
            "drop (ours)",
            "drop (paper)",
        ],
        &rows,
    );
    println!("\nFaster R-CNN reference: AP = {FASTER_RCNN_AP} (paper Fig. 6(a) dashed line).");
    println!(
        "The AP estimate maps measured output error through a documented linear proxy \
         (defa_model::detection); the fidelity error column is the direct measurement."
    );
    Ok(())
}
