//! Figure 7(a): MSGS throughput boost of inter-level over intra-level
//! parallel processing.

use defa_arch::{BankMapping, EventCounters};
use defa_bench::table::{print_table, ratio};
use defa_bench::RunOptions;
use defa_core::{MsgsEngine, MsgsSettings};
use defa_model::workload::{Benchmark, SyntheticWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_env();
    let cfg = opts.config();
    println!("Figure 7(a) — inter- vs intra-level MSGS throughput (scale: {})", opts.scale_label());

    let paper = [3.09, 3.02, 3.06];
    let mut rows = Vec::new();
    for (bench, paper_boost) in Benchmark::all().into_iter().zip(paper) {
        let wl = SyntheticWorkload::generate(bench, &cfg, opts.seed)?;
        let out = wl.layer(0)?.forward(wl.initial_fmap(), Some(wl.warp()))?;
        let keep = vec![true; out.locations.len()];

        let inter = MsgsEngine::new(&cfg, MsgsSettings::paper_default())?;
        let intra = MsgsEngine::new(
            &cfg,
            MsgsSettings { mapping: BankMapping::IntraLevel, ..MsgsSettings::paper_default() },
        )?;
        let mut ci = EventCounters::new();
        let si = inter.run_block(&out.locations, &keep, 1.0, &mut ci)?;
        let mut ca = EventCounters::new();
        let sa = intra.run_block(&out.locations, &keep, 1.0, &mut ca)?;
        let boost = sa.cycles as f64 / si.cycles as f64;
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.4}", si.points_per_cycle()),
            format!("{:.4}", sa.points_per_cycle()),
            format!("{}", sa.conflicts),
            ratio(boost),
            ratio(paper_boost),
        ]);
    }
    print_table(
        "MSGS throughput, same parallelism degree (4 points/group)",
        &[
            "benchmark",
            "inter pts/cycle",
            "intra pts/cycle",
            "intra conflicts",
            "boost (ours)",
            "boost (paper)",
        ],
        &rows,
    );
    println!("\nInter-level Neighbor-Window banking is conflict-free by construction;");
    println!("intra-level groups serialize whenever two footprints collide modulo the 4x4 tile.");
    Ok(())
}
