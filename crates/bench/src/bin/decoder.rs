//! Decoder cross-attention extension: pruning statistics for the
//! DETR-family decoders (beyond the paper's encoder-only evaluation).

use defa_bench::table::{pct, print_table};
use defa_bench::RunOptions;
use defa_model::decoder::{DecoderConfig, DecoderWorkload};
use defa_model::workload::{Benchmark, SyntheticWorkload};
use defa_prune::pap::{point_mask, retained_mass, PapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_env();
    let cfg = opts.config();
    println!("Decoder extension — cross-attention pruning (scale: {})", opts.scale_label());

    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let enc = SyntheticWorkload::generate(bench, &cfg, opts.seed)?;
        let dec_cfg = if opts.full {
            DecoderConfig::for_benchmark(bench)
        } else {
            DecoderConfig { n_queries: 60, n_layers: 2 }
        };
        let dec = DecoderWorkload::generate(bench, &cfg, dec_cfg, opts.seed)?;
        let memory = enc.initial_fmap();

        let out = dec.layers()[0].forward(dec.initial_queries(), memory, None, None)?;
        let mask = point_mask(&out.probs, PapConfig::paper_default())?;
        let mass = retained_mass(&out.probs, &mask)?;
        rows.push(vec![
            bench.name().to_string(),
            dec_cfg.n_queries.to_string(),
            pct(mask.drop_fraction()),
            pct(mass),
        ]);
    }
    print_table(
        "PAP on decoder cross-attention (first layer)",
        &["benchmark", "object queries", "points pruned", "prob mass kept"],
        &rows,
    );
    println!("\nThe paper evaluates encoders only (§5.1.1); this reproduces the same");
    println!("probability skew on the decoder side, where PAP applies unchanged.");
    Ok(())
}
